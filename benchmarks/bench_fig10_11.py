"""Figures 10 & 11: execution traces of v4 (priorities) vs v2 (none).

Reproduces the trace experiment at 7 worker threads per node and
asserts the paper's reading: v2 "has too much idle time in the
beginning" because the un-prioritized READ tasks flood the network,
while v4's chain-decreasing priorities overlap communication with
GEMMs. Emits ASCII Gantt charts standing in for the figures.
"""

import pytest

from benchmarks.conftest import shapes_asserted, write_report
from repro.experiments.traces import run_fig10_11


@pytest.mark.benchmark(group="traces")
def test_fig10_11_v4_vs_v2_traces(benchmark, results_dir, scale):
    v4, v2 = benchmark.pedantic(
        lambda: run_fig10_11(scale=scale), rounds=1, iterations=1
    )
    lines = [
        "Figure 10/11 reproduction: v4 (priorities) vs v2 (no priorities)",
        f"scale={scale}, 32 nodes x 7 workers",
        "",
        f"v4: time={v4.execution_time:.3f}s  startup idle={100 * v4.startup_idle:.1f}%",
        f"v2: time={v2.execution_time:.3f}s  startup idle={100 * v2.startup_idle:.1f}%",
        "",
        v4.gantt(width=100, max_rows=7),
        "",
        v2.gantt(width=100, max_rows=7),
    ]
    write_report(results_dir, f"fig10_11_{scale}.txt", "\n".join(lines))
    if not shapes_asserted(scale):
        return  # smoke run at reduced scale: report only
    # Figure 11's reading: v2 idles far more at the start...
    assert v2.startup_idle > 1.5 * v4.startup_idle, (
        f"v2 startup idle {v2.startup_idle:.3f} not >> v4 {v4.startup_idle:.3f}"
    )
    # ...and the wasted start costs total time
    assert v2.execution_time > 1.10 * v4.execution_time
