"""Shared benchmark helpers.

Every figure bench runs the full experiment once (``pedantic`` with one
round — the simulation is deterministic, so repeated rounds measure
nothing but Python variance), prints the paper-shaped table, writes it
under ``benchmarks/results/``, and asserts the shape checks.

Scale is controlled by ``REPRO_SCALE`` (default ``paper``); set
``REPRO_SCALE=small`` for a quick smoke pass.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> str:
    from repro.experiments.calibration import bench_scale

    return bench_scale()


def write_report(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one experiment report and echo it to stdout."""
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[report saved to {path}]")


def shapes_asserted(scale: str) -> bool:
    """Whether the paper-shape assertions apply.

    The contention phenomena behind Figure 9's shape (GA-path
    saturation, network floods, chain starvation) only manifest at the
    paper workload scale; smaller scales run the same experiments as
    smoke tests and report the numbers without asserting shapes.
    """
    return scale in ("paper", "full")
