"""Ablation benchmarks for the paper's design decisions.

One benchmark per Section IV design choice:

- priorities / prefetch offset (Section IV-C),
- chain segmentation height (Section IV-A),
- single vs parallel WRITE under growing mutex cost (Section V, v3 vs v5),
- NXTVAL work stealing vs static distribution (Section IV-D).
"""

import pytest

from benchmarks.conftest import shapes_asserted, write_report
from repro.analysis.report import format_table
from repro.experiments.ablations import (
    compare_load_balancing,
    compare_scheduler_policies,
    sweep_priority_offsets,
    sweep_segment_height,
    sweep_write_organization,
)


@pytest.mark.benchmark(group="ablations")
def test_abl_priority_offsets(benchmark, results_dir, scale):
    """The read-priority offset builds the 5*P prefetch pipeline."""
    times = benchmark.pedantic(
        lambda: sweep_priority_offsets(offsets=(0, 1, 5, 10), scale=scale),
        rounds=1,
        iterations=1,
    )
    rows = [[f"+{offset}", f"{t:.3f}"] for offset, t in sorted(times.items())]
    write_report(
        results_dir,
        f"abl_priorities_{scale}.txt",
        format_table(
            ["read offset", "time (s)"],
            rows,
            title="Ablation: READ priority offset (v4 base, 7 cores/node)",
        ),
    )
    if shapes_asserted(scale):
        # the paper's +5 must beat a removed prefetch pipeline
        assert times[5] <= times[0]


@pytest.mark.benchmark(group="ablations")
def test_abl_segment_height(benchmark, results_dir, scale):
    """Chain height 1 (max parallelism) vs the full chain (max locality)."""
    times = benchmark.pedantic(
        lambda: sweep_segment_height(heights=(1, 2, 4, None), scale=scale),
        rounds=1,
        iterations=1,
    )
    rows = [[label, f"{t:.3f}"] for label, t in times.items()]
    write_report(
        results_dir,
        f"abl_segmentation_{scale}.txt",
        format_table(
            ["chain height", "time (s)"],
            rows,
            title="Ablation: GEMM chain segment height (15 cores/node)",
        ),
    )
    if shapes_asserted(scale):
        # Section V: "parallelism between GEMMs is more significant
        # than locality for the performance of this program"
        assert times["height-1"] < times["full-chain"]


@pytest.mark.benchmark(group="ablations")
def test_abl_write_organization(benchmark, results_dir, scale):
    """Single vs parallel WRITE as mutex operations get more expensive."""
    grid = benchmark.pedantic(
        lambda: sweep_write_organization(
            mutex_costs=(4.0e-7, 4.0e-6, 4.0e-5), scale=scale
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [cost_label, f"{cell['single-write (v5)']:.3f}", f"{cell['parallel-write']:.3f}"]
        for cost_label, cell in grid.items()
    ]
    write_report(
        results_dir,
        f"abl_write_{scale}.txt",
        format_table(
            ["mutex op cost", "single WRITE (v5)", "parallel WRITEs"],
            rows,
            title="Ablation: WRITE organization vs mutex cost (15 cores/node)",
        ),
    )
    if shapes_asserted(scale):
        # with expensive system-wide lock operations, the single-WRITE
        # organization must win (the paper's v5-vs-v3 reasoning)
        expensive = grid["lock=4e-05s"]
        assert expensive["single-write (v5)"] <= expensive["parallel-write"]


@pytest.mark.benchmark(group="ablations")
def test_abl_scheduler_policies(benchmark, results_dir, scale):
    """Priority-aware default vs FIFO vs LIFO node schedulers (v4)."""
    times = benchmark.pedantic(
        lambda: compare_scheduler_policies(scale=scale), rounds=1, iterations=1
    )
    rows = [[policy, f"{t:.3f}"] for policy, t in times.items()]
    write_report(
        results_dir,
        f"abl_scheduler_{scale}.txt",
        format_table(
            ["policy", "time (s)"],
            rows,
            title="Ablation: node scheduler policy (v4, 7 cores/node)",
        ),
    )
    if shapes_asserted(scale):
        # the priority scheduler (the paper's default) must not lose
        # to ignoring priorities outright
        assert times["priority"] <= times["fifo"] * 1.02


@pytest.mark.benchmark(group="ablations")
def test_abl_load_balancing(benchmark, results_dir, scale):
    """NXTVAL stealing vs static chains, plus the PaRSEC hybrid."""
    times = benchmark.pedantic(
        lambda: compare_load_balancing(scale=scale), rounds=1, iterations=1
    )
    rows = [[label, f"{t:.3f}"] for label, t in times.items()]
    write_report(
        results_dir,
        f"abl_loadbalance_{scale}.txt",
        format_table(
            ["strategy", "time (s)"],
            rows,
            title="Ablation: load balancing strategies (7 cores/node)",
        ),
    )
    if shapes_asserted(scale):
        # the PaRSEC approach must beat both legacy organizations
        parsec = times["parsec-v4 (static nodes + dynamic cores)"]
        assert parsec < times["nxtval-stealing"]
        assert parsec < times["static-cyclic"]
