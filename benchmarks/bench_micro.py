"""Micro-benchmarks of the substrate itself.

These are conventional pytest-benchmark measurements (multiple rounds)
of the hot paths: DES event throughput, GA one-sided operations, PTG
instantiation, and a small end-to-end PaRSEC execution. They guard the
simulator's own performance — the Figure 9 sweep runs ~30 full cluster
simulations, so kernel regressions hurt.
"""

import pytest

from repro.core import api
from repro.core.inspector import inspect_subroutine
from repro.core.ptg_build import build_ccsd_ptg
from repro.core.variants import V5
from repro.experiments.calibration import make_cluster, make_workload
from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.engine import Engine


@pytest.mark.benchmark(group="micro")
def test_micro_engine_event_throughput(benchmark):
    """Cost of scheduling + dispatching 10k timeout events."""

    def run():
        engine = Engine()

        def worker():
            for _ in range(2500):
                yield engine.timeout(1.0)

        for _ in range(4):
            engine.process(worker())
        engine.run()
        return engine.now

    assert benchmark(run) == 2500.0


@pytest.mark.benchmark(group="micro")
def test_micro_engine_dispatch_cascade(benchmark):
    """Zero-delay event cascades: the immediate-lane fast path.

    succeed -> callback -> succeed chains, 50k hops. Before the lane
    every hop cost a heapq push/pop of a (time, seq, call) tuple; now
    hops ride a plain FIFO (see README.md, "Performance").
    """

    def run():
        engine = Engine()
        count = [0]

        def hop(ev):
            count[0] += 1
            if count[0] < 50_000:
                nxt = engine.event()
                nxt._wait(hop)
                nxt.succeed(None)

        first = engine.event()
        first._wait(hop)
        first.succeed(None)
        engine.run()
        return count[0]

    assert benchmark(run) == 50_000


@pytest.mark.benchmark(group="micro")
def test_micro_store_pingpong(benchmark):
    """Hot get()-with-item path through a Store (pre-filled producer)."""
    from repro.sim.queues import Store

    def run():
        engine = Engine()
        store = Store(engine)
        for i in range(25_000):
            store.put(i)
        got = [0]

        def consumer():
            while got[0] < 25_000:
                ok, _item = store.try_get()
                if not ok:
                    yield store.get()
                else:
                    yield engine.checkpoint
                got[0] += 1

        engine.process(consumer())
        engine.run()
        return got[0]

    assert benchmark(run) == 25_000


@pytest.mark.benchmark(group="micro")
def test_micro_timeline_timer_churn(benchmark):
    """Re-arm/fire churn through the array-backed timeline.

    The same shape as test_micro_engine_event_throughput — four serial
    owners, 2500 timed waits each — but every wait rides a reusable
    timeline channel instead of allocating a Timeout + ScheduledCall
    per event. The merged drain order is identical (the equivalence is
    asserted in tests/sim/test_timeline.py); the ratio of these two
    benchmarks is the per-event win of the struct-of-arrays store.
    """
    from repro.sim.timeline import KIND_TASK

    def run():
        engine = Engine()

        def worker():
            timer = engine.timeline.timer(KIND_TASK)
            for _ in range(2500):
                yield timer.after(1.0)

        for _ in range(4):
            engine.process(worker())
        engine.run()
        return engine.now

    assert benchmark(run) == 2500.0


@pytest.mark.benchmark(group="micro")
def test_micro_bandwidth_reschedule_churn(benchmark):
    """Processor-sharing arrivals: every transfer re-arms one DIRECT row.

    Before the timeline this path cancelled and re-pushed a
    ScheduledCall per arrival; the lazily-shed stale rows now stay in
    the timeline heap and the wakeup fires straight from the drain
    slot.
    """

    def run():
        engine = Engine()
        from repro.sim.resources import BandwidthResource

        membw = BandwidthResource(engine, capacity=1e9)

        def producer():
            for _ in range(2000):
                yield membw.transfer(1e6)

        for _ in range(2):
            engine.process(producer())
        engine.run()
        return membw.total_work

    assert benchmark(run) == pytest.approx(4e9)


@pytest.mark.benchmark(group="micro")
def test_micro_cancelled_timer_churn(benchmark):
    """Schedule-then-cancel churn: compaction keeps the heap bounded."""

    def run():
        engine = Engine()
        peak = 0
        for i in range(20_000):
            engine.schedule(1.0 + i, lambda: None).cancel()
            peak = max(peak, engine.heap_size)
        engine.run()
        return peak

    assert benchmark(run) <= 130


@pytest.mark.benchmark(group="micro")
def test_micro_ga_fetch_roundtrips(benchmark):
    """1k blocking one-sided gets against remote owners."""

    def run():
        cluster = Cluster(
            ClusterConfig(n_nodes=8, cores_per_node=1, data_mode=DataMode.SYNTH)
        )
        ga = GlobalArrays(cluster)
        array = ga.create("t", 8 * 4096)

        def reader(rank):
            for i in range(125):
                target = (rank + 1 + i) % 8
                lo, hi = array.distribution.node_range(target)
                yield from ga.fetch(rank, array, lo, lo + 512)

        for rank in range(8):
            cluster.engine.process(reader(rank))
        cluster.run()
        return ga.gets

    assert benchmark(run) == 1000


@pytest.mark.benchmark(group="micro")
def test_micro_ptg_instantiation(benchmark):
    """Inspection + PTG instantiation for the small workload."""
    cluster = make_cluster(2, n_nodes=8)
    workload = make_workload(cluster, scale="small")

    def run():
        md = inspect_subroutine(workload.subroutine, cluster, V5)
        ptg = build_ccsd_ptg(V5, md)
        graph = ptg.instantiate(md, cluster.n_nodes)
        return len(graph)

    n_tasks = benchmark(run)
    assert n_tasks > workload.subroutine.n_gemms * 3


@pytest.mark.benchmark(group="micro")
def test_micro_end_to_end_small_v5(benchmark):
    """Full simulated v5 execution of the small workload (SYNTH)."""

    def run():
        cluster = make_cluster(2, n_nodes=8)
        workload = make_workload(cluster, scale="small")
        return api.run(workload, variant=V5).execution_time

    assert benchmark(run) > 0
