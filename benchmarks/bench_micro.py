"""Micro-benchmarks of the substrate itself.

These are conventional pytest-benchmark measurements (multiple rounds)
of the hot paths: DES event throughput, GA one-sided operations, PTG
instantiation, and a small end-to-end PaRSEC execution. They guard the
simulator's own performance — the Figure 9 sweep runs ~30 full cluster
simulations, so kernel regressions hurt.
"""

import pytest

from repro.core import api
from repro.core.inspector import inspect_subroutine
from repro.core.ptg_build import build_ccsd_ptg
from repro.core.variants import V5
from repro.experiments.calibration import make_cluster, make_workload
from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.engine import Engine


@pytest.mark.benchmark(group="micro")
def test_micro_engine_event_throughput(benchmark):
    """Cost of scheduling + dispatching 10k timeout events."""

    def run():
        engine = Engine()

        def worker():
            for _ in range(2500):
                yield engine.timeout(1.0)

        for _ in range(4):
            engine.process(worker())
        engine.run()
        return engine.now

    assert benchmark(run) == 2500.0


@pytest.mark.benchmark(group="micro")
def test_micro_ga_fetch_roundtrips(benchmark):
    """1k blocking one-sided gets against remote owners."""

    def run():
        cluster = Cluster(
            ClusterConfig(n_nodes=8, cores_per_node=1, data_mode=DataMode.SYNTH)
        )
        ga = GlobalArrays(cluster)
        array = ga.create("t", 8 * 4096)

        def reader(rank):
            for i in range(125):
                target = (rank + 1 + i) % 8
                lo, hi = array.distribution.node_range(target)
                yield from ga.fetch(rank, array, lo, lo + 512)

        for rank in range(8):
            cluster.engine.process(reader(rank))
        cluster.run()
        return ga.gets

    assert benchmark(run) == 1000


@pytest.mark.benchmark(group="micro")
def test_micro_ptg_instantiation(benchmark):
    """Inspection + PTG instantiation for the small workload."""
    cluster = make_cluster(2, n_nodes=8)
    workload = make_workload(cluster, scale="small")

    def run():
        md = inspect_subroutine(workload.subroutine, cluster, V5)
        ptg = build_ccsd_ptg(V5, md)
        graph = ptg.instantiate(md, cluster.n_nodes)
        return len(graph)

    n_tasks = benchmark(run)
    assert n_tasks > workload.subroutine.n_gemms * 3


@pytest.mark.benchmark(group="micro")
def test_micro_end_to_end_small_v5(benchmark):
    """Full simulated v5 execution of the small workload (SYNTH)."""

    def run():
        cluster = make_cluster(2, n_nodes=8)
        workload = make_workload(cluster, scale="small")
        return api.run(workload, variant=V5).execution_time

    assert benchmark(run) > 0
