"""Figures 12 & 13: execution trace of the original NWChem code.

Figure 12's reading: "communication is interleaved with computation,
however it is not overlapped ... because it is not given a chance to do
so". Figure 13 zooms in: GET_HASH_BLOCK / write-back rectangles are
comparable in length to the GEMM rectangles.

We assert both: within-thread comm/compute overlap is exactly zero, and
blocking data movement is a large share of each rank's busy time.
"""

import pytest

from benchmarks.conftest import shapes_asserted, write_report
from repro.analysis.gantt import render_gantt
from repro.experiments.traces import comm_vs_gemm_share, run_fig12_13
from repro.sim.trace import TaskCategory


@pytest.mark.benchmark(group="traces")
def test_fig12_13_original_trace(benchmark, results_dir, scale):
    original = benchmark.pedantic(
        lambda: run_fig12_13(scale=scale), rounds=1, iterations=1
    )
    shares = {
        category.value: f"{100 * share:.1f}%"
        for category, share in sorted(
            original.category_share.items(), key=lambda kv: -kv[1]
        )
    }
    lines = [
        "Figure 12/13 reproduction: original NWChem code, traced",
        f"scale={scale}, 32 nodes x 7 ranks/node",
        "",
        f"execution time:                  {original.execution_time:.3f}s",
        f"comm/compute overlap (in-rank):  {100 * original.overlap:.1f}%",
        f"blocking data movement share:    {100 * original.comm_fraction:.1f}%",
        f"comm vs GEMM span time:          {comm_vs_gemm_share(original):.2f}x",
        f"busy time shares: {shares}",
        "",
        original.gantt(width=100, max_rows=7),
        "",
        "Figure 13 (zoom into the first tenth, 'so that individual tasks "
        "can be discerned'):",
        render_gantt(
            original.trace,
            width=100,
            max_rows=7,
            t_min=0.0,
            t_max=original.execution_time / 10.0,
        ),
    ]
    write_report(results_dir, f"fig12_13_{scale}.txt", "\n".join(lines))
    if not shapes_asserted(scale):
        return  # smoke run at reduced scale: report only
    # Figure 12: zero overlap, structurally — blocking gets
    assert original.overlap == 0.0
    # Figure 13: communication spans comparable to (here: exceeding)
    # GEMM spans
    assert comm_vs_gemm_share(original) > 0.5
    # the GEMM spans exist and communication is a major busy-time share
    assert original.category_share.get(TaskCategory.GEMM, 0) > 0.2
    assert original.comm_fraction > 0.3
