"""Figure 9: execution time of original vs PaRSEC v1-v5, 32 nodes.

Regenerates the paper's central figure as a table: one row per code,
one column per cores/node in {1, 3, 7, 11, 15}, beta-carotene workload.
Asserts the shape claims of Section V (see
:func:`repro.experiments.fig9.fig9_shape_checks`).
"""

import pytest

from benchmarks.conftest import shapes_asserted, write_report
from repro.experiments.fig9 import fig9_shape_checks, run_fig9


@pytest.mark.benchmark(group="fig9")
def test_fig9_full_sweep(benchmark, results_dir, scale):
    result = benchmark.pedantic(
        lambda: run_fig9(scale=scale), rounds=1, iterations=1
    )
    checks = fig9_shape_checks(result)
    lines = [
        result.table(),
        "",
        result.chart(),
        "",
        result.summary_table(),
        "",
        "Shape checks:",
    ]
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"  [{status}] {check.name}: {check.detail}")
    write_report(results_dir, f"fig9_{scale}.txt", "\n".join(lines))
    if not shapes_asserted(scale):
        return  # smoke run at reduced scale: report only
    failed = [c for c in checks if not c.passed]
    assert not failed, "; ".join(f"{c.name} ({c.detail})" for c in failed)
