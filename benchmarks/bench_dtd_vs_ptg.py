"""PTG vs Dynamic Task Discovery — the Section VI comparison, measured.

The paper argues the PTG's symbolic representation is "hardly
equivalent" to DTD's skeleton programs that build the whole DAG in
memory. Here both models execute the identical v5 task organization of
icsd_t2_7 on the identical simulated machine, so the difference is
purely representational:

- the PTG instantiates tasks from a handful of symbolic classes; the
  DTD skeleton *inserts* every task serially and *materializes* every
  dependence edge;
- execution quality should be comparable (same placement, same
  priorities, same costs).
"""

import pytest

from benchmarks.conftest import shapes_asserted, write_report
from repro.analysis.report import format_table
from repro.core.dtd_port import run_over_dtd
from repro.core import api
from repro.core.variants import V5
from repro.experiments.calibration import make_cluster, make_workload


@pytest.mark.benchmark(group="dtd")
def test_dtd_vs_ptg_comparison(benchmark, results_dir, scale):
    def run_both():
        cluster = make_cluster(7)
        workload = make_workload(cluster, scale=scale)
        ptg_run = api.run(workload, variant=V5)

        cluster = make_cluster(7)
        workload = make_workload(cluster, scale=scale)
        dtd_run = run_over_dtd(cluster, workload.subroutine)
        return ptg_run, dtd_run

    ptg_run, dtd_run = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        [
            "PTG (v5)",
            f"{ptg_run.execution_time:.3f}",
            str(ptg_run.n_tasks),
            str(len(ptg_run.tasks_per_class)),  # symbolic classes
            "0 (symbolic dataflow)",
            "-",
        ],
        [
            "DTD (v5 organization)",
            f"{dtd_run.execution_time:.3f}",
            str(dtd_run.n_tasks),
            str(dtd_run.n_tasks),  # every task is an explicit record
            str(dtd_run.n_edges),
            f"{dtd_run.insertion_time * 1e3:.2f} ms serial insertion",
        ],
    ]
    write_report(
        results_dir,
        f"dtd_vs_ptg_{scale}.txt",
        format_table(
            [
                "model",
                "time (s)",
                "tasks",
                "task records",
                "edges in memory",
                "build cost",
            ],
            rows,
            title="PTG vs DTD: icsd_t2_7 (v5 organization), 32 nodes x 7 cores",
        ),
    )
    if not shapes_asserted(scale):
        return  # smoke run at reduced scale: report only
    # both models execute the same graph competently...
    assert dtd_run.execution_time < 1.5 * ptg_run.execution_time
    assert dtd_run.n_tasks == ptg_run.n_tasks
    # ...but DTD pays a materialized DAG (roughly one in-edge per
    # non-source task, ~edge-per-task scale) and a serial insertion
    # phase — the paper's Section VI argument
    assert dtd_run.n_edges > 0.9 * dtd_run.n_tasks
    assert dtd_run.insertion_time > 0
