"""Section IV-A equivalence: all implementations agree to 14 digits.

"We note that the final result (correlation energy) computed by the
different variations matched up to the 14th digit."

Runs the dense reference, the legacy execution, and all five PaRSEC
variants with real data, and compares correlation energies.
"""

import pytest

from benchmarks.conftest import write_report
from repro.experiments.equivalence import run_equivalence


@pytest.mark.benchmark(group="equivalence")
def test_correlation_energy_equivalence(benchmark, results_dir):
    # real-data mode: always at 'small' scale (the paper-scale tensors
    # would need ~40 GB of storage; the claim is scale-independent)
    result = benchmark.pedantic(
        lambda: run_equivalence(scale="small", n_nodes=8), rounds=1, iterations=1
    )
    lines = [
        "Correlation-energy equivalence (Section IV-A)",
        "",
        *(
            f"  {name:10s} {energy:+.15e}"
            for name, energy in sorted(result.energies.items())
        ),
        "",
        f"max relative spread: {result.max_relative_spread:.3e}",
        f"agreement: {result.agrees_to_digits():.1f} digits (paper: 14)",
    ]
    write_report(results_dir, "equivalence.txt", "\n".join(lines))
    assert result.agrees_to_digits() >= 13.0
