"""Hybrid execution: what accelerators do to the Figure 9 picture.

The paper's introduction motivates PaRSEC partly as "a robust path to
exploit hybrid computer architectures". This bench runs variant v5 with
0/1/2 accelerators per node across core counts and shows the classic
hybrid effect: GPUs demolish the compute time, so the bottleneck moves
to data movement (NIC + communication thread) — after which more GPUs
stop helping.
"""

import pytest

from benchmarks.conftest import shapes_asserted, write_report
from repro.analysis.report import format_table
from repro.core import api
from repro.core.variants import V5
from repro.experiments.calibration import PAPER_MACHINE, PAPER_NODES, make_workload
from repro.sim.cluster import Cluster, ClusterConfig, DataMode


def run_point(cores: int, gpus: int, scale: str) -> float:
    cluster = Cluster(
        ClusterConfig(
            n_nodes=PAPER_NODES,
            cores_per_node=cores,
            machine=PAPER_MACHINE,
            data_mode=DataMode.SYNTH,
            trace_enabled=False,
            metrics_enabled=False,
            gpus_per_node=gpus,
        )
    )
    workload = make_workload(cluster, scale=scale)
    return api.run(workload, variant=V5).execution_time


@pytest.mark.benchmark(group="hybrid")
def test_hybrid_gpu_sweep(benchmark, results_dir, scale):
    core_counts = (1, 7, 15)
    gpu_counts = (0, 1, 2)

    def sweep():
        return {
            gpus: {cores: run_point(cores, gpus, scale) for cores in core_counts}
            for gpus in gpu_counts
        }

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{gpus} GPUs/node"] + [f"{times[gpus][c]:.3f}" for c in core_counts]
        for gpus in gpu_counts
    ]
    write_report(
        results_dir,
        f"hybrid_{scale}.txt",
        format_table(
            ["configuration"] + [f"{c} cores/node" for c in core_counts],
            rows,
            title="Hybrid execution: v5 with accelerators (virtual seconds)",
        ),
    )
    if not shapes_asserted(scale):
        return  # smoke run at reduced scale: report only
    # one GPU transforms the compute-bound 1-core configuration (>=4x)...
    assert times[1][1] < 0.25 * times[0][1]
    # ...but at 15 cores the run is data-movement bound, so accelerators
    # barely move the needle either way (one GPU can even lose: all
    # GEMMs funnel through a single PCIe-staged device)
    assert 0.5 < times[2][15] / times[0][15] < 1.5
    # and the second GPU's marginal gain is far below the first's
    first_gpu_gain = times[0][1] / times[1][1]
    second_gpu_gain = times[1][15] / times[2][15]
    assert second_gpu_gain < 0.5 * first_gpu_gain
