"""Legacy setup shim.

The execution environment has no network access and no `wheel` package,
so PEP 660 editable installs (which need to build a wheel) fail. With
this shim and no [build-system] table in pyproject.toml, pip falls back
to `setup.py develop`, which works offline.
"""

from setuptools import setup

setup()
