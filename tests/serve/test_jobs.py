"""Job specs, normalization, digests, and the result cache."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    JOB_KINDS,
    JobSpec,
    build_cells,
    job_digest,
    serialize_results,
)
from repro.experiments.sweep import CellError
from repro.util.errors import ConfigurationError


class TestNormalize:
    def test_defaults_fill_missing_params(self):
        spec = JobSpec.normalize("point")
        assert spec.params["code"] == "v5"
        assert spec.params["scale"] == "tiny"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job kind"):
            JobSpec.normalize("frobnicate")

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            JobSpec.normalize("point", {"corse": 4})

    def test_bad_scale_and_code_rejected(self):
        with pytest.raises(ConfigurationError, match="scale"):
            JobSpec.normalize("point", {"scale": "huge"})
        with pytest.raises(ConfigurationError, match="code"):
            JobSpec.normalize("point", {"code": "v9"})
        with pytest.raises(ConfigurationError, match="at least one code"):
            JobSpec.normalize("fig9", {"codes": []})

    def test_collections_canonicalized(self):
        a = JobSpec.normalize("fig9", {"core_counts": (1, 2)})
        b = JobSpec.normalize("fig9", {"core_counts": [1, 2]})
        assert a == b

    def test_roundtrips_through_dict(self):
        spec = JobSpec.normalize("chaos", {"codes": ["v5"], "stealing": True})
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_workload_defaults_to_t2_7(self):
        for kind in JOB_KINDS:
            assert JobSpec.normalize(kind).params["workload"] == "t2_7"

    def test_workload_tokens_accepted(self):
        spec = JobSpec.normalize("point", {"workload": "rbgs:8x8"})
        assert spec.params["workload"] == "rbgs:8x8"

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            JobSpec.normalize("point", {"workload": "frobnicate"})
        with pytest.raises(ConfigurationError, match="empty params"):
            JobSpec.normalize("fig9", {"workload": "rbgs:"})

    def test_describe_names_the_workload(self):
        spec = JobSpec.normalize("chaos", {"workload": "rbgs"})
        assert "rbgs" in spec.describe()


class TestDigest:
    def test_equal_specs_equal_digests(self):
        a = JobSpec.normalize("point", {"cores": 2})
        b = JobSpec.normalize("point", {"cores": 2, "seed": 7})  # 7 is default
        assert job_digest(a) == job_digest(b)

    def test_any_param_changes_the_digest(self):
        base = job_digest(JobSpec.normalize("point"))
        assert job_digest(JobSpec.normalize("point", {"seed": 8})) != base
        assert job_digest(JobSpec.normalize("point", {"stealing": True})) != base
        assert job_digest(JobSpec.normalize("fig9")) != base

    def test_digest_is_stable_hex(self):
        digest = job_digest(JobSpec.normalize("point"))
        assert len(digest) == 64 and int(digest, 16) >= 0

    def test_workload_separates_digests(self):
        # same RunConfig/seed, different workload: never the same address
        for kind in JOB_KINDS:
            digests = {
                job_digest(JobSpec.normalize(kind, {"workload": wl}))
                for wl in ("t2_7", "ccsd", "rbgs")
            }
            assert len(digests) == 3


class TestPriority:
    def test_priority_is_split_off_the_params(self):
        spec = JobSpec.normalize("point", {"seed": 2, "priority": 5})
        assert spec.priority == 5
        assert "priority" not in spec.params  # scheduling, not content

    def test_priority_defaults_to_zero(self):
        assert JobSpec.normalize("point").priority == 0

    def test_priority_never_changes_the_digest(self):
        plain = JobSpec.normalize("point", {"seed": 2})
        hot = JobSpec.normalize("point", {"seed": 2, "priority": 9})
        assert job_digest(plain) == job_digest(hot)

    def test_priority_roundtrips_through_dict(self):
        hot = JobSpec.normalize("point", {"seed": 2, "priority": 3})
        d = hot.to_dict()
        assert d["priority"] == 3 and "priority" not in d["params"]
        back = JobSpec.from_dict(d)
        assert back == hot

    def test_zero_priority_keeps_the_v1_dict_shape(self):
        # journals written before priorities existed must replay, and
        # priority-less jobs must keep writing the same bytes they did
        d = JobSpec.normalize("point", {"seed": 2}).to_dict()
        assert "priority" not in d
        assert JobSpec.from_dict(d).priority == 0


class TestBuildCells:
    def test_fig9_grid_expands_code_x_cores(self):
        spec = JobSpec.normalize(
            "fig9", {"codes": ["v4", "v5"], "core_counts": [1, 2]}
        )
        cells = build_cells(spec)
        assert [c.key for c in cells] == [
            ("v4", 1), ("v4", 2), ("v5", 1), ("v5", 2)
        ]

    def test_point_is_one_cell(self):
        cells = build_cells(JobSpec.normalize("point"))
        assert len(cells) == 1 and cells[0].key == ("v5", 2)

    def test_chaos_one_cell_per_runner(self):
        spec = JobSpec.normalize("chaos", {"codes": ["original", "v5"]})
        cells = build_cells(spec)
        assert [c.key for c in cells] == [("original",), ("v5",)]
        assert all("stealing" in c.kwargs for c in cells)

    def test_all_kinds_build(self):
        for kind in JOB_KINDS:
            assert build_cells(JobSpec.normalize(kind))

    def test_cells_carry_the_workload(self):
        spec = JobSpec.normalize("point", {"workload": "rbgs"})
        cells = build_cells(spec)
        assert cells and all(c.kwargs["workload"] == "rbgs" for c in cells)


class TestSerializeResults:
    def test_splits_values_and_errors(self):
        cells = build_cells(
            JobSpec.normalize("fig9", {"codes": ["v4", "v5"],
                                       "core_counts": [1]})
        )
        error = CellError(
            key=("v5", 1), label="v5/1", kind="poisoned",
            message="boom", attempts=2,
        )
        values, errors = serialize_results(
            cells, {("v4", 1): {"time": 1.25}, ("v5", 1): error}
        )
        assert values == {"v4/1": {"time": 1.25}}
        assert errors["v5/1"]["kind"] == "poisoned"
        assert errors["v5/1"]["attempts"] == 2

    def test_jsonable_coercion(self):
        import numpy as np

        cells = build_cells(JobSpec.normalize("point"))
        values, errors = serialize_results(
            cells, {("v5", 2): {"t": np.float64(1.5), "n": np.int64(3),
                                "seq": (1, 2)}}
        )
        assert values == {"v5/2": {"t": 1.5, "n": 3, "seq": [1, 2]}}
        assert errors == {}


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("d1") is None
        cache.put("d1", {"result": {"x": 1}})
        assert cache.get("d1") == {"result": {"x": 1}}
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_metrics_wiring(self):
        metrics = MetricsRegistry(enabled=True)
        cache = ResultCache(metrics)
        cache.get("d1")
        cache.put("d1", {})
        cache.get("d1")
        assert metrics.counter_value("serve.cache.misses") == 1.0
        assert metrics.counter_value("serve.cache.hits") == 1.0
        assert metrics.gauge_value("serve.cache.entries") == 1.0

    def test_contains_and_len(self):
        cache = ResultCache()
        cache.put("d1", {})
        assert "d1" in cache and len(cache) == 1
