"""The scheduler: admission, coalescing, execution, degradation.

Cells are stubbed (``build_cells`` is monkeypatched) so these tests
exercise the control plane in milliseconds; the real experiment cells
are covered by the daemon round-trip and service-restart tests.
"""

import time

import pytest

from repro.experiments.sweep import RetryPolicy, SweepCell
from repro.obs.registry import MetricsRegistry
from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.serve.journal import Journal, read_events, rebuild
from repro.serve.scheduler import JobScheduler, SubmissionRejected


def _ok(value):
    return {"value": value}


def _boom(value):
    raise ValueError(f"cell {value} exploded")


def _fake_cells(spec):
    """One cell per unit of ``seed % 10``; seeds ending in 666 explode."""
    seed = spec.params["seed"]
    fn = _boom if seed % 1000 == 666 else _ok
    return [SweepCell(key=(f"c{i}",), fn=fn, kwargs=dict(value=i))
            for i in range(max(seed % 10, 1))]


def _workload_cells(spec):
    """One cell whose value is the spec's workload, so each workload's
    result bytes are distinguishable in the cache."""
    return [SweepCell(key=("c0",), fn=_ok,
                      kwargs=dict(value=spec.params["workload"]))]


@pytest.fixture
def scheduler(tmp_path, monkeypatch):
    monkeypatch.setattr("repro.serve.scheduler.build_cells", _fake_cells)
    journal = Journal(tmp_path / "journal.jsonl")
    sched = JobScheduler(
        journal=journal,
        metrics=MetricsRegistry(enabled=True),
        pool_jobs=1,  # serial: stub cells run in the worker thread
        retry=RetryPolicy(retries=0, base_delay_s=0.0, max_delay_s=0.0),
    )
    yield sched
    sched.stop()
    journal.close()


def _wait_done(scheduler, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = scheduler.get(job_id)
        if record.status not in ("queued", "running"):
            return record
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never finished")


class TestSubmitAndExecute:
    def test_job_runs_to_done(self, scheduler):
        scheduler.start()
        record = scheduler.submit("point", {"seed": 3})
        assert record.status in ("queued", "running", "done")
        done = _wait_done(scheduler, record.job_id)
        assert done.status == "done"
        assert done.result == {
            "c0": {"value": 0}, "c1": {"value": 1}, "c2": {"value": 2}
        }
        assert done.cells_total == 3

    def test_transitions_are_journaled(self, scheduler):
        scheduler.start()
        record = scheduler.submit("point", {"seed": 1})
        _wait_done(scheduler, record.job_id)
        events = [e["event"] for e in read_events(scheduler.journal.path)]
        assert events == ["job_submitted", "job_started", "job_finished"]

    def test_failing_job_degrades_not_crashes(self, scheduler):
        scheduler.start()
        record = scheduler.submit("point", {"seed": 666})
        done = _wait_done(scheduler, record.job_id)
        assert done.status == "failed"
        assert done.errors["c0"]["kind"] == "exception"
        assert "exploded" in done.errors["c0"]["message"]
        # and the worker loop survives to run the next job
        after = scheduler.submit("point", {"seed": 1})
        assert _wait_done(scheduler, after.job_id).status == "done"


class TestCacheAndCoalescing:
    def test_second_identical_submission_is_a_cache_hit(self, scheduler):
        scheduler.start()
        first = scheduler.submit("point", {"seed": 2})
        _wait_done(scheduler, first.job_id)
        second = scheduler.submit("point", {"seed": 2})
        assert second.cached and second.status == "done"
        assert second.job_id != first.job_id
        assert second.result == scheduler.get(first.job_id).result

    def test_cache_hits_are_journaled_as_finished(self, scheduler):
        scheduler.start()
        first = scheduler.submit("point", {"seed": 2})
        _wait_done(scheduler, first.job_id)
        second = scheduler.submit("point", {"seed": 2})
        finished = [
            e for e in read_events(scheduler.journal.path)
            if e["event"] == "job_finished"
        ]
        assert [e["job_id"] for e in finished] == [first.job_id, second.job_id]
        assert finished[1]["cached"] is True

    def test_pending_duplicates_coalesce(self, scheduler):
        # worker NOT started: both submissions sit in the queue
        first = scheduler.submit("point", {"seed": 2})
        second = scheduler.submit("point", {"seed": 2})
        assert second.job_id == first.job_id  # same record, no new work
        assert len(scheduler._queue) == 1

    def test_failed_jobs_are_not_cached(self, scheduler):
        scheduler.start()
        first = scheduler.submit("point", {"seed": 666})
        _wait_done(scheduler, first.job_id)
        second = scheduler.submit("point", {"seed": 666})
        assert not second.cached  # re-admitted, will re-run
        _wait_done(scheduler, second.job_id)


class TestAdmissionControl:
    def test_saturated_queue_sheds_with_retry_hint(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.scheduler.build_cells", _fake_cells)
        journal = Journal(tmp_path / "journal.jsonl")
        sched = JobScheduler(
            journal=journal,
            breaker=CircuitBreaker(BreakerConfig(max_queue_depth=2)),
        )
        try:
            sched.submit("point", {"seed": 1})  # worker not started: queued
            sched.submit("point", {"seed": 2})
            with pytest.raises(SubmissionRejected) as exc:
                sched.submit("point", {"seed": 3})
            assert exc.value.reason == "saturated"
            assert exc.value.retry_after_s > 0
        finally:
            journal.close()

    def test_repeated_failures_trip_the_breaker(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.scheduler.build_cells", _fake_cells)
        journal = Journal(tmp_path / "journal.jsonl")
        sched = JobScheduler(
            journal=journal,
            breaker=CircuitBreaker(BreakerConfig(failure_threshold=2)),
            retry=RetryPolicy(retries=0, base_delay_s=0.0, max_delay_s=0.0),
        )
        sched.start()
        try:
            for seed in (666, 1666):  # distinct digests, both explode
                record = sched.submit("point", {"seed": seed})
                _wait_done(sched, record.job_id)
            with pytest.raises(SubmissionRejected) as exc:
                sched.submit("point", {"seed": 5})
            assert exc.value.reason == "open"
        finally:
            sched.stop()
            journal.close()


class TestRecovery:
    def test_recover_adopts_pending_jobs_and_results(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.scheduler.build_cells", _fake_cells)
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        sched = JobScheduler(journal=journal, pool_jobs=1,
                             retry=RetryPolicy(retries=0, base_delay_s=0.0,
                                               max_delay_s=0.0))
        sched.start()
        done = sched.submit("point", {"seed": 2})
        _wait_done(sched, done.job_id)
        pending = sched.submit("point", {"seed": 3})
        sched.stop()  # journals job_requeued if it was mid-run
        journal.close()

        journal2 = Journal(path)
        sched2 = JobScheduler(journal=journal2, pool_jobs=1,
                              retry=RetryPolicy(retries=0, base_delay_s=0.0,
                                                max_delay_s=0.0))
        sched2.recover(rebuild(read_events(path)))
        # the finished job came back final, the pending one queued
        assert sched2.get(done.job_id).status == "done"
        assert sched2.get(done.job_id).result == done.result
        record = sched2.get(pending.job_id)
        assert record.status in ("queued", "done")
        sched2.start()
        recovered = _wait_done(sched2, pending.job_id)
        assert recovered.status == "done"
        # and the recovered cache serves the first digest without rerun
        hit = sched2.submit("point", {"seed": 2})
        assert hit.cached
        sched2.stop()
        journal2.close()

    def test_stop_requeues_the_inflight_job(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.scheduler.build_cells", _fake_cells)
        journal = Journal(tmp_path / "journal.jsonl")
        sched = JobScheduler(journal=journal)
        record = sched.submit("point", {"seed": 1})
        sched._running_id = record.job_id  # as if caught mid-run
        sched.stop()
        events = read_events(journal.path)
        assert events[-1]["event"] == "job_requeued"
        assert events[-1]["job_id"] == record.job_id
        journal.close()
        assert rebuild(events).pending == [record.job_id]


class TestWorkloadIsolation:
    """Two workloads with identical RunConfig/seed never collide —
    not live, and not through a journal replay."""

    def test_replayed_cache_keeps_workloads_apart(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.scheduler.build_cells", _workload_cells)
        path = tmp_path / "journal.jsonl"
        retry = RetryPolicy(retries=0, base_delay_s=0.0, max_delay_s=0.0)
        journal = Journal(path)
        sched = JobScheduler(journal=journal, pool_jobs=1, retry=retry)
        sched.start()
        # identical params except for the workload name
        a = sched.submit("point", {"seed": 7})  # workload defaults to t2_7
        b = sched.submit("point", {"seed": 7, "workload": "rbgs"})
        assert a.job_id != b.job_id and a.digest != b.digest
        done_a = _wait_done(sched, a.job_id)
        done_b = _wait_done(sched, b.job_id)
        assert done_a.result == {"c0": {"value": "t2_7"}}
        assert done_b.result == {"c0": {"value": "rbgs"}}
        sched.stop()
        journal.close()

        # replay the journal into a fresh scheduler: each digest comes
        # back with its own result, and a resubmission of either spec
        # is a cache hit serving that workload's bytes, not the other's
        journal2 = Journal(path)
        sched2 = JobScheduler(journal=journal2, pool_jobs=1, retry=retry)
        sched2.recover(rebuild(read_events(path)))
        hit_a = sched2.submit("point", {"seed": 7})
        hit_b = sched2.submit("point", {"seed": 7, "workload": "rbgs"})
        assert hit_a.cached and hit_b.cached
        assert hit_a.result == {"c0": {"value": "t2_7"}}
        assert hit_b.result == {"c0": {"value": "rbgs"}}
        sched2.stop()
        journal2.close()


class TestOverview:
    def test_overview_shape(self, scheduler):
        scheduler.start()
        record = scheduler.submit("point", {"seed": 1})
        _wait_done(scheduler, record.job_id)
        view = scheduler.overview()
        assert view["queue_depth"] == 0
        assert view["breaker"]["state"] == "closed"
        assert view["cache"]["entries"] == 1
        assert [j["job_id"] for j in view["jobs"]] == [record.job_id]
