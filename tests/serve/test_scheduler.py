"""The scheduler: admission, coalescing, execution, degradation,
concurrent workers, aged priorities, and journal compaction.

Cells are stubbed (``build_cells`` is monkeypatched) so these tests
exercise the control plane in milliseconds; the real experiment cells
are covered by the daemon round-trip and service-restart tests.
"""

import json
import threading
import time

import pytest

from repro.experiments.sweep import RetryPolicy, SweepCell
from repro.obs.registry import MetricsRegistry
from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.serve.journal import Journal, read_events, rebuild
from repro.serve.scheduler import JobScheduler, SubmissionRejected


def _ok(value):
    return {"value": value}


def _boom(value):
    raise ValueError(f"cell {value} exploded")


def _fake_cells(spec):
    """One cell per unit of ``seed % 10``; seeds ending in 666 explode."""
    seed = spec.params["seed"]
    fn = _boom if seed % 1000 == 666 else _ok
    return [SweepCell(key=(f"c{i}",), fn=fn, kwargs=dict(value=i))
            for i in range(max(seed % 10, 1))]


def _workload_cells(spec):
    """One cell whose value is the spec's workload, so each workload's
    result bytes are distinguishable in the cache."""
    return [SweepCell(key=("c0",), fn=_ok,
                      kwargs=dict(value=spec.params["workload"]))]


#: per-seed gates for the concurrency tests: a gated cell parks until
#: its seed's event is set, holding its job observably "running"
_GATES: dict[int, threading.Event] = {}


def _gated(seed):
    assert _GATES[seed].wait(timeout=10), f"gate {seed} never released"
    return {"value": seed}


def _gated_cells(spec):
    seed = spec.params["seed"]
    return [SweepCell(key=("c0",), fn=_gated, kwargs=dict(seed=seed))]


@pytest.fixture
def scheduler(tmp_path, monkeypatch):
    monkeypatch.setattr("repro.serve.scheduler.build_cells", _fake_cells)
    journal = Journal(tmp_path / "journal.jsonl")
    sched = JobScheduler(
        journal=journal,
        metrics=MetricsRegistry(enabled=True),
        pool_jobs=1,  # serial: stub cells run in the worker thread
        retry=RetryPolicy(retries=0, base_delay_s=0.0, max_delay_s=0.0),
    )
    yield sched
    sched.stop()
    journal.close()


def _wait_done(scheduler, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = scheduler.get(job_id)
        if record.status not in ("queued", "running"):
            return record
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never finished")


class TestSubmitAndExecute:
    def test_job_runs_to_done(self, scheduler):
        scheduler.start()
        record = scheduler.submit("point", {"seed": 3})
        assert record.status in ("queued", "running", "done")
        done = _wait_done(scheduler, record.job_id)
        assert done.status == "done"
        assert done.result == {
            "c0": {"value": 0}, "c1": {"value": 1}, "c2": {"value": 2}
        }
        assert done.cells_total == 3

    def test_transitions_are_journaled(self, scheduler):
        scheduler.start()
        record = scheduler.submit("point", {"seed": 1})
        _wait_done(scheduler, record.job_id)
        events = [e["event"] for e in read_events(scheduler.journal.path)]
        assert events == ["job_submitted", "job_started", "job_finished"]

    def test_failing_job_degrades_not_crashes(self, scheduler):
        scheduler.start()
        record = scheduler.submit("point", {"seed": 666})
        done = _wait_done(scheduler, record.job_id)
        assert done.status == "failed"
        assert done.errors["c0"]["kind"] == "exception"
        assert "exploded" in done.errors["c0"]["message"]
        # and the worker loop survives to run the next job
        after = scheduler.submit("point", {"seed": 1})
        assert _wait_done(scheduler, after.job_id).status == "done"


class TestCacheAndCoalescing:
    def test_second_identical_submission_is_a_cache_hit(self, scheduler):
        scheduler.start()
        first = scheduler.submit("point", {"seed": 2})
        _wait_done(scheduler, first.job_id)
        second = scheduler.submit("point", {"seed": 2})
        assert second.cached and second.status == "done"
        assert second.job_id != first.job_id
        assert second.result == scheduler.get(first.job_id).result

    def test_cache_hits_are_journaled_as_finished(self, scheduler):
        scheduler.start()
        first = scheduler.submit("point", {"seed": 2})
        _wait_done(scheduler, first.job_id)
        second = scheduler.submit("point", {"seed": 2})
        finished = [
            e for e in read_events(scheduler.journal.path)
            if e["event"] == "job_finished"
        ]
        assert [e["job_id"] for e in finished] == [first.job_id, second.job_id]
        assert finished[1]["cached"] is True

    def test_pending_duplicates_coalesce(self, scheduler):
        # worker NOT started: both submissions sit in the queue
        first = scheduler.submit("point", {"seed": 2})
        second = scheduler.submit("point", {"seed": 2})
        assert second.job_id == first.job_id  # same record, no new work
        assert len(scheduler._queue) == 1

    def test_failed_jobs_are_not_cached(self, scheduler):
        scheduler.start()
        first = scheduler.submit("point", {"seed": 666})
        _wait_done(scheduler, first.job_id)
        second = scheduler.submit("point", {"seed": 666})
        assert not second.cached  # re-admitted, will re-run
        _wait_done(scheduler, second.job_id)


class TestAdmissionControl:
    def test_saturated_queue_sheds_with_retry_hint(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.scheduler.build_cells", _fake_cells)
        journal = Journal(tmp_path / "journal.jsonl")
        sched = JobScheduler(
            journal=journal,
            breaker=CircuitBreaker(BreakerConfig(max_queue_depth=2)),
        )
        try:
            sched.submit("point", {"seed": 1})  # worker not started: queued
            sched.submit("point", {"seed": 2})
            with pytest.raises(SubmissionRejected) as exc:
                sched.submit("point", {"seed": 3})
            assert exc.value.reason == "saturated"
            assert exc.value.retry_after_s > 0
        finally:
            journal.close()

    def test_repeated_failures_trip_the_breaker(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.scheduler.build_cells", _fake_cells)
        journal = Journal(tmp_path / "journal.jsonl")
        sched = JobScheduler(
            journal=journal,
            breaker=CircuitBreaker(BreakerConfig(failure_threshold=2)),
            retry=RetryPolicy(retries=0, base_delay_s=0.0, max_delay_s=0.0),
        )
        sched.start()
        try:
            for seed in (666, 1666):  # distinct digests, both explode
                record = sched.submit("point", {"seed": seed})
                _wait_done(sched, record.job_id)
            with pytest.raises(SubmissionRejected) as exc:
                sched.submit("point", {"seed": 5})
            assert exc.value.reason == "open"
        finally:
            sched.stop()
            journal.close()


class TestRecovery:
    def test_recover_adopts_pending_jobs_and_results(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.scheduler.build_cells", _fake_cells)
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        sched = JobScheduler(journal=journal, pool_jobs=1,
                             retry=RetryPolicy(retries=0, base_delay_s=0.0,
                                               max_delay_s=0.0))
        sched.start()
        done = sched.submit("point", {"seed": 2})
        _wait_done(sched, done.job_id)
        pending = sched.submit("point", {"seed": 3})
        sched.stop()  # journals job_requeued if it was mid-run
        journal.close()

        journal2 = Journal(path)
        sched2 = JobScheduler(journal=journal2, pool_jobs=1,
                              retry=RetryPolicy(retries=0, base_delay_s=0.0,
                                                max_delay_s=0.0))
        sched2.recover(rebuild(read_events(path)))
        # the finished job came back final, the pending one queued
        assert sched2.get(done.job_id).status == "done"
        assert sched2.get(done.job_id).result == done.result
        record = sched2.get(pending.job_id)
        assert record.status in ("queued", "done")
        sched2.start()
        recovered = _wait_done(sched2, pending.job_id)
        assert recovered.status == "done"
        # and the recovered cache serves the first digest without rerun
        hit = sched2.submit("point", {"seed": 2})
        assert hit.cached
        sched2.stop()
        journal2.close()

    def test_stop_requeues_the_inflight_job(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.scheduler.build_cells", _fake_cells)
        journal = Journal(tmp_path / "journal.jsonl")
        sched = JobScheduler(journal=journal)
        record = sched.submit("point", {"seed": 1})
        sched._running.add(record.job_id)  # as if caught mid-run
        sched.stop()
        events = read_events(journal.path)
        assert events[-1]["event"] == "job_requeued"
        assert events[-1]["job_id"] == record.job_id
        journal.close()
        assert rebuild(events).pending == [record.job_id]


class TestWorkloadIsolation:
    """Two workloads with identical RunConfig/seed never collide —
    not live, and not through a journal replay."""

    def test_replayed_cache_keeps_workloads_apart(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.serve.scheduler.build_cells", _workload_cells)
        path = tmp_path / "journal.jsonl"
        retry = RetryPolicy(retries=0, base_delay_s=0.0, max_delay_s=0.0)
        journal = Journal(path)
        sched = JobScheduler(journal=journal, pool_jobs=1, retry=retry)
        sched.start()
        # identical params except for the workload name
        a = sched.submit("point", {"seed": 7})  # workload defaults to t2_7
        b = sched.submit("point", {"seed": 7, "workload": "rbgs"})
        assert a.job_id != b.job_id and a.digest != b.digest
        done_a = _wait_done(sched, a.job_id)
        done_b = _wait_done(sched, b.job_id)
        assert done_a.result == {"c0": {"value": "t2_7"}}
        assert done_b.result == {"c0": {"value": "rbgs"}}
        sched.stop()
        journal.close()

        # replay the journal into a fresh scheduler: each digest comes
        # back with its own result, and a resubmission of either spec
        # is a cache hit serving that workload's bytes, not the other's
        journal2 = Journal(path)
        sched2 = JobScheduler(journal=journal2, pool_jobs=1, retry=retry)
        sched2.recover(rebuild(read_events(path)))
        hit_a = sched2.submit("point", {"seed": 7})
        hit_b = sched2.submit("point", {"seed": 7, "workload": "rbgs"})
        assert hit_a.cached and hit_b.cached
        assert hit_a.result == {"c0": {"value": "t2_7"}}
        assert hit_b.result == {"c0": {"value": "rbgs"}}
        sched2.stop()
        journal2.close()


class TestOverview:
    def test_overview_shape(self, scheduler):
        scheduler.start()
        record = scheduler.submit("point", {"seed": 1})
        _wait_done(scheduler, record.job_id)
        view = scheduler.overview()
        assert view["queue_depth"] == 0
        assert view["breaker"]["state"] == "closed"
        assert view["cache"]["entries"] == 1
        assert [j["job_id"] for j in view["jobs"]] == [record.job_id]
        assert view["running"] == [] and view["workers"] == 1


def _make(tmp_path, monkeypatch, cells=_fake_cells, name="journal.jsonl",
          **kwargs):
    monkeypatch.setattr("repro.serve.scheduler.build_cells", cells)
    journal = Journal(tmp_path / name, compact_bytes=kwargs.pop(
        "compact_bytes", 0))
    kwargs.setdefault(
        "retry", RetryPolicy(retries=0, base_delay_s=0.0, max_delay_s=0.0))
    kwargs.setdefault("pool_jobs", 1)
    return journal, JobScheduler(journal=journal, **kwargs)


class TestConcurrentWorkers:
    def test_two_jobs_run_simultaneously(self, tmp_path, monkeypatch):
        """The tentpole acceptance: with workers=2, two submitted jobs
        are both observably running at the same time."""
        _GATES[11], _GATES[12] = threading.Event(), threading.Event()
        journal, sched = _make(tmp_path, monkeypatch, cells=_gated_cells,
                               workers=2)
        sched.start()
        try:
            a = sched.submit("point", {"seed": 11})
            b = sched.submit("point", {"seed": 12})
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                running = sched.overview()["running"]
                if len(running) == 2:
                    break
                time.sleep(0.01)
            assert sorted(running) == sorted([a.job_id, b.job_id])
            assert sched.get(a.job_id).status == "running"
            assert sched.get(b.job_id).status == "running"
            _GATES[11].set()
            _GATES[12].set()
            assert _wait_done(sched, a.job_id).status == "done"
            assert _wait_done(sched, b.job_id).status == "done"
        finally:
            _GATES[11].set(), _GATES[12].set()
            sched.stop()
            journal.close()

    def test_single_worker_runs_one_at_a_time(self, tmp_path, monkeypatch):
        _GATES[13], _GATES[14] = threading.Event(), threading.Event()
        journal, sched = _make(tmp_path, monkeypatch, cells=_gated_cells,
                               workers=1)
        sched.start()
        try:
            a = sched.submit("point", {"seed": 13})
            sched.submit("point", {"seed": 14})
            deadline = time.monotonic() + 10
            while (time.monotonic() < deadline
                   and sched.get(a.job_id).status != "running"):
                time.sleep(0.01)
            time.sleep(0.05)  # give a second worker (if any) time to err
            assert sched.overview()["running"] == [a.job_id]
        finally:
            _GATES[13].set(), _GATES[14].set()
            sched.stop()
            journal.close()

    def test_results_identical_across_worker_counts(
        self, tmp_path, monkeypatch
    ):
        """Concurrency must not change a single byte of any result."""
        seeds, payloads = (3, 4, 5, 8), {}
        for workers in (1, 2):
            journal, sched = _make(
                tmp_path, monkeypatch, workers=workers,
                name=f"w{workers}.jsonl", pool_jobs=2,
            )
            sched.start()
            try:
                records = [sched.submit("point", {"seed": s}) for s in seeds]
                payloads[workers] = [
                    json.dumps(_wait_done(sched, r.job_id).to_result_dict()
                               ["result"], sort_keys=True)
                    for r in records
                ]
            finally:
                sched.stop()
                journal.close()
        assert payloads[1] == payloads[2]

    def test_workers_must_be_positive(self, tmp_path, monkeypatch):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="workers"):
            _make(tmp_path, monkeypatch, workers=0)


class TestCellProgress:
    def test_cells_done_reaches_cells_total(self, scheduler):
        """Satellite 2: progress comes from the executor's structured
        per-cell callback, not from parsing progress-line text."""
        scheduler.start()
        record = scheduler.submit("point", {"seed": 5})  # 5 cells
        done = _wait_done(scheduler, record.job_id)
        assert (done.cells_done, done.cells_total) == (5, 5)
        cell_events = [e for e in done.events if e["type"] == "cell"]
        assert len(cell_events) == 5
        assert all(e["ok"] for e in cell_events)
        assert cell_events[-1]["cells_done"] == 5

    def test_failed_cells_still_count_toward_done(self, scheduler):
        scheduler.start()
        record = scheduler.submit("point", {"seed": 666})  # 6 exploding cells
        done = _wait_done(scheduler, record.job_id)
        assert done.status == "failed"
        assert (done.cells_done, done.cells_total) == (6, 6)
        cell_events = [e for e in done.events if e["type"] == "cell"]
        assert len(cell_events) == 6
        assert not any(e["ok"] for e in cell_events)

    def test_event_stream_orders_started_cells_finished(self, scheduler):
        scheduler.start()
        record = scheduler.submit("point", {"seed": 2})
        done = _wait_done(scheduler, record.job_id)
        kinds = [e["type"] for e in done.events]
        assert kinds == ["started", "cell", "cell", "finished"]
        assert [e["seq"] for e in done.events] == [1, 2, 3, 4]

    def test_events_since_long_poll(self, scheduler):
        scheduler.start()
        record = scheduler.submit("point", {"seed": 1})
        _wait_done(scheduler, record.job_id)
        events, final = scheduler.events_since(record.job_id, 0)
        assert [e["type"] for e in events] == ["started", "cell", "finished"]
        assert not final  # final only once the caller has drained
        # the drained stream closes immediately
        events, final = scheduler.events_since(record.job_id, len(events))
        assert (events, final) == ([], True)
        assert scheduler.events_since("nonesuch", 0) == ([], True)


class TestPriorities:
    def test_higher_priority_runs_first(self, tmp_path, monkeypatch):
        journal, sched = _make(tmp_path, monkeypatch)
        low = sched.submit("point", {"seed": 1})
        high = sched.submit("point", {"seed": 2, "priority": 5})
        assert high.priority == 5 and low.priority == 0
        sched.start()  # workers only see the queue now
        _wait_done(sched, low.job_id)
        _wait_done(sched, high.job_id)
        started = [e["job_id"] for e in read_events(journal.path)
                   if e["event"] == "job_started"]
        assert started == [high.job_id, low.job_id]
        sched.stop()
        journal.close()

    def test_waiting_jobs_age_past_fresh_high_priority(
        self, tmp_path, monkeypatch
    ):
        """A priority-0 job that has waited long enough overtakes a
        freshly submitted priority-3 job: no starvation."""
        journal, sched = _make(tmp_path, monkeypatch, aging_s=0.01)
        old = sched.submit("point", {"seed": 1})
        time.sleep(0.1)  # ages ~10 points at aging_s=0.01
        fresh = sched.submit("point", {"seed": 2, "priority": 3})
        sched.start()
        _wait_done(sched, old.job_id)
        _wait_done(sched, fresh.job_id)
        started = [e["job_id"] for e in read_events(journal.path)
                   if e["event"] == "job_started"]
        assert started == [old.job_id, fresh.job_id]
        sched.stop()
        journal.close()

    def test_equal_priorities_run_fifo(self, tmp_path, monkeypatch):
        journal, sched = _make(tmp_path, monkeypatch)
        records = [sched.submit("point", {"seed": s}) for s in (1, 2, 3)]
        sched.start()
        for record in records:
            _wait_done(sched, record.job_id)
        started = [e["job_id"] for e in read_events(journal.path)
                   if e["event"] == "job_started"]
        assert started == [r.job_id for r in records]
        sched.stop()
        journal.close()

    def test_coalescing_promotes_but_never_demotes(
        self, tmp_path, monkeypatch
    ):
        journal, sched = _make(tmp_path, monkeypatch)
        first = sched.submit("point", {"seed": 2})
        assert first.priority == 0
        again = sched.submit("point", {"seed": 2, "priority": 4})
        assert again.job_id == first.job_id and first.priority == 4
        sched.submit("point", {"seed": 2, "priority": 1})
        assert first.priority == 4  # demotion ignored
        journal.close()

    def test_priority_does_not_split_the_digest(self, scheduler):
        scheduler.start()
        plain = scheduler.submit("point", {"seed": 2})
        _wait_done(scheduler, plain.job_id)
        hot = scheduler.submit("point", {"seed": 2, "priority": 9})
        assert hot.digest == plain.digest
        assert hot.cached  # one cache entry serves both


class TestSchedulerCompaction:
    def test_compacted_journal_restores_identical_state(
        self, tmp_path, monkeypatch
    ):
        """Drive the journal past its threshold with real jobs, then
        reboot a scheduler from the compacted file: identical status
        and result payloads for every prior job id."""
        path = tmp_path / "journal.jsonl"
        journal, sched = _make(tmp_path, monkeypatch, compact_bytes=600)
        sched.start()
        records = [sched.submit("point", {"seed": s}) for s in (2, 3, 4)]
        finals = {
            r.job_id: _wait_done(sched, r.job_id).to_result_dict()
            for r in records
        }
        hit = sched.submit("point", {"seed": 2})  # suppressed-payload line
        finals[hit.job_id] = hit.to_result_dict()
        sched.stop()
        journal.close()
        events = read_events(path)
        assert "snapshot" in [e["event"] for e in events]
        assert journal.compactions >= 1

        journal2 = Journal(path)
        sched2 = JobScheduler(
            journal=journal2, pool_jobs=1,
            retry=RetryPolicy(retries=0, base_delay_s=0.0, max_delay_s=0.0),
        )
        sched2.recover(rebuild(events))
        for job_id, payload in finals.items():
            restored = sched2.get(job_id).to_result_dict()
            assert json.dumps(restored, sort_keys=True) == json.dumps(
                payload, sort_keys=True
            )
        journal2.close()

    def test_cache_hit_line_omits_payload_but_replay_restores_it(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "journal.jsonl"
        journal, sched = _make(tmp_path, monkeypatch)
        sched.start()
        first = sched.submit("point", {"seed": 2})
        done = _wait_done(sched, first.job_id)
        hit = sched.submit("point", {"seed": 2})
        sched.stop()
        journal.close()
        raw = [json.loads(line) for line in path.read_text().splitlines()]
        hit_line = next(
            r for r in raw
            if r["event"] == "job_finished" and r["job_id"] == hit.job_id
        )
        assert hit_line["cached"] and "result" not in hit_line
        state = rebuild(read_events(path))
        assert state.jobs[hit.job_id]["result"] == done.result
