"""The circuit breaker state machine, driven by a fake clock."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.util.errors import ConfigurationError


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def _breaker(**overrides):
    config = BreakerConfig(
        max_queue_depth=overrides.pop("max_queue_depth", 4),
        failure_threshold=overrides.pop("failure_threshold", 3),
        window_s=overrides.pop("window_s", 60.0),
        cooldown_s=overrides.pop("cooldown_s", 5.0),
    )
    clock = FakeClock()
    return CircuitBreaker(config, clock=clock), clock


class TestClosed:
    def test_admits_under_capacity(self):
        breaker, _ = _breaker()
        admission = breaker.admit(queue_depth=0)
        assert admission.allowed and admission.retry_after_s is None

    def test_sheds_on_saturation_without_tripping(self):
        breaker, _ = _breaker(max_queue_depth=2)
        admission = breaker.admit(queue_depth=2)
        assert not admission.allowed
        assert admission.reason == "saturated"
        assert admission.retry_after_s > 0
        assert breaker.state == "closed"  # back-pressure, not sickness
        assert breaker.admit(queue_depth=1).allowed

    def test_trips_at_failure_threshold(self):
        breaker, _ = _breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"

    def test_old_failures_age_out_of_the_window(self):
        breaker, clock = _breaker(failure_threshold=3, window_s=10.0)
        breaker.record_failure()
        breaker.record_failure()
        clock.now += 11.0  # both fall out of the window
        breaker.record_failure()
        assert breaker.state == "closed"


class TestOpen:
    def test_rejects_with_retry_after(self):
        breaker, clock = _breaker(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        clock.now += 2.0
        admission = breaker.admit(queue_depth=0)
        assert not admission.allowed
        assert admission.reason == "open"
        assert admission.retry_after_s == pytest.approx(3.0)

    def test_half_opens_after_cooldown(self):
        breaker, clock = _breaker(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        clock.now += 5.0
        admission = breaker.admit(queue_depth=0)
        assert admission.allowed and admission.reason == "probe"
        assert breaker.state == "half-open"


class TestHalfOpen:
    def _half_open(self):
        breaker, clock = _breaker(failure_threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.admit(queue_depth=0).allowed  # the probe
        return breaker, clock

    def test_only_one_probe_admitted(self):
        breaker, _ = self._half_open()
        assert not breaker.admit(queue_depth=0).allowed

    def test_probe_success_closes_and_clears(self):
        breaker, _ = self._half_open()
        breaker.record_success()
        assert breaker.state == "closed"
        # one failure no longer trips (the window was cleared) — except
        # threshold is 1 here, so check the window directly
        assert len(breaker._failures) == 0

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self._half_open()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now += 4.9
        assert not breaker.admit(queue_depth=0).allowed
        clock.now += 0.2
        assert breaker.admit(queue_depth=0).allowed


class TestObservability:
    def test_to_dict_reports_state_and_hint(self):
        breaker, clock = _breaker(failure_threshold=1, cooldown_s=5.0)
        assert breaker.to_dict()["state"] == "closed"
        breaker.record_failure()
        clock.now += 1.0
        d = breaker.to_dict()
        assert d["state"] == "open"
        assert d["retry_after_s"] == pytest.approx(4.0)
        assert d["rejections"] == 0

    def test_metrics_gauge_and_rejection_counters(self):
        metrics = MetricsRegistry(enabled=True)
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1), clock=clock, metrics=metrics
        )
        assert metrics.gauge_value("serve.breaker.state") == 0.0
        breaker.record_failure()
        assert metrics.gauge_value("serve.breaker.state") == 2.0
        breaker.admit(queue_depth=0)
        assert metrics.counter_value(
            "serve.breaker.rejections", reason="open"
        ) == 1.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerConfig(max_queue_depth=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(cooldown_s=0.0)
