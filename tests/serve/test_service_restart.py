"""The acceptance scenario: SIGKILL the real daemon, restart, recover.

Runs ``python -m repro serve`` as a subprocess against a real (tiny)
workload: a completed job must survive the kill as a cached result, a
job caught in flight must be re-executed — no job lost, no result
duplicated.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServiceClient
from repro.serve.journal import read_events

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spawn(journal: Path) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--journal", str(journal), "--jobs", "1"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    # the daemon announces readiness with one line: "serving on HOST:PORT"
    deadline = time.monotonic() + 30.0
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("serving on "):
            return proc, int(line.rsplit(":", 1)[1])
        if proc.poll() is not None:
            break
        time.sleep(0.05)
    proc.kill()
    raise AssertionError(f"daemon never became ready (last line: {line!r})")


_POINT = {"code": "v5", "cores": 1, "scale": "tiny", "n_nodes": 2}


@pytest.mark.slow
class TestKillAndRestart:
    def test_sigkill_then_restart_recovers_everything(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        proc, port = _spawn(journal)
        killed = False
        try:
            client = ServiceClient(port=port, timeout_s=10.0)
            # job A runs to completion before the kill
            a = client.submit("point", _POINT)
            done = client.wait(a["job_id"], timeout_s=120.0)
            assert done["status"] == "done" and done["result"]
            # job B is submitted and immediately orphaned by SIGKILL
            b = client.submit("point", {**_POINT, "seed": 8})
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10.0)
            killed = True

            events = [e["event"] for e in read_events(journal)]
            assert "daemon_stopped" not in events  # it really crashed
            finished_before = [
                e["job_id"] for e in read_events(journal)
                if e["event"] == "job_finished"
            ]
            assert finished_before == [a["job_id"]]

            # restart over the same journal
            proc2, port2 = _spawn(journal)
            try:
                client2 = ServiceClient(port=port2, timeout_s=10.0)
                # job A's digest is served from the replayed cache —
                # instantly done, no recomputation
                again = client2.submit("point", _POINT)
                assert again["cached"] and again["status"] == "done"
                assert (
                    client2.result(again["job_id"])["result"]
                    == done["result"]
                )
                # job B was recovered and re-executed under its own id
                recovered = client2.wait(b["job_id"], timeout_s=120.0)
                assert recovered["status"] == "done"
                assert recovered["result"]

                # no result duplicated: one job_finished per job id
                finished = [
                    e["job_id"] for e in read_events(journal)
                    if e["event"] == "job_finished" and not e.get("cached")
                ]
                assert sorted(finished) == sorted([a["job_id"], b["job_id"]])
            finally:
                proc2.send_signal(signal.SIGTERM)
                proc2.wait(timeout=15.0)
            # the second daemon stopped cleanly and said so
            assert read_events(journal)[-1]["event"] == "daemon_stopped"
        finally:
            if not killed and proc.poll() is None:
                proc.kill()
