"""The journal: append durability, replay semantics, crash tolerance."""

import json

import pytest

from repro.serve.journal import (
    JOURNAL_SCHEMA_VERSION,
    Journal,
    read_events,
    rebuild,
)


def _submit(journal, job_id, digest="d1"):
    journal.append(
        "job_submitted", job_id=job_id, digest=digest,
        spec={"kind": "point", "params": {}},
    )


class TestJournal:
    def test_append_assigns_monotonic_seq(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            a = journal.append("daemon_started")
            b = journal.append("daemon_stopped", clean=True)
        assert (a["seq"], b["seq"]) == (1, 2)
        assert [e["seq"] for e in read_events(path)] == [1, 2]

    def test_seq_continues_across_reopen(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("daemon_started")
        with Journal(path) as journal:
            assert journal.next_seq() == 2
            assert journal.append("daemon_started")["seq"] == 2
        assert len(read_events(path)) == 2

    def test_append_after_close_rejected(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.append("daemon_started")

    def test_records_carry_schema_version(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("daemon_started")
        (event,) = read_events(path)
        assert event["schema"] == JOURNAL_SCHEMA_VERSION

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("daemon_started")
            journal.append("daemon_stopped", clean=True)
        # simulate a crash mid-append: a truncated JSON line at the end
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "seq": 3, "eve')
        events = read_events(path)
        assert [e["event"] for e in events] == ["daemon_started", "daemon_stopped"]
        # and a journal reopened over the torn file keeps appending
        with Journal(path) as journal:
            assert journal.append("daemon_started")["seq"] == 3

    def test_corrupt_middle_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"schema": 1, "seq": 1, "event": "daemon_started"}\n'
            "not json at all\n"
            '{"schema": 1, "seq": 2, "event": "daemon_stopped", "clean": true}\n'
        )
        assert [e["seq"] for e in read_events(path)] == [1, 2]

    def test_future_schema_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps(
                {"schema": JOURNAL_SCHEMA_VERSION + 1, "seq": 1,
                 "event": "daemon_started"}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="schema"):
            read_events(path)


class TestRebuild:
    def test_unfinished_jobs_replay_as_pending(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            _submit(journal, "j1", "d1")
            journal.append("job_started", job_id="j1")
            _submit(journal, "j2", "d2")
            # crash: neither finishes
        state = rebuild(read_events(path))
        assert state.pending == ["j1", "j2"]
        # last-known status is preserved; the scheduler's recover()
        # turns pending "running" back into "queued"
        assert state.jobs["j1"]["status"] == "running"
        assert state.jobs["j2"]["status"] == "queued"
        assert state.results == {}

    def test_finished_job_is_final_and_feeds_the_cache(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            _submit(journal, "j1", "d1")
            journal.append("job_started", job_id="j1")
            journal.append(
                "job_finished", job_id="j1", status="done",
                result={"cell": 1}, errors={}, cached=False,
            )
        state = rebuild(read_events(path))
        assert state.pending == []
        assert state.jobs["j1"]["status"] == "done"
        assert state.results == {"d1": {"result": {"cell": 1}, "errors": {}}}

    def test_partial_results_are_not_cached(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            _submit(journal, "j1", "d1")
            journal.append(
                "job_finished", job_id="j1", status="partial",
                result={"ok_cell": 1},
                errors={"bad_cell": {"kind": "poisoned"}}, cached=False,
            )
        state = rebuild(read_events(path))
        assert state.pending == []
        assert state.results == {}  # partial must not satisfy future digests
        assert state.jobs["j1"]["errors"]["bad_cell"]["kind"] == "poisoned"

    def test_requeued_job_is_pending_again(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            _submit(journal, "j1", "d1")
            journal.append("job_started", job_id="j1")
            journal.append("job_requeued", job_id="j1")  # graceful stop
            journal.append("daemon_stopped", clean=True)
        state = rebuild(read_events(path))
        assert state.pending == ["j1"]

    def test_replay_is_idempotent(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            _submit(journal, "j1", "d1")
            journal.append(
                "job_finished", job_id="j1", status="done",
                result={}, errors={}, cached=False,
            )
            _submit(journal, "j2", "d2")
        events = read_events(path)
        assert rebuild(events).pending == rebuild(events).pending == ["j2"]
