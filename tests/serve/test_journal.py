"""The journal: append durability, replay semantics, crash tolerance,
thread safety under concurrent submit/finish, and snapshot compaction."""

import json
import sys
import threading

import pytest

from repro.serve.journal import (
    JOURNAL_SCHEMA_VERSION,
    Journal,
    read_events,
    rebuild,
)


def _submit(journal, job_id, digest="d1"):
    journal.append(
        "job_submitted", job_id=job_id, digest=digest,
        spec={"kind": "point", "params": {}},
    )


class TestJournal:
    def test_append_assigns_monotonic_seq(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            a = journal.append("daemon_started")
            b = journal.append("daemon_stopped", clean=True)
        assert (a["seq"], b["seq"]) == (1, 2)
        assert [e["seq"] for e in read_events(path)] == [1, 2]

    def test_seq_continues_across_reopen(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("daemon_started")
        with Journal(path) as journal:
            assert journal.next_seq() == 2
            assert journal.append("daemon_started")["seq"] == 2
        assert len(read_events(path)) == 2

    def test_append_after_close_rejected(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.append("daemon_started")

    def test_records_carry_schema_version(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("daemon_started")
        (event,) = read_events(path)
        assert event["schema"] == JOURNAL_SCHEMA_VERSION

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("daemon_started")
            journal.append("daemon_stopped", clean=True)
        # simulate a crash mid-append: a truncated JSON line at the end
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "seq": 3, "eve')
        events = read_events(path)
        assert [e["event"] for e in events] == ["daemon_started", "daemon_stopped"]
        # and a journal reopened over the torn file keeps appending
        with Journal(path) as journal:
            assert journal.append("daemon_started")["seq"] == 3

    def test_corrupt_middle_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"schema": 1, "seq": 1, "event": "daemon_started"}\n'
            "not json at all\n"
            '{"schema": 1, "seq": 2, "event": "daemon_stopped", "clean": true}\n'
        )
        assert [e["seq"] for e in read_events(path)] == [1, 2]

    def test_corrupt_lines_are_counted_not_just_skipped(self, tmp_path):
        """The docstring always promised "skipped and counted"; the
        count must actually exist (it feeds daemon_started and
        /metrics)."""
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"schema": 1, "seq": 1, "event": "daemon_started"}\n'
            "not json at all\n"
            '{"no_event_key": true}\n'
            '{"schema": 1, "seq": 2, "event": "daemon_stopped", "clean": true}\n'
            '{"schema": 1, "seq": 3, "eve'  # torn final line
        )
        events = read_events(path)
        assert [e["seq"] for e in events] == [1, 2]
        assert events.corrupt_lines == 3

    def test_intact_journal_counts_zero_corrupt_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append("daemon_started")
        assert read_events(path).corrupt_lines == 0
        assert read_events(tmp_path / "missing.jsonl").corrupt_lines == 0

    def test_future_schema_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps(
                {"schema": JOURNAL_SCHEMA_VERSION + 1, "seq": 1,
                 "event": "daemon_started"}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="schema"):
            read_events(path)


class TestRebuild:
    def test_unfinished_jobs_replay_as_pending(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            _submit(journal, "j1", "d1")
            journal.append("job_started", job_id="j1")
            _submit(journal, "j2", "d2")
            # crash: neither finishes
        state = rebuild(read_events(path))
        assert state.pending == ["j1", "j2"]
        # last-known status is preserved; the scheduler's recover()
        # turns pending "running" back into "queued"
        assert state.jobs["j1"]["status"] == "running"
        assert state.jobs["j2"]["status"] == "queued"
        assert state.results == {}

    def test_finished_job_is_final_and_feeds_the_cache(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            _submit(journal, "j1", "d1")
            journal.append("job_started", job_id="j1")
            journal.append(
                "job_finished", job_id="j1", status="done",
                result={"cell": 1}, errors={}, cached=False,
            )
        state = rebuild(read_events(path))
        assert state.pending == []
        assert state.jobs["j1"]["status"] == "done"
        assert state.results == {"d1": {"result": {"cell": 1}, "errors": {}}}

    def test_partial_results_are_not_cached(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            _submit(journal, "j1", "d1")
            journal.append(
                "job_finished", job_id="j1", status="partial",
                result={"ok_cell": 1},
                errors={"bad_cell": {"kind": "poisoned"}}, cached=False,
            )
        state = rebuild(read_events(path))
        assert state.pending == []
        assert state.results == {}  # partial must not satisfy future digests
        assert state.jobs["j1"]["errors"]["bad_cell"]["kind"] == "poisoned"

    def test_requeued_job_is_pending_again(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            _submit(journal, "j1", "d1")
            journal.append("job_started", job_id="j1")
            journal.append("job_requeued", job_id="j1")  # graceful stop
            journal.append("daemon_stopped", clean=True)
        state = rebuild(read_events(path))
        assert state.pending == ["j1"]

    def test_replay_is_idempotent(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            _submit(journal, "j1", "d1")
            journal.append(
                "job_finished", job_id="j1", status="done",
                result={}, errors={}, cached=False,
            )
            _submit(journal, "j2", "d2")
        events = read_events(path)
        assert rebuild(events).pending == rebuild(events).pending == ["j2"]


class TestJournalThreadSafety:
    """The seq-race regression: submit threads and worker threads all
    append concurrently. The pre-lock Journal bumped ``self._seq`` with
    no synchronization and minted job ids from ``next_seq()``, so two
    racing threads could observe the same seq — duplicate sequence
    numbers on disk and colliding ``j<seq>`` ids in the job table.
    These tests fail (or error on the missing ``reserve_id``) against
    that code.
    """

    @pytest.fixture(autouse=True)
    def _aggressive_switching(self):
        """Force thread switches between bytecodes so the unlocked
        read-modify-write race, if present, actually loses."""
        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        yield
        sys.setswitchinterval(old)

    def _hammer(self, n_threads, fn):
        start = threading.Barrier(n_threads)
        errors = []

        def run(i):
            start.wait()
            try:
                fn(i)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_concurrent_appends_never_duplicate_seq(self, tmp_path):
        path = tmp_path / "j.jsonl"
        per_thread = 100
        with Journal(path) as journal:
            # half the threads play "submit", half play "finish" — the
            # exact interleaving the live daemon produces under load
            def submit_vs_finish(i):
                for k in range(per_thread):
                    if i % 2:
                        _submit(journal, f"t{i}-{k}", digest=f"d{i}-{k}")
                    else:
                        journal.append(
                            "job_finished", job_id=f"t{i}-{k}",
                            status="done", result={}, errors={}, cached=False,
                        )

            self._hammer(8, submit_vs_finish)
        events = read_events(path)
        seqs = [e["seq"] for e in events]
        assert len(set(seqs)) == len(seqs), "duplicate sequence numbers"
        assert sorted(seqs) == list(range(1, 8 * per_thread + 1))
        assert events.corrupt_lines == 0  # no interleaved partial writes

    def test_concurrent_reserve_id_never_collides(self, tmp_path):
        path = tmp_path / "j.jsonl"
        minted = []
        with Journal(path) as journal:

            def mint_and_submit(i):
                for _ in range(50):
                    job_id = journal.reserve_id()
                    minted.append(job_id)  # list.append is atomic
                    _submit(journal, job_id, digest=f"d-{job_id}")

            self._hammer(8, mint_and_submit)
        assert len(minted) == 400
        assert len(set(minted)) == 400, "colliding job ids"
        # and every minted id survived to disk exactly once
        on_disk = [
            e["job_id"] for e in read_events(path)
            if e["event"] == "job_submitted"
        ]
        assert sorted(on_disk) == sorted(minted)

    def test_reserved_ids_stay_unique_across_restart(self, tmp_path):
        """An id can land on disk with a smaller seq than its own
        number (its submit thread raced others to the journal); a
        rebooted journal must still never re-mint it."""
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            a = journal.reserve_id()
            b = journal.reserve_id()
            # only the *higher* id reaches the journal before the crash
            _submit(journal, b, digest="d-b")
        with Journal(path) as journal:
            c = journal.reserve_id()
        assert len({a, b, c}) == 3


class TestCompaction:
    def _write_history(self, journal):
        """A representative history: done, partial, pending, cache hit."""
        _submit(journal, "j000001", "d1")
        journal.append("job_started", job_id="j000001")
        journal.append(
            "job_finished", job_id="j000001", status="done",
            result={"c0": {"value": 1}}, errors={}, cached=False,
        )
        _submit(journal, "j000002", "d2")
        journal.append(
            "job_finished", job_id="j000002", status="partial",
            result={"c0": {"value": 2}},
            errors={"c1": {"kind": "poisoned"}}, cached=False,
        )
        _submit(journal, "j000003", "d3")
        journal.append("job_started", job_id="j000003")
        # v2 cache-hit finish: payload suppressed on purpose
        _submit(journal, "j000004", "d1")
        journal.append(
            "job_finished", job_id="j000004", status="done", cached=True,
        )

    def _assert_states_equal(self, a, b):
        assert a.jobs == b.jobs
        assert a.pending == b.pending
        assert a.results == b.results

    def test_snapshot_rebuilds_identical_state(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        self._write_history(journal)
        before = rebuild(read_events(path))
        size_before = path.stat().st_size
        journal.compact()
        after_events = read_events(path)
        self._assert_states_equal(before, rebuild(after_events))
        assert [e["event"] for e in after_events] == ["snapshot"]
        assert path.stat().st_size < size_before
        assert journal.compactions == 1
        journal.close()

    def test_seq_continues_past_the_snapshot(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            self._write_history(journal)  # seqs 1..9
            journal.compact()  # snapshot takes seq 10
            tail = journal.append("daemon_stopped", clean=True)
        events = read_events(path)
        assert [e["seq"] for e in events] == [10, 11]
        assert tail["seq"] == 11

    def test_snapshot_plus_tail_equals_uncompacted(self, tmp_path):
        """The headline equivalence: compact mid-history, keep
        appending, and the fold must match a journal that never
        compacted — byte-identical RecoveredState."""
        plain, compacted = tmp_path / "plain.jsonl", tmp_path / "c.jsonl"

        def tail(journal):
            _submit(journal, "j000005", "d5")
            journal.append("job_started", job_id="j000005")
            journal.append(
                "job_finished", job_id="j000005", status="done",
                result={"c0": {"value": 5}}, errors={}, cached=False,
            )
            _submit(journal, "j000006", "d1")  # another suppressed hit
            journal.append(
                "job_finished", job_id="j000006", status="done", cached=True,
            )

        with Journal(plain) as journal:
            self._write_history(journal)
            tail(journal)
        with Journal(compacted) as journal:
            self._write_history(journal)
            journal.compact()
            tail(journal)

        self._assert_states_equal(
            rebuild(read_events(plain)), rebuild(read_events(compacted))
        )

    def test_corrupt_line_then_snapshot_then_tail(self, tmp_path):
        """Satellite acceptance: interleaved events, a mid-file corrupt
        line, and a snapshot+tail still rebuild the same state."""
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        self._write_history(journal)
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("garbage that is not json\n")
        _submit_tail = lambda j: _submit(j, "j000005", "d5")  # noqa: E731
        journal = Journal(path)
        _submit_tail(journal)
        before = rebuild(read_events(path))
        journal.compact()
        after = rebuild(read_events(path))
        self._assert_states_equal(before, after)
        # compaction consumed the corrupt line; the new file is clean
        assert read_events(path).corrupt_lines == 0
        journal.close()

    def test_cache_hit_payload_is_reattached_by_replay(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            self._write_history(journal)
        raw = [json.loads(line) for line in path.read_text().splitlines()]
        hit = next(
            r for r in raw
            if r["event"] == "job_finished" and r.get("cached")
        )
        assert "result" not in hit and "errors" not in hit
        state = rebuild(read_events(path))
        assert state.jobs["j000004"]["result"] == {"c0": {"value": 1}}
        assert state.jobs["j000004"]["status"] == "done"

    def test_v1_journal_replays_unchanged(self, tmp_path):
        """Journals written before snapshots existed (schema 1, full
        payload on every finish) must still replay."""
        path = tmp_path / "v1.jsonl"
        lines = [
            {"schema": 1, "seq": 1, "event": "daemon_started"},
            {"schema": 1, "seq": 2, "event": "job_submitted",
             "job_id": "j000001", "digest": "d1",
             "spec": {"kind": "point", "params": {}}},
            {"schema": 1, "seq": 3, "event": "job_started",
             "job_id": "j000001"},
            {"schema": 1, "seq": 4, "event": "job_finished",
             "job_id": "j000001", "status": "done",
             "result": {"c0": {"value": 1}}, "errors": {}, "cached": False},
            # v1 cache hits re-appended the full payload every time
            {"schema": 1, "seq": 5, "event": "job_submitted",
             "job_id": "j000002", "digest": "d1",
             "spec": {"kind": "point", "params": {}}},
            {"schema": 1, "seq": 6, "event": "job_finished",
             "job_id": "j000002", "status": "done",
             "result": {"c0": {"value": 1}}, "errors": {}, "cached": True},
            {"schema": 1, "seq": 7, "event": "daemon_stopped", "clean": True},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in lines))
        state = rebuild(read_events(path))
        assert state.pending == []
        assert state.jobs["j000002"]["result"] == {"c0": {"value": 1}}
        assert state.results == {
            "d1": {"result": {"c0": {"value": 1}}, "errors": {}}
        }
        # and a v2 journal opened over it keeps appending + can compact
        with Journal(path) as journal:
            assert journal.reserve_id() == "j000008"  # above seq 7
            journal.compact()
        self._assert_states_equal(state, rebuild(read_events(path)))

    def test_maybe_compact_honors_the_size_trigger(self, tmp_path):
        path = tmp_path / "j.jsonl"
        # above the ~800-byte snapshot, below the ~1100-byte history
        with Journal(path, compact_bytes=900) as journal:
            assert journal.maybe_compact() is False  # empty file
            self._write_history(journal)
            assert path.stat().st_size > 900
            assert journal.maybe_compact() is True
            assert journal.compactions == 1
            assert journal.maybe_compact() is False  # back under threshold

    def test_zero_compact_bytes_disables_the_trigger(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            self._write_history(journal)
            assert journal.maybe_compact() is False
            assert journal.compactions == 0
