"""The daemon over HTTP: routes, shedding, and crash recovery.

Everything here runs in-process on an ephemeral port with stubbed
cells, so the full listener -> scheduler -> journal stack is exercised
without subprocess orchestration (the subprocess SIGKILL acceptance
test lives in ``test_service_restart.py``).
"""

import threading
import time

import pytest

from repro.experiments.sweep import RetryPolicy, SweepCell
from repro.serve.breaker import BreakerConfig
from repro.serve.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.serve.daemon import ServeDaemon
from repro.serve.journal import read_events

#: released by tests that park the worker on a blocking cell
_GATE = threading.Event()


def _ok(value):
    return {"value": value}


def _blocked(value):
    _GATE.wait(timeout=30.0)
    return {"value": value}


def _fake_cells(spec):
    seed = spec.params["seed"]
    fn = _blocked if seed >= 500 else _ok
    return [SweepCell(key=(f"c{i}",), fn=fn, kwargs=dict(value=i))
            for i in range(max(seed % 10, 1))]


@pytest.fixture(autouse=True)
def _stub_cells(monkeypatch):
    monkeypatch.setattr("repro.serve.scheduler.build_cells", _fake_cells)
    _GATE.clear()
    yield
    _GATE.set()  # unblock any parked worker so threads drain


def _daemon(tmp_path, **kwargs):
    kwargs.setdefault("pool_jobs", 1)
    kwargs.setdefault(
        "retry", RetryPolicy(retries=0, base_delay_s=0.0, max_delay_s=0.0)
    )
    daemon = ServeDaemon(tmp_path / "journal.jsonl", port=0, **kwargs)
    daemon.start_in_thread()
    return daemon, ServiceClient(port=daemon.port, timeout_s=5.0)


class TestRoutes:
    def test_health_and_metrics(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        try:
            assert client.health()
            view = client.metrics()
            assert view["queue_depth"] == 0
            assert view["breaker"]["state"] == "closed"
            assert "counters" in view["metrics"]
        finally:
            daemon.stop()

    def test_submit_wait_result_roundtrip(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        try:
            sub = client.submit("point", {"seed": 3})
            assert sub["status"] in ("queued", "running", "done")
            body = client.wait(sub["job_id"], timeout_s=10.0)
            assert body["status"] == "done"
            assert body["result"]["c1"] == {"value": 1}
            status = client.status(sub["job_id"])
            assert status["cells_total"] == 3
        finally:
            daemon.stop()

    def test_unknown_routes_and_jobs_404(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        try:
            with pytest.raises(ServiceError) as exc:
                client.status("j999999")
            assert exc.value.status == 404
            with pytest.raises(ServiceError) as exc:
                client._request("GET", "/nope")
            assert exc.value.status == 404
        finally:
            daemon.stop()

    def test_malformed_submissions_400(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        try:
            with pytest.raises(ServiceError) as exc:
                client.submit("frobnicate")
            assert exc.value.status == 400
            with pytest.raises(ServiceError) as exc:
                client.submit("point", {"corse": 4})
            assert exc.value.status == 400
        finally:
            daemon.stop()

    def test_unfinished_result_is_202_with_hint(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        try:
            sub = client.submit("point", {"seed": 501})  # parks the worker
            body = client.result(sub["job_id"])
            assert body["status"] in ("queued", "running")
            assert body["retry_after_s"] > 0
            _GATE.set()
            assert client.wait(sub["job_id"])["status"] == "done"
        finally:
            daemon.stop()

    def test_overview_lists_jobs(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        try:
            sub = client.submit("point", {"seed": 2})
            client.wait(sub["job_id"])
            view = client.overview()
            assert [j["job_id"] for j in view["jobs"]] == [sub["job_id"]]
        finally:
            daemon.stop()


class TestShedding:
    def test_saturation_returns_503_with_retry_after(self, tmp_path):
        # depth counts queued + running: the parked job is 1, one more
        # queues to 2, the third submission must shed
        daemon, client = _daemon(
            tmp_path, breaker_config=BreakerConfig(max_queue_depth=2)
        )
        try:
            client.submit("point", {"seed": 501})  # parks the worker
            client.submit("point", {"seed": 1})  # fills the queue
            with pytest.raises(ServiceUnavailable) as exc:
                client.submit("point", {"seed": 2})
            assert exc.value.retry_after_s > 0
        finally:
            _GATE.set()
            daemon.stop()


class TestRestartRecovery:
    def test_clean_restart_serves_cached_results(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        sub = client.submit("point", {"seed": 2})
        first = client.wait(sub["job_id"])
        daemon.stop()

        daemon2, client2 = _daemon(tmp_path)
        try:
            again = client2.submit("point", {"seed": 2})
            assert again["cached"] and again["status"] == "done"
            assert client2.result(again["job_id"])["result"] == first["result"]
        finally:
            daemon2.stop()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_crash_loses_no_jobs_and_duplicates_no_results(self, tmp_path):
        # daemon 1: one job parked mid-run, one queued behind it — then
        # the process "dies" (no graceful stop, no daemon_stopped line)
        daemon, client = _daemon(tmp_path)
        running = client.submit("point", {"seed": 501})
        queued = client.submit("point", {"seed": 3})
        time.sleep(0.05)  # the first job reaches job_started
        daemon._server.shutdown()
        daemon._server.server_close()
        daemon.journal.close()  # a killed process writes nothing more:
        # if the abandoned worker thread ever wakes, its append raises
        # instead of racing the new daemon's journal

        events = read_events(tmp_path / "journal.jsonl")
        assert "daemon_stopped" not in [e["event"] for e in events]

        # daemon 2 over the same journal: both jobs recover and finish
        daemon2, client2 = _daemon(tmp_path)
        try:
            assert len(daemon2.recovered.pending) == 2
            _GATE.set()  # recovered cells run the same (now open) gate
            for job_id in (running["job_id"], queued["job_id"]):
                body = client2.wait(job_id, timeout_s=10.0)
                assert body["status"] == "done", job_id
            finished = [
                e for e in read_events(tmp_path / "journal.jsonl")
                if e["event"] == "job_finished"
            ]
            # exactly one finish per job: recovered, not duplicated
            assert sorted(e["job_id"] for e in finished) == sorted(
                [running["job_id"], queued["job_id"]]
            )
        finally:
            daemon2.stop()

    def test_restarted_daemon_keeps_job_ids_unique(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        first = client.submit("point", {"seed": 1})
        client.wait(first["job_id"])
        daemon.stop()

        daemon2, client2 = _daemon(tmp_path)
        try:
            second = client2.submit("point", {"seed": 2})
            assert second["job_id"] != first["job_id"]
        finally:
            daemon2.stop()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_crash_with_two_jobs_in_flight_recovers_both(self, tmp_path):
        """workers=2: both jobs are mid-run when the daemon "dies";
        the reboot re-runs both, finishing each exactly once."""
        daemon, client = _daemon(tmp_path, workers=2)
        a = client.submit("point", {"seed": 501})  # parked on the gate
        b = client.submit("point", {"seed": 502})  # parked on the gate
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            started = [
                e["job_id"]
                for e in read_events(tmp_path / "journal.jsonl")
                if e["event"] == "job_started"
            ]
            if len(started) == 2:
                break
            time.sleep(0.01)
        assert sorted(started) == sorted([a["job_id"], b["job_id"]])
        daemon._server.shutdown()
        daemon._server.server_close()
        daemon.journal.close()  # simulated SIGKILL: nothing more lands

        daemon2, client2 = _daemon(tmp_path, workers=2)
        try:
            assert len(daemon2.recovered.pending) == 2
            _GATE.set()
            for job_id in (a["job_id"], b["job_id"]):
                assert client2.wait(job_id, timeout_s=10.0)["status"] == "done"
            finished = [
                e for e in read_events(tmp_path / "journal.jsonl")
                if e["event"] == "job_finished"
            ]
            assert sorted(e["job_id"] for e in finished) == sorted(
                [a["job_id"], b["job_id"]]
            )
        finally:
            daemon2.stop()


class TestConcurrencyOverHTTP:
    def test_two_jobs_observably_running(self, tmp_path):
        daemon, client = _daemon(tmp_path, workers=2)
        try:
            a = client.submit("point", {"seed": 501})
            b = client.submit("point", {"seed": 502})
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                running = client.overview()["running"]
                if len(running) == 2:
                    break
                time.sleep(0.01)
            assert sorted(running) == sorted([a["job_id"], b["job_id"]])
            assert client.metrics()["workers"] == 2
            _GATE.set()
            assert client.wait(a["job_id"])["status"] == "done"
            assert client.wait(b["job_id"])["status"] == "done"
        finally:
            _GATE.set()
            daemon.stop()

    def test_priority_rides_the_submission(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        try:
            client.submit("point", {"seed": 501})  # park the worker
            sub = client.submit("point", {"seed": 2, "priority": 3})
            assert client.status(sub["job_id"])["priority"] == 3
            _GATE.set()
            assert client.wait(sub["job_id"])["status"] == "done"
        finally:
            _GATE.set()
            daemon.stop()


class TestEventStream:
    def test_stream_carries_started_cells_finished(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        try:
            sub = client.submit("point", {"seed": 3})
            events = list(client.events(sub["job_id"]))
            assert events[0]["type"] == "started"
            assert events[-1]["type"] == "finished"
            cells = [e for e in events if e["type"] == "cell"]
            assert len(cells) == 3
            assert cells[-1]["cells_done"] == cells[-1]["cells_total"] == 3
            assert all(c["ok"] for c in cells)
        finally:
            daemon.stop()

    def test_stream_resumes_after_since(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        try:
            sub = client.submit("point", {"seed": 2})
            first = list(client.events(sub["job_id"]))
            # a reconnecting client never re-reads what it saw
            assert list(client.events(sub["job_id"], since=len(first))) == []
            resumed = list(client.events(sub["job_id"], since=1))
            assert resumed == first[1:]
        finally:
            daemon.stop()

    def test_stream_follows_a_live_job(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        try:
            sub = client.submit("point", {"seed": 501})  # parked
            seen = []

            def follow():
                seen.extend(client.events(sub["job_id"]))

            reader = threading.Thread(target=follow)
            reader.start()
            time.sleep(0.1)  # the stream is attached before any finish
            _GATE.set()
            reader.join(timeout=10)
            assert not reader.is_alive()
            assert seen[-1]["type"] == "finished"
        finally:
            _GATE.set()
            daemon.stop()

    def test_watch_returns_the_result(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        try:
            sub = client.submit("point", {"seed": 3})
            body = client.watch(sub["job_id"], timeout_s=10.0)
            assert body["status"] == "done"
            assert body["result"]["c2"] == {"value": 2}
        finally:
            daemon.stop()

    def test_bad_since_is_400_and_unknown_job_404(self, tmp_path):
        daemon, client = _daemon(tmp_path)
        try:
            sub = client.submit("point", {"seed": 1})
            client.wait(sub["job_id"])
            with pytest.raises(ServiceError) as exc:
                client._request(
                    "GET", f"/jobs/{sub['job_id']}/events?since=abc"
                )
            assert exc.value.status == 400
            with pytest.raises(ServiceError) as exc:
                list(client.events("j999999"))
            assert exc.value.status == 404
        finally:
            daemon.stop()


class TestJournalHygiene:
    def test_corrupt_lines_surface_in_boot_record_and_metrics(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("this line is not json\n")
        daemon, client = _daemon(tmp_path)
        try:
            assert daemon.corrupt_lines == 1
            boot = next(
                e for e in read_events(path) if e["event"] == "daemon_started"
            )
            assert boot["corrupt_lines"] == 1
            view = client.metrics()
            assert view["journal"]["corrupt_lines"] == 1
            assert view["journal"]["size_bytes"] > 0
        finally:
            daemon.stop()

    def test_clean_stop_compacts_into_a_snapshot(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        daemon, client = _daemon(tmp_path)
        sub = client.submit("point", {"seed": 2})
        first = client.wait(sub["job_id"])
        daemon.stop()
        events = read_events(path)
        # one snapshot folding the whole history, then the stop marker
        assert [e["event"] for e in events] == ["snapshot", "daemon_stopped"]
        assert events[-1]["clean"] is True

        daemon2, client2 = _daemon(tmp_path)
        try:
            # the compacted journal serves identical status and result
            assert client2.status(sub["job_id"])["status"] == "done"
            assert client2.result(sub["job_id"])["result"] == first["result"]
            again = client2.submit("point", {"seed": 2})
            assert again["cached"]
        finally:
            daemon2.stop()

    def test_size_trigger_shrinks_a_growing_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        daemon, client = _daemon(tmp_path, compact_bytes=2000)
        try:
            # cache-hit-heavy traffic is where journals actually
            # balloon: every hit re-appends the full spec; the snapshot
            # folds all those submissions onto one shared spec entry
            sub = client.submit("point", {"seed": 8})
            client.wait(sub["job_id"])
            sizes = []
            for _ in range(10):
                hit = client.submit("point", {"seed": 8})
                assert hit["cached"]
                sizes.append(path.stat().st_size)
            view = client.metrics()
            assert view["journal"]["compactions"] >= 1
            # an append-only file only ever grows; a shrink between
            # measurements is the snapshot fold at work
            assert any(b < a for a, b in zip(sizes, sizes[1:])), sizes
            snapshots = [
                e for e in read_events(path) if e["event"] == "snapshot"
            ]
            assert snapshots
        finally:
            daemon.stop()
