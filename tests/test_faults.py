"""Fault injection and recovery: the chaos-testing machinery.

Covers the FaultPlan's deterministic decisions, the transport's
retransmission loop, stragglers, task retry, the killable-body wrapper,
crash recovery in both runtimes, the stall watchdog, and the end-to-end
chaos acceptance criteria (bitwise equality with the fault-free
reference under a plan injecting every fault class).
"""

import numpy as np
import pytest

from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.cost import MachineModel
from repro.sim.engine import Engine
from repro.sim.faults import FaultPlan, NodeCrash, Straggler, killable
from repro.util.errors import ConfigurationError, StallError, TaskKilled


# ----------------------------------------------------------------------
# FaultPlan: deterministic, seeded, validated
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        a = FaultPlan(master_seed=11, task_fail_prob=0.5, drop_prob=0.2)
        b = FaultPlan(master_seed=11, task_fail_prob=0.5, drop_prob=0.2)
        for attempt in range(4):
            assert a.task_fails("GEMM(3, 1)", attempt) == b.task_fails(
                "GEMM(3, 1)", attempt
            )
            assert a.message_fate("parsec:GEMM", 7, attempt) == b.message_fate(
                "parsec:GEMM", 7, attempt
            )

    def test_different_seeds_differ_somewhere(self):
        a = FaultPlan(master_seed=1, drop_prob=0.5)
        b = FaultPlan(master_seed=2, drop_prob=0.5)
        fates_a = [a.message_fate("t", seq, 0) for seq in range(64)]
        fates_b = [b.message_fate("t", seq, 0) for seq in range(64)]
        assert fates_a != fates_b

    def test_zero_prob_plan_is_inert(self):
        plan = FaultPlan(master_seed=3)
        assert not any(plan.task_fails(f"T({i},)", 0) for i in range(50))
        assert all(plan.message_fate("t", i, 0) == "ok" for i in range(50))

    def test_task_failures_bounded_by_max_retries(self):
        plan = FaultPlan(master_seed=5, task_fail_prob=1.0, max_task_retries=3)
        assert plan.task_fails("X", 0) and plan.task_fails("X", 2)
        assert not plan.task_fails("X", 3)  # attempt >= max always succeeds

    def test_drops_suppressed_at_max_retransmits(self):
        plan = FaultPlan(master_seed=5, drop_prob=1.0, max_retransmits=4)
        assert plan.message_fate("t", 0, 3) == "drop"
        assert plan.message_fate("t", 0, 4) == "ok"

    def test_backoff_is_exponential(self):
        plan = FaultPlan(retransmit_timeout_s=1e-5)
        assert plan.backoff(0) == 1e-5
        assert plan.backoff(3) == 8e-5

    def test_backoff_is_capped(self):
        plan = FaultPlan(retransmit_timeout_s=1e-5, max_backoff_s=5e-5)
        assert plan.backoff(0) == 1e-5
        assert plan.backoff(2) == 4e-5
        assert plan.backoff(3) == 5e-5  # 8e-5 clipped to the ceiling
        assert plan.backoff(50) == 5e-5

    def test_backoff_survives_absurd_attempt_counts(self):
        # 2.0**attempt overflows a float past ~1024 attempts; the cap
        # must hold long before and long after that point
        plan = FaultPlan()
        assert plan.backoff(10_000) == plan.max_backoff_s
        assert plan.backoff(1023) == plan.max_backoff_s

    def test_default_cap_does_not_change_default_schedule(self):
        # retransmit attempts are bounded by max_retransmits (6), and
        # base * 2**6 stays under the default ceiling — the cap only
        # exists for pathological attempt counts
        plan = FaultPlan()
        for attempt in range(plan.max_retransmits + 1):
            assert (
                plan.backoff(attempt)
                == plan.retransmit_timeout_s * 2.0**attempt
            )

    def test_backoff_cap_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(retransmit_timeout_s=1e-3, max_backoff_s=1e-4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(task_fail_prob=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_prob=0.5, delay_prob=0.4, dup_prob=0.2)  # sums > 1
        with pytest.raises(ConfigurationError):
            Straggler(node=0, t_start=0.0, t_end=1.0, factor=0.5)  # < 1 speeds up
        with pytest.raises(ConfigurationError):
            NodeCrash(node=0, at=-1.0)

    def test_install_faults_rejects_unknown_node(self):
        cluster = _cluster(n_nodes=2)
        with pytest.raises(ConfigurationError):
            cluster.install_faults(FaultPlan(crashes=(NodeCrash(node=7, at=0.0),)))

    def test_install_faults_twice_rejected(self):
        cluster = _cluster(n_nodes=2)
        cluster.install_faults(FaultPlan())
        with pytest.raises(ConfigurationError):
            cluster.install_faults(FaultPlan())


# ----------------------------------------------------------------------
# transport: drop / delay / dup with retransmission
# ----------------------------------------------------------------------
def _cluster(n_nodes=2, cores=1, data_mode=DataMode.SYNTH, machine=None):
    return Cluster(
        ClusterConfig(
            n_nodes=n_nodes,
            cores_per_node=cores,
            machine=machine or MachineModel(),
            data_mode=data_mode,
            trace_enabled=False,
        )
    )


class TestTransportFaults:
    def _delivery_time(self, plan):
        cluster = _cluster(n_nodes=2)
        if plan is not None:
            cluster.install_faults(plan)
        arrivals = []
        cluster.network.send(
            0, 1, 1024.0, "payload", tag="t", on_deliver=lambda m: arrivals.append(
                (cluster.engine.now, m.payload)
            )
        )
        cluster.run()
        assert arrivals and arrivals[0][1] == "payload"
        return arrivals[0][0]

    def test_dropped_message_is_retransmitted_and_arrives(self):
        clean = self._delivery_time(None)
        plan = FaultPlan(
            master_seed=1, drop_prob=1.0, max_retransmits=2, retransmit_timeout_s=1e-5
        )
        faulted = self._delivery_time(plan)
        # two forced drops cost two backoffs (1x + 2x timeout) plus the
        # extra TX serializations before the third attempt succeeds
        assert faulted > clean + 3e-5

    def test_drop_counters(self):
        cluster = _cluster(n_nodes=2)
        injector = cluster.install_faults(
            FaultPlan(master_seed=1, drop_prob=1.0, max_retransmits=3)
        )
        got = []
        cluster.network.send(0, 1, 64.0, "x", tag="t", on_deliver=got.append)
        cluster.run()
        assert got and injector.report.messages_dropped == 3
        assert injector.report.retransmits == 3
        assert injector.report.recovery_overhead_s > 0

    def test_delay_and_dup_preserve_exactly_once(self):
        cluster = _cluster(n_nodes=2)
        injector = cluster.install_faults(
            FaultPlan(master_seed=1, delay_prob=0.5, dup_prob=0.5)
        )
        got = []
        for _ in range(20):
            cluster.network.send(0, 1, 64.0, "x", tag="t", on_deliver=got.append)
        cluster.run()
        assert len(got) == 20  # duplicates discarded by sequence number
        assert injector.report.messages_delayed > 0
        assert injector.report.messages_duplicated > 0
        # duplicate-byte reconciliation: the second RX crossing of a
        # duplicated message is charged to net.dup_bytes, never to
        # bytes_sent — so payload accounting and wire accounting agree
        net = cluster.network
        assert net.dup_bytes == 64.0 * injector.report.messages_duplicated
        assert net.bytes_sent == 64.0 * 20
        assert cluster.metrics.counter_value("net.dup_bytes") == net.dup_bytes
        wire_rx_bytes = net.bytes_sent + net.dup_bytes
        assert wire_rx_bytes == cluster.metrics.counter_value("net.bytes") + (
            net.dup_bytes
        )

    def test_local_messages_bypass_faults(self):
        cluster = _cluster(n_nodes=2)
        injector = cluster.install_faults(FaultPlan(master_seed=1, drop_prob=1.0))
        got = []
        cluster.network.send(0, 0, 64.0, "x", tag="t", on_deliver=got.append)
        cluster.run()
        assert got and injector.report.messages_dropped == 0


# ----------------------------------------------------------------------
# stragglers
# ----------------------------------------------------------------------
class TestStragglers:
    def test_cpu_scale_window(self):
        cluster = _cluster(n_nodes=2)
        cluster.install_faults(
            FaultPlan(stragglers=(Straggler(node=1, t_start=1.0, t_end=2.0, factor=3.0),))
        )
        node = cluster.nodes[1]
        assert node.cpu_scale() == 1.0
        cluster.run(until=1.5)
        assert node.cpu_scale() == 3.0
        assert cluster.nodes[0].cpu_scale() == 1.0
        cluster.run(until=2.5)
        assert node.cpu_scale() == 1.0

    def test_straggler_stretches_occupy(self):
        def busy_until(plan):
            cluster = _cluster(n_nodes=1)
            if plan is not None:
                cluster.install_faults(plan)
            done = []

            def work():
                yield from cluster.nodes[0].occupy(1.0)
                done.append(cluster.engine.now)

            cluster.engine.process(work())
            cluster.run()
            return done[0]

        assert busy_until(None) == pytest.approx(1.0)
        slowed = busy_until(
            FaultPlan(stragglers=(Straggler(node=0, t_start=0.0, t_end=10.0, factor=2.0),))
        )
        assert slowed == pytest.approx(2.0)


# ----------------------------------------------------------------------
# the killable wrapper
# ----------------------------------------------------------------------
class TestKillable:
    def test_body_completes_when_not_killed(self):
        engine = Engine()
        log = []

        def body():
            yield engine.timeout(1.0)
            log.append("ran")

        def driver():
            completed = yield from killable(body(), lambda: False)
            log.append(completed)

        engine.process(driver())
        engine.run()
        assert log == ["ran", True]

    def test_kill_aborts_at_next_yield(self):
        engine = Engine()
        dead = [False]
        log = []

        def body():
            log.append("start")
            yield engine.timeout(1.0)
            log.append("mid")
            yield engine.timeout(1.0)
            log.append("never")

        def driver():
            completed = yield from killable(body(), lambda: dead[0])
            log.append(completed)

        engine.process(driver())
        engine.schedule(1.5, dead.__setitem__, 0, True)
        engine.run()
        assert "never" not in log
        assert log[-1] is False

    def test_cleanup_yields_still_driven_after_kill(self):
        engine = Engine()
        dead = [False]
        log = []

        def body():
            try:
                yield engine.timeout(1.0)
                yield engine.timeout(1.0)
            finally:
                # mutex-unlock style cleanup that itself costs time
                yield engine.timeout(0.5)
                log.append(("cleaned", engine.now))

        def driver():
            completed = yield from killable(body(), lambda: dead[0])
            log.append(completed)

        engine.process(driver())
        engine.schedule(1.25, dead.__setitem__, 0, True)
        engine.run()
        # killed at the t=2.0 resume; cleanup runs 2.0 -> 2.5
        assert log == [("cleaned", 2.5), False]

    def test_body_exception_propagates(self):
        from repro.util.errors import SimulationError

        engine = Engine()

        def body():
            yield engine.timeout(1.0)
            raise ValueError("genuine bug")

        def driver():
            yield from killable(body(), lambda: False)

        engine.process(driver())
        with pytest.raises(SimulationError, match="unhandled exception") as excinfo:
            engine.run()
        assert "genuine bug" in str(excinfo.value.__cause__)

    def test_body_may_swallow_the_kill(self):
        engine = Engine()
        log = []

        def body():
            try:
                yield engine.timeout(1.0)
            except TaskKilled:
                log.append("caught")
                return

        def driver():
            completed = yield from killable(body(), lambda: True)
            log.append(completed)

        engine.process(driver())
        engine.run()
        # the body caught TaskKilled and returned; still counts as killed
        assert log == ["caught", False]


# ----------------------------------------------------------------------
# runtime-level recovery (tiny REAL workloads)
# ----------------------------------------------------------------------
def _fresh_workload(n_nodes=4, cores=2, scale="tiny"):
    from repro.experiments.calibration import make_cluster, make_workload

    cluster = make_cluster(cores, n_nodes=n_nodes, data_mode=DataMode.REAL)
    workload = make_workload(cluster, scale=scale, seed=7)
    return cluster, workload


class TestParsecRecovery:
    def _run(self, plan, variant_name="v4"):
        from repro.core.executor import run_ptg
        from repro.core.variants import variant_by_name

        cluster, workload = _fresh_workload()
        workload.i2.array.enable_ordered_accumulation()
        if plan is not None:
            cluster.install_faults(plan)
        run = run_ptg(
            cluster, workload.subroutine, variant_by_name(variant_name)
        )
        return workload.i2.flat_values(), run.result

    def test_task_retries_counted_and_harmless(self):
        reference, _ = self._run(None)
        plan = FaultPlan(master_seed=9, task_fail_prob=0.3, max_task_retries=5)
        values, result = self._run(plan)
        assert result.task_retries > 0
        assert np.array_equal(values, reference)

    def test_crash_recovery_is_bitwise(self):
        reference, clean = self._run(None)
        plan = FaultPlan(
            master_seed=9,
            crashes=(NodeCrash(node=1, at=0.4 * clean.execution_time),),
        )
        values, result = self._run(plan)
        assert result.nodes_crashed == 1
        assert result.tasks_reassigned > 0
        assert np.array_equal(values, reference)

    def test_crash_with_no_survivors_raises_stall_report(self):
        from repro.core.executor import run_ptg
        from repro.core.variants import variant_by_name

        cluster, workload = _fresh_workload(n_nodes=1, cores=1)
        cluster.install_faults(FaultPlan(crashes=(NodeCrash(node=0, at=1e-6),)))
        with pytest.raises(StallError, match="stalled") as excinfo:
            run_ptg(cluster, workload.subroutine, variant_by_name("v1"))
        message = str(excinfo.value)
        assert "alive=False" in message
        assert "fault report" in message
        assert excinfo.value.report is not None
        assert excinfo.value.report.nodes_crashed == 1


class TestLegacyRecovery:
    def _run(self, plan):
        from repro.legacy.runtime import LegacyRuntime

        cluster, workload = _fresh_workload()
        workload.i2.array.enable_ordered_accumulation()
        if plan is not None:
            cluster.install_faults(plan)
        result = LegacyRuntime(cluster, workload.ga).execute_subroutine(
            workload.subroutine
        )
        return workload.i2.flat_values(), result

    def test_crash_recovery_reissues_tickets(self):
        reference, clean = self._run(None)
        plan = FaultPlan(
            master_seed=9,
            crashes=(NodeCrash(node=1, at=0.4 * clean.execution_time),),
        )
        values, result = self._run(plan)
        assert result.ranks_lost > 0
        assert np.array_equal(values, reference)
        # every chain is accounted for: executed includes recovered ones
        assert result.chains_executed == clean.chains_executed

    def test_static_assignment_rejects_crash_plans(self):
        from repro.legacy.runtime import LegacyConfig, LegacyRuntime

        cluster, workload = _fresh_workload()
        cluster.install_faults(FaultPlan(crashes=(NodeCrash(node=1, at=1e-5),)))
        runtime = LegacyRuntime(
            cluster, workload.ga, LegacyConfig(use_nxtval=False)
        )
        with pytest.raises(ConfigurationError, match="use_nxtval"):
            runtime.execute_subroutine(workload.subroutine)


# ----------------------------------------------------------------------
# the acceptance sweep
# ----------------------------------------------------------------------
class TestChaosSweep:
    def test_tiny_sweep_meets_acceptance_criteria(self):
        from repro.experiments.chaos import run_chaos

        result = run_chaos(scale="tiny", n_nodes=4, cores_per_node=2)
        assert len(result.outcomes) == 6  # legacy + v1..v5
        for outcome in result.outcomes:
            assert outcome.bitwise_match, outcome.name
            assert outcome.deterministic, outcome.name
            assert outcome.faults_recovered, outcome.name
        # every fault class fired somewhere in the sweep
        totals = {}
        for outcome in result.outcomes:
            for key, value in outcome.counters.items():
                totals[key] = totals.get(key, 0) + value
        for key in (
            "task_retries",
            "messages_dropped",
            "messages_delayed",
            "messages_duplicated",
            "retransmits",
            "nodes_crashed",
        ):
            assert totals[key] > 0, key
        assert totals["tasks_reassigned"] + totals["tasks_recomputed"] > 0
        assert totals["tickets_reissued"] > 0
        assert totals["chains_recovered"] > 0

    def test_stealing_under_faults_stays_bitwise_and_deterministic(self):
        """The chaos x stealing interaction: a fault sweep against the
        PTG runtime with work stealing enabled must still recover to
        the bitwise fault-free reference, deterministically."""
        from repro.experiments.chaos import run_chaos

        result = run_chaos(
            scale="tiny", n_nodes=4, cores_per_node=2,
            codes=["v5"], stealing=True,
        )
        (outcome,) = result.outcomes
        assert outcome.bitwise_match
        assert outcome.deterministic
        assert outcome.faults_recovered

    def test_codes_subset_restricts_the_sweep(self):
        from repro.experiments.chaos import run_chaos

        result = run_chaos(
            scale="tiny", n_nodes=2, cores_per_node=1, codes=["original"]
        )
        assert [o.name for o in result.outcomes] == ["original"]
        assert result.outcomes[0].ok

    def test_stencil_workload_recovers_bitwise(self):
        """The rbgs stencil under the fault plan: both colored waves
        recover to the bitwise fault-free grid — a crash in the red
        wave makes the black wave's PTG re-home the dead node's tiles
        at launch, across the level barrier."""
        from repro.experiments.chaos import run_chaos

        result = run_chaos(
            scale="tiny", n_nodes=4, cores_per_node=2,
            codes=["original", "v1", "v5"], workload="rbgs",
        )
        assert [o.name for o in result.outcomes] == ["original", "v1", "v5"]
        for outcome in result.outcomes:
            assert outcome.bitwise_match, outcome.name
            assert outcome.deterministic, outcome.name
            assert outcome.faults_recovered, outcome.name


# ----------------------------------------------------------------------
# dead getters: a worker killed mid-get() must not eat queued work
# ----------------------------------------------------------------------
class TestDeadGetterRegression:
    def test_worker_killed_mid_get_loses_no_tasks(self):
        """Regression for silent task loss under crashes.

        A worker blocked on ``ready.get()`` when its node dies leaves a
        pending SimEvent in the store's getter queue. Before the fix, a
        later ``put()`` succeeded that corpse event: the dead worker woke,
        saw ``not node.alive``, and broke — the task vanished. The crash
        path now abandons parked getters (``NodeScheduler.drain``), and
        ``put()`` skips abandoned/triggered events.
        """
        from repro.sim.queues import Store

        engine = Engine()
        store = Store(engine)
        node_alive = [True]
        processed = []

        def worker():
            while True:
                task = yield store.get()
                if not node_alive[0]:
                    break  # crash semantics: abort without processing
                processed.append(task)

        engine.process(worker())

        def crash():
            node_alive[0] = False
            store.abandon_getters()  # what NodeScheduler.drain() does now

        engine.schedule(1.0, crash)
        engine.schedule(2.0, store.put, "re-homed-task")
        engine.run()
        # the corpse neither processed nor consumed the task ...
        assert processed == []
        # ... which is still in the store for a recovery worker to claim
        assert len(store) == 1

    def test_scheduler_drain_abandons_parked_workers(self):
        """End to end: crash a node, then check its ready-store getters died."""
        from repro.core.inspector import inspect_subroutine
        from repro.core.ptg_build import build_ccsd_ptg
        from repro.core.variants import variant_by_name
        from repro.parsec.runtime import ParsecRuntime

        cluster, workload = _fresh_workload()
        cluster.install_faults(
            FaultPlan(master_seed=31, crashes=(NodeCrash(node=1, at=1e-4),))
        )
        variant = variant_by_name("v5")
        md = inspect_subroutine(workload.subroutine, cluster, variant)
        runtime = ParsecRuntime(cluster)
        result = runtime.execute(build_ccsd_ptg(variant, md), md)
        assert result.nodes_crashed == 1
        assert result.tasks_reassigned > 0
        # drain() removed (and abandoned) every getter parked at crash
        # time: no corpse is left for a stray put() to resurrect
        dead_ready = runtime.schedulers[1].ready
        assert all(
            event.abandoned or event.triggered for event in dead_ready._getters
        )


# ----------------------------------------------------------------------
# cancelled-timer churn: the event heap must stay bounded
# ----------------------------------------------------------------------
class TestHeapBoundedUnderChaos:
    def test_retransmit_timer_churn_keeps_heap_bounded(self):
        """Every delivered message cancels its ack timer; dead entries
        must be compacted away instead of accumulating for the whole run."""
        cluster = _cluster(n_nodes=2)
        cluster.install_faults(FaultPlan(master_seed=9, drop_prob=0.15))
        engine = cluster.engine
        delivered = []
        peak_cancelled = [0]

        def sender():
            for i in range(400):
                cluster.network.send(
                    0,
                    1,
                    256.0,
                    i,
                    tag="t",
                    on_deliver=lambda m: delivered.append(m.payload),
                )
                peak_cancelled[0] = max(peak_cancelled[0], engine.cancelled_pending)
                yield engine.timeout(1e-6)

        engine.process(sender())
        cluster.run()
        assert sorted(delivered) == list(range(400))
        # lazy-cancelled entries never exceed the compaction threshold
        # plus half the live heap — no monotone growth
        assert peak_cancelled[0] <= 64 + engine.heap_size // 2 + 400
        assert engine.cancelled_pending * 2 <= max(128, engine.heap_size)
