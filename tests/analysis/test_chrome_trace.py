"""Tests for the Chrome trace-event export."""

import json

from repro.analysis.chrome_trace import to_chrome_trace, write_chrome_trace
from repro.sim.trace import TaskCategory, TraceRecorder


def make_trace():
    trace = TraceRecorder()
    trace.record(0, 0, TaskCategory.GEMM, "GEMM(0,0)", 0.0, 1.5, {"chain": 0})
    trace.record(0, 1, TaskCategory.READ_A, "READ_A(0,0)", 0.2, 0.4)
    trace.record(1, 0, TaskCategory.WRITE, "WRITE_C(0,0)", 2.0, 2.5)
    return trace


class TestChromeTrace:
    def test_span_events_complete(self):
        doc = to_chrome_trace(make_trace())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 3
        gemm = next(e for e in spans if e["name"] == "GEMM(0,0)")
        assert gemm["pid"] == 0 and gemm["tid"] == 0
        assert gemm["ts"] == 0.0
        assert gemm["dur"] == 1.5e6  # seconds -> microseconds
        assert gemm["cat"] == "gemm"
        assert gemm["args"] == {"chain": 0}

    def test_process_metadata_per_node(self):
        doc = to_chrome_trace(make_trace())
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["pid"] for m in metas} == {0, 1}
        assert metas[0]["args"]["name"].startswith("node")

    def test_zero_duration_clamped_visible(self):
        trace = TraceRecorder()
        trace.record(0, 0, TaskCategory.NXTVAL, "NXTVAL#0", 1.0, 1.0)
        doc = to_chrome_trace(trace)
        span = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
        assert span["dur"] > 0

    def test_write_roundtrip(self, tmp_path):
        path = write_chrome_trace(make_trace(), str(tmp_path / "trace.json"))
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 5

    def test_empty_trace(self):
        doc = to_chrome_trace(TraceRecorder())
        assert doc["traceEvents"] == []
