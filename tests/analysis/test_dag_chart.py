"""Tests for DAG critical-path analysis and the ASCII series chart."""

import pytest

from repro.analysis.ascii_chart import render_series_chart
from repro.analysis.dag import profile_task_graph, task_graph_to_networkx
from repro.core.inspector import inspect_subroutine
from repro.core.ptg_build import build_ccsd_ptg
from repro.core.variants import V1, V5
from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.tce.molecules import small_system, tiny_system
from repro.tce.t2_7 import build_t2_7


def make_graph(variant, system=None):
    cluster = Cluster(ClusterConfig(n_nodes=4, data_mode=DataMode.SYNTH))
    ga = GlobalArrays(cluster)
    workload = build_t2_7(cluster, ga, (system or tiny_system()).orbital_space())
    md = inspect_subroutine(workload.subroutine, cluster, variant)
    ptg = build_ccsd_ptg(variant, md)
    return ptg.instantiate(md, cluster.n_nodes), cluster.machine, workload


class TestDagAnalysis:
    def test_networkx_export_is_a_dag(self):
        import networkx as nx

        graph, machine, _ = make_graph(V5)
        dag = task_graph_to_networkx(graph, machine)
        assert nx.is_directed_acyclic_graph(dag)
        assert dag.number_of_nodes() == len(graph)
        assert all(data["cost"] >= 0 for _, data in dag.nodes(data=True))

    def test_profile_invariants(self):
        graph, machine, _ = make_graph(V5)
        profile = profile_task_graph(graph, machine)
        assert profile.n_tasks == len(graph)
        assert profile.critical_path <= profile.total_work
        assert profile.critical_length >= 1
        assert profile.average_parallelism >= 1.0

    def test_v5_dag_is_much_wider_than_v1(self):
        """Section IV-A: segmenting the chains 'increases available
        parallelism' — structurally visible as work/span. Needs the
        small system: tiny's 4-GEMM chains are too short for the
        chain-serialization span to dominate."""
        v1_profile = profile_task_graph(*make_graph(V1, small_system())[:2])
        v5_profile = profile_task_graph(*make_graph(V5, small_system())[:2])
        # same work order of magnitude...
        assert v5_profile.total_work == pytest.approx(
            v1_profile.total_work, rel=0.35
        )
        # ...but a much shorter critical path
        assert v5_profile.critical_path < 0.5 * v1_profile.critical_path
        assert v5_profile.average_parallelism > 2 * v1_profile.average_parallelism

    def test_span_lower_bounds_simulated_time(self):
        from repro.core.executor import run_ptg

        cluster = Cluster(
            ClusterConfig(n_nodes=4, cores_per_node=2, data_mode=DataMode.SYNTH)
        )
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
        md = inspect_subroutine(workload.subroutine, cluster, V5)
        ptg = build_ccsd_ptg(V5, md)
        profile = profile_task_graph(
            ptg.instantiate(md, cluster.n_nodes), cluster.machine
        )
        run = run_ptg(cluster, workload.subroutine, V5)
        # the simulated execution includes transport/overheads the
        # profile ignores, so the span must lower-bound it
        assert run.execution_time >= 0.9 * profile.critical_path


class TestAsciiChart:
    SERIES = {
        "original": {1: 91.4, 3: 38.3, 7: 28.3, 15: 28.7},
        "v5": {1: 85.8, 3: 28.7, 7: 12.5, 15: 8.7},
    }

    def test_renders_markers_and_legend(self):
        chart = render_series_chart(self.SERIES, [1, 3, 7, 15], title="fig9")
        assert "fig9" in chart
        assert "o=original" in chart and "x=v5" in chart
        assert "cores/node" in chart
        assert "o" in chart and "x" in chart

    def test_y_axis_spans_data(self):
        chart = render_series_chart(self.SERIES, [1, 3, 7, 15])
        assert "91.4" in chart
        assert "0.0" in chart

    def test_empty_series(self):
        assert "(no data)" in render_series_chart({}, [1, 2], title="t")

    def test_missing_x_points_skipped(self):
        series = {"a": {1: 5.0}}
        chart = render_series_chart(series, [1, 2, 3])
        assert "a" in chart


class TestGanttZoom:
    def test_zoom_window_restricts_axis(self):
        from repro.analysis.gantt import render_gantt
        from repro.sim.trace import TaskCategory, TraceRecorder

        trace = TraceRecorder()
        trace.record(0, 0, TaskCategory.GEMM, "early", 0.0, 1.0)
        trace.record(0, 0, TaskCategory.SORT, "late", 9.0, 10.0)
        zoomed = render_gantt(trace, width=20, t_min=8.5, t_max=10.0)
        assert "8.5" in zoomed
        row = [l for l in zoomed.splitlines() if l.startswith("n000")][0]
        glyphs = row.split("|")[1]
        assert "s" in glyphs and "G" not in glyphs
