"""Tests for trace metrics, Gantt rendering, and report tables."""

import pytest

from repro.analysis.gantt import render_gantt
from repro.analysis.metrics import (
    busy_fraction,
    category_time_share,
    comm_compute_overlap,
    idle_gaps,
    merge_intervals,
    startup_idle_fraction,
    thread_utilization,
)
from repro.analysis.report import format_fig9_table, format_table
from repro.sim.trace import TaskCategory, TraceRecorder


def make_trace(spans):
    """spans: iterable of (node, thread, category, t0, t1)."""
    trace = TraceRecorder()
    for node, thread, category, t0, t1 in spans:
        trace.record(node, thread, category, f"{category.value}@{t0}", t0, t1)
    return trace


class TestMergeIntervals:
    def test_disjoint(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlapping_and_nested(self):
        assert merge_intervals([(0, 5), (1, 2), (4, 7)]) == [(0, 7)]

    def test_touching_merge(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_empty_and_degenerate(self):
        assert merge_intervals([]) == []
        assert merge_intervals([(1, 1)]) == []


class TestUtilization:
    def test_fully_busy_thread(self):
        trace = make_trace([(0, 0, TaskCategory.GEMM, 0.0, 10.0)])
        assert thread_utilization(trace) == {(0, 0): 1.0}
        assert busy_fraction(trace) == 1.0

    def test_half_busy_thread(self):
        trace = make_trace(
            [
                (0, 0, TaskCategory.GEMM, 0.0, 5.0),
                (0, 1, TaskCategory.GEMM, 0.0, 10.0),
            ]
        )
        util = thread_utilization(trace)
        assert util[(0, 0)] == pytest.approx(0.5)
        assert util[(0, 1)] == pytest.approx(1.0)
        assert busy_fraction(trace) == pytest.approx(0.75)

    def test_empty_trace(self):
        assert thread_utilization(TraceRecorder()) == {}
        assert busy_fraction(TraceRecorder()) == 0.0

    def test_idle_gaps(self):
        trace = make_trace(
            [
                (0, 0, TaskCategory.GEMM, 2.0, 4.0),
                (0, 0, TaskCategory.GEMM, 6.0, 8.0),
                (0, 1, TaskCategory.GEMM, 0.0, 10.0),
            ]
        )
        assert idle_gaps(trace, (0, 0)) == [(0.0, 2.0), (4.0, 6.0), (8.0, 10.0)]
        assert idle_gaps(trace, (0, 1)) == []


class TestStartupIdle:
    def test_immediate_compute_is_zero(self):
        trace = make_trace([(0, 0, TaskCategory.GEMM, 0.0, 10.0)])
        assert startup_idle_fraction(trace) == 0.0

    def test_late_compute_measured(self):
        trace = make_trace(
            [
                (0, 0, TaskCategory.READ_A, 0.0, 1.0),
                (0, 0, TaskCategory.GEMM, 8.0, 10.0),
            ]
        )
        assert startup_idle_fraction(trace) == pytest.approx(0.8)

    def test_thread_without_compute_counts_fully_idle(self):
        trace = make_trace(
            [
                (0, 0, TaskCategory.GEMM, 0.0, 10.0),
                (0, 1, TaskCategory.READ_A, 0.0, 1.0),
            ]
        )
        assert startup_idle_fraction(trace) == pytest.approx(0.5)


class TestOverlap:
    def test_blocking_serial_rank_has_zero_overlap(self):
        # one thread alternating get/gemm: nothing to overlap with
        trace = make_trace(
            [
                (0, 0, TaskCategory.COMM, 0.0, 1.0),
                (0, 0, TaskCategory.GEMM, 1.0, 2.0),
                (0, 0, TaskCategory.COMM, 2.0, 3.0),
                (0, 0, TaskCategory.GEMM, 3.0, 4.0),
            ]
        )
        assert comm_compute_overlap(trace) == 0.0

    def test_within_thread_overlap_is_zero_for_disjoint_spans(self):
        trace = make_trace(
            [
                (0, 0, TaskCategory.COMM, 0.0, 2.0),
                (0, 1, TaskCategory.GEMM, 1.0, 3.0),
            ]
        )
        # default view: thread 0's comm does not overlap its own compute
        assert comm_compute_overlap(trace) == 0.0
        # machine view: another thread computed during half the comm
        assert comm_compute_overlap(trace, across_threads=True) == pytest.approx(0.5)

    def test_other_node_compute_does_not_count(self):
        trace = make_trace(
            [
                (0, 0, TaskCategory.COMM, 0.0, 2.0),
                (1, 0, TaskCategory.GEMM, 0.0, 2.0),
            ]
        )
        assert comm_compute_overlap(trace, across_threads=True) == 0.0

    def test_no_comm_returns_zero(self):
        trace = make_trace([(0, 0, TaskCategory.GEMM, 0.0, 1.0)])
        assert comm_compute_overlap(trace) == 0.0


class TestCategoryShare:
    def test_shares_sum_to_one(self):
        trace = make_trace(
            [
                (0, 0, TaskCategory.GEMM, 0.0, 3.0),
                (0, 0, TaskCategory.COMM, 3.0, 4.0),
            ]
        )
        shares = category_time_share(trace)
        assert shares[TaskCategory.GEMM] == pytest.approx(0.75)
        assert shares[TaskCategory.COMM] == pytest.approx(0.25)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty(self):
        assert category_time_share(TraceRecorder()) == {}


class TestGantt:
    def test_renders_rows_and_legend(self):
        trace = make_trace(
            [
                (0, 0, TaskCategory.GEMM, 0.0, 5.0),
                (0, 1, TaskCategory.COMM, 5.0, 10.0),
            ]
        )
        art = render_gantt(trace, width=20, title="demo")
        assert "demo" in art
        assert "n000.t00" in art and "n000.t01" in art
        assert "G" in art and "c" in art
        assert "legend:" in art

    def test_busiest_category_wins_cell(self):
        trace = make_trace(
            [
                (0, 0, TaskCategory.GEMM, 0.0, 9.0),
                (0, 0, TaskCategory.COMM, 9.0, 10.0),
            ]
        )
        art = render_gantt(trace, width=10)
        row = [l for l in art.splitlines() if l.startswith("n000")][0]
        glyphs = row.split("|")[1]
        assert glyphs.count("G") == 9
        assert glyphs.count("c") == 1

    def test_empty_trace(self):
        assert "(empty trace)" in render_gantt(TraceRecorder(), title="t")

    def test_max_rows_limits_output(self):
        trace = make_trace(
            [(n, 0, TaskCategory.GEMM, 0.0, 1.0) for n in range(10)]
        )
        art = render_gantt(trace, width=10, max_rows=3)
        assert sum(1 for l in art.splitlines() if l.startswith("n0")) == 3


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", "1"], ["yy", "22"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_fig9_table_shape(self):
        times = {"orig": {1: 40.0, 7: 16.0}, "v5": {1: 41.0, 15: 7.5}}
        text = format_fig9_table(times, [1, 7, 15])
        assert "orig" in text and "v5" in text
        assert "40.000" in text and "16.000" in text
        assert "-" in text  # missing cell
