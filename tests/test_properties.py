"""Cross-cutting property-based tests (hypothesis).

These pin the invariants the whole reproduction rests on: event
ordering in the DES kernel, conservation in the processor-sharing
bandwidth model, queue-discipline correctness, barrier semantics, chain
IR consistency over arbitrary orbital spaces, inspection-phase
partitioning, and end-to-end numerical equality between the runtimes on
randomly generated workloads.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.executor import run_ptg
from repro.core.inspector import _build_reduce_tree, _build_segments
from repro.core.variants import V1, V5
from repro.ga.runtime import GlobalArrays
from repro.ga.sync import Barrier
from repro.legacy.runtime import LegacyRuntime
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.engine import Engine
from repro.sim.queues import PriorityStore
from repro.sim.resources import BandwidthResource
from repro.tce.orbital_space import OrbitalSpace
from repro.tce.t2_7 import build_t2_7

slow_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEngineProperties:
    @given(delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_time_order(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, fired.append, delay)
        engine.run()
        assert fired == sorted(delays)
        assert engine.now == max(delays)

    @given(
        steps=st.lists(
            st.floats(min_value=0.001, max_value=10), min_size=1, max_size=20
        ),
        n_procs=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_process_clock_is_monotone(self, steps, n_procs):
        engine = Engine()
        observed = []

        def worker():
            for step in steps:
                yield engine.timeout(step)
                observed.append(engine.now)

        for _ in range(n_procs):
            engine.process(worker())
        engine.run()
        assert observed == sorted(observed)
        assert engine.now == pytest.approx(sum(steps))


class TestBandwidthProperties:
    @given(
        jobs=st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1000.0),   # size
                st.floats(min_value=0.0, max_value=50.0),     # arrival
            ),
            min_size=1,
            max_size=15,
        ),
        capacity=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_processor_sharing_conservation(self, jobs, capacity):
        engine = Engine()
        bandwidth = BandwidthResource(engine, capacity=capacity)
        completions = {}

        def worker(index, size, arrival):
            yield engine.timeout(arrival)
            yield bandwidth.transfer(size)
            completions[index] = engine.now

        for index, (size, arrival) in enumerate(jobs):
            engine.process(worker(index, size, arrival))
        engine.run()
        # every job finishes
        assert len(completions) == len(jobs)
        total_work = sum(size for size, _ in jobs)
        first_arrival = min(arrival for _, arrival in jobs)
        last_completion = max(completions.values())
        # the server cannot beat its capacity...
        assert last_completion >= first_arrival + total_work / capacity - 1e-6
        # ...and no job beats its own solo service time
        for index, (size, arrival) in enumerate(jobs):
            assert completions[index] >= arrival + size / capacity - 1e-9

    @given(
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=10
        ),
        cap=st.floats(min_value=0.5, max_value=5.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_per_job_cap_bounds_single_job_rate(self, sizes, cap):
        engine = Engine()
        bandwidth = BandwidthResource(engine, capacity=1000.0, per_job_cap=cap)
        completions = []

        def worker(size):
            yield bandwidth.transfer(size)
            completions.append((size, engine.now))

        for size in sizes:
            engine.process(worker(size))
        engine.run()
        for size, at in completions:
            assert at >= size / cap - 1e-9


class TestQueueProperties:
    @given(
        ops=st.lists(
            st.tuples(st.integers(min_value=-100, max_value=100)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_priority_store_pops_in_priority_order(self, ops):
        engine = Engine()
        store = PriorityStore(engine)
        for index, (priority,) in enumerate(ops):
            store.put((priority, index), priority=priority)
        popped = []
        while True:
            ok, item = store.try_get()
            if not ok:
                break
            popped.append(item)
        # non-increasing priority; FIFO within equal priorities
        for (p1, i1), (p2, i2) in zip(popped, popped[1:]):
            assert p1 > p2 or (p1 == p2 and i1 < i2)


class TestBarrierProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=12
        ),
        overhead=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_release_time_is_max_arrival(self, delays, overhead):
        engine = Engine()
        barrier = Barrier(engine, parties=len(delays), overhead=overhead)
        releases = []

        def party(delay):
            yield engine.timeout(delay)
            yield from barrier.arrive()
            releases.append(engine.now)

        for delay in delays:
            engine.process(party(delay))
        engine.run()
        expected = max(delays) + overhead
        assert all(t == pytest.approx(expected) for t in releases)


@st.composite
def orbital_spaces(draw):
    nocc = draw(st.integers(min_value=2, max_value=12))
    nvirt = draw(st.integers(min_value=2, max_value=20))
    tile = draw(st.integers(min_value=2, max_value=6))
    return OrbitalSpace(nocc, nvirt, tile)


class TestChainIrProperties:
    @given(space=orbital_spaces(), seed=st.integers(min_value=0, max_value=10))
    @slow_settings
    def test_chain_invariants_over_random_spaces(self, space, seed):
        cluster = Cluster(ClusterConfig(n_nodes=3, data_mode=DataMode.SYNTH))
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, space, seed=seed)
        for chain in workload.subroutine.chains:
            # the output tile is exactly the m x n chain result
            assert chain.m * chain.n == chain.c_size
            for sw in chain.active_sorts:
                assert sw.target.size == chain.c_size
            # all active sorts target the same block
            targets = {(sw.target.lo, sw.target.hi) for sw in chain.active_sorts}
            assert len(targets) == 1
            # GEMM operand shapes agree with the chain
            for gemm in chain.gemms:
                assert gemm.m == chain.m and gemm.n == chain.n
                assert gemm.a.size == gemm.k * gemm.m
                assert gemm.b.size == gemm.k * gemm.n

    @given(
        n_gemms=st.integers(min_value=1, max_value=40),
        height=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
    )
    @settings(max_examples=60, deadline=None)
    def test_segments_partition_positions(self, n_gemms, height):
        segments = _build_segments(n_gemms, height)
        cursor = 0
        for segment in segments:
            assert segment.start == cursor
            assert segment.length >= 1
            if height is not None:
                assert segment.length <= height
            cursor += segment.length
        assert cursor == n_gemms

    @given(n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_reduce_tree_consumes_every_source_once(self, n):
        reduces, consumer = _build_reduce_tree(n)
        if n == 1:
            assert reduces == []
            return
        assert len(reduces) == n - 1
        assert sum(r.is_root for r in reduces) == 1
        # every non-root output and every segment appears exactly once
        # as a source
        sources = [r.left for r in reduces] + [r.right for r in reduces]
        assert sorted(s for s in sources if s[0] == "seg") == [
            ("seg", i) for i in range(n)
        ]


class TestEndToEndProperties:
    @given(space=orbital_spaces(), seed=st.integers(min_value=0, max_value=5))
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_v1_bitwise_equals_legacy_on_random_workloads(self, space, seed):
        def run(kind):
            cluster = Cluster(
                ClusterConfig(n_nodes=3, cores_per_node=2, data_mode=DataMode.REAL)
            )
            ga = GlobalArrays(cluster)
            workload = build_t2_7(cluster, ga, space, seed=seed)
            if kind == "legacy":
                LegacyRuntime(cluster, ga).execute_subroutine(workload.subroutine)
            else:
                run_ptg(cluster, workload.subroutine, V1)
            return workload.i2.flat_values()

        np.testing.assert_array_equal(run("legacy"), run("v1"))

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_v5_matches_legacy_to_14_digits_any_seed(self, seed):
        space = OrbitalSpace(6, 10, 3)

        def run(kind):
            cluster = Cluster(
                ClusterConfig(n_nodes=3, cores_per_node=2, data_mode=DataMode.REAL)
            )
            ga = GlobalArrays(cluster)
            workload = build_t2_7(cluster, ga, space, seed=seed)
            if kind == "legacy":
                LegacyRuntime(cluster, ga).execute_subroutine(workload.subroutine)
            else:
                run_ptg(cluster, workload.subroutine, V5)
            return workload.i2.flat_values()

        np.testing.assert_allclose(run("legacy"), run("v5"), rtol=1e-12, atol=1e-12)
