"""The two new workloads: structure, references, multi-level execution."""

import numpy as np
import pytest

from repro.core import api
from repro.experiments.calibration import make_cluster, make_workload
from repro.sim.cluster import DataMode
from repro.util.errors import ConfigurationError
from repro.workloads.rbgs import RBGS_PRESETS, parse_grid


def _real_workload(token, n_nodes=4, cores=2, seed=7):
    cluster = make_cluster(cores, n_nodes=n_nodes, data_mode=DataMode.REAL)
    return make_workload(cluster, scale="tiny", seed=seed, workload=token)


class TestRbgsGridParsing:
    def test_presets(self):
        for name, shape in RBGS_PRESETS.items():
            assert parse_grid(name) == shape

    def test_explicit_grids(self):
        assert parse_grid("8x8") == (8, 8, 4)  # default tile
        assert parse_grid("6x4x3") == (6, 4, 3)

    @pytest.mark.parametrize("bad", ["", "8", "8x", "0x8", "8x8x0", "axb", "8x8x8x8"])
    def test_bad_grids_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="bad rbgs grid"):
            parse_grid(bad)


class TestRbgsStructure:
    def test_two_colored_waves(self):
        workload = _real_workload("rbgs")
        levels = workload.levels()
        assert [s.level for s in levels] == [0, 1]
        # 6x6 checkerboard: 18 red + 18 black tile updates
        assert [s.n_chains for s in levels] == [18, 18]

    def test_boundary_chains_are_shorter(self):
        workload = _real_workload("rbgs")
        lengths = {
            len(chain.gemms)
            for level in workload.levels()
            for chain in level.chains
        }
        # corners 3, edges 4, interior 5 stencil sources
        assert lengths == {3, 4, 5}

    def test_reference_matches_the_legacy_run(self):
        workload = _real_workload("rbgs")
        api.run(workload, runtime="legacy")
        np.testing.assert_allclose(
            workload.output.flat_values(),
            workload.reference_values(),
            rtol=1e-12,
        )


class TestCcsdStructure:
    def test_seven_barrier_levels(self):
        workload = _real_workload("ccsd")
        levels = workload.levels()
        assert len(levels) == 7
        assert [s.level for s in levels] == list(range(7))
        # each level fuses its terms into one subroutine with a dense
        # chain-id range (the PTG domain and NXTVAL both need it)
        for sub in levels:
            assert [c.chain_id for c in sub.chains] == list(range(sub.n_chains))

    def test_reference_matches_the_legacy_run(self):
        from repro.tce.reference import correlation_energy

        workload = _real_workload("ccsd")
        api.run(workload, runtime="legacy")
        run_energy = correlation_energy(workload.output.flat_values())
        ref_energy = correlation_energy(workload.reference_values())
        assert run_energy == pytest.approx(ref_energy, rel=1e-12)


class TestMultiLevelExecution:
    def test_legacy_and_ptg_agree_across_barriers(self):
        outputs = {}
        for runtime in ("legacy", "v5"):
            workload = _real_workload("rbgs")
            api.run(workload, runtime=runtime)
            outputs[runtime] = workload.output.flat_values()
        np.testing.assert_allclose(
            outputs["legacy"], outputs["v5"], rtol=1e-12
        )

    def test_barriers_are_charged_between_levels(self):
        # a 2-level workload pays exactly one barrier more than the sum
        # of its levels would alone; cheapest proxy: the run completes
        # with a strictly positive virtual time on every runtime
        workload = _real_workload("rbgs", n_nodes=2, cores=1)
        result = api.run(workload, runtime="v1")
        assert result.execution_time > 0
        assert result.n_tasks > 0
