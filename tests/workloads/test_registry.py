"""The workload registry: names, token grammar, and the legacy shim."""

import pytest

from repro.workloads import (
    Workload,
    build_workload,
    canonical_token,
    parse_workload_token,
    workload_names,
    workload_spec,
)
from repro.util.errors import ConfigurationError


class TestRegistry:
    def test_builtin_workloads_registered(self):
        names = workload_names()
        for name in ("t2_7", "ccsd", "rbgs"):
            assert name in names

    def test_unknown_name_rejected_with_options(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            workload_spec("frobnicate")
        with pytest.raises(ConfigurationError, match="t2_7"):
            workload_spec("frobnicate")  # the error lists what exists


class TestTokenGrammar:
    def test_explicit_token(self):
        assert parse_workload_token("ccsd:tiny") == ("ccsd", "tiny")
        assert parse_workload_token("rbgs:128x128") == ("rbgs", "128x128")

    def test_bare_scale_resolves_through_the_t2_7_shim(self):
        assert parse_workload_token("tiny") == ("t2_7", "tiny")
        assert parse_workload_token("small") == ("t2_7", "small")

    def test_bare_name_takes_scale_then_default(self):
        assert parse_workload_token("rbgs", scale="tiny") == ("rbgs", "tiny")
        # no scale: the spec's default params
        name, params = parse_workload_token("rbgs")
        assert (name, params) == ("rbgs", workload_spec("rbgs").default_params)

    def test_explicit_params_beat_the_scale_argument(self):
        assert parse_workload_token("rbgs:8x8", scale="tiny") == ("rbgs", "8x8")

    def test_empty_params_rejected(self):
        with pytest.raises(ConfigurationError, match="empty params"):
            parse_workload_token("rbgs:")

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            parse_workload_token("nope:tiny")
        with pytest.raises(ConfigurationError, match="unknown workload"):
            parse_workload_token("nope")

    def test_canonical_token_is_fully_qualified(self):
        assert canonical_token("tiny") == "t2_7:tiny"
        assert canonical_token("rbgs", scale="tiny") == "rbgs:tiny"
        assert canonical_token("ccsd:small") == "ccsd:small"


class TestBuildWorkload:
    @pytest.mark.parametrize("token", ["tiny", "ccsd:tiny", "rbgs:tiny"])
    def test_builds_protocol_instances(self, token):
        from repro.experiments.calibration import make_cluster

        cluster = make_cluster(2, n_nodes=2)
        workload = build_workload(token, cluster)
        assert isinstance(workload, Workload)
        assert workload.levels()
        assert workload.output is not None
        # the instance is stamped with the one canonical spelling
        assert workload.workload_id == canonical_token(token)

    def test_every_level_carries_a_structure_token(self):
        from repro.experiments.calibration import make_cluster

        cluster = make_cluster(2, n_nodes=2)
        for token in ("t2_7:tiny", "ccsd:tiny", "rbgs:tiny"):
            for level in build_workload(token, cluster).levels():
                assert level.structure_token is not None, token
