"""Tests for the hybrid (accelerator) execution path."""

import numpy as np
import pytest

from repro.core.executor import run_ptg
from repro.core.variants import V5
from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.cost import MachineModel
from repro.tce.molecules import tiny_system
from repro.tce.reference import compute_reference
from repro.tce.t2_7 import build_t2_7
from repro.util.errors import ConfigurationError


def make_run(gpus_per_node=0, cores=2, data_mode=DataMode.REAL, **overrides):
    machine = MachineModel(**overrides) if overrides else MachineModel()
    cluster = Cluster(
        ClusterConfig(
            n_nodes=4,
            cores_per_node=cores,
            machine=machine,
            data_mode=data_mode,
            gpus_per_node=gpus_per_node,
        )
    )
    ga = GlobalArrays(cluster)
    workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
    run = run_ptg(cluster, workload.subroutine, V5)
    return cluster, workload, run


class TestHybridExecution:
    def test_gpu_run_matches_reference_numerically(self):
        cluster, workload, run = make_run(gpus_per_node=1)
        expected = compute_reference(workload)
        np.testing.assert_allclose(
            workload.i2.flat_values(), expected, rtol=1e-12, atol=1e-12
        )

    def test_gemms_execute_on_gpu_rows(self):
        cluster, workload, run = make_run(gpus_per_node=1, data_mode=DataMode.SYNTH)
        from repro.sim.trace import TaskCategory

        gemms = cluster.trace.filtered(category=TaskCategory.GEMM)
        assert len(gemms) == workload.subroutine.n_gemms
        # all GEMM spans sit on the dedicated GPU row (thread cores+1)
        assert {g.thread for g in gemms} == {cluster.cores_per_node + 1}
        assert all(g.meta["device"] == "gpu0" for g in gemms)

    def test_two_gpus_share_the_work(self):
        cluster, workload, run = make_run(gpus_per_node=2, data_mode=DataMode.SYNTH)
        from repro.sim.trace import TaskCategory

        rows = {g.thread for g in cluster.trace.filtered(category=TaskCategory.GEMM)}
        assert rows == {cluster.cores_per_node + 1, cluster.cores_per_node + 2}

    def test_gpu_speeds_up_compute_bound_configuration(self):
        """At 1 core/node the CPU run is compute-bound; an accelerator
        with a much higher DGEMM rate must win."""
        _, _, cpu_run = make_run(gpus_per_node=0, cores=1, data_mode=DataMode.SYNTH)
        _, _, gpu_run = make_run(gpus_per_node=1, cores=1, data_mode=DataMode.SYNTH)
        assert gpu_run.execution_time < cpu_run.execution_time

    def test_pcie_staging_costs_time(self):
        """A near-zero PCIe link makes the GPU path slower, not faster."""
        _, _, fast = make_run(
            gpus_per_node=1, cores=1, data_mode=DataMode.SYNTH
        )
        _, _, slow = make_run(
            gpus_per_node=1,
            cores=1,
            data_mode=DataMode.SYNTH,
            pcie_bytes_per_s=1.0e6,
        )
        assert slow.execution_time > fast.execution_time

    def test_non_accelerated_tasks_stay_on_cpu(self):
        cluster, workload, run = make_run(gpus_per_node=1, data_mode=DataMode.SYNTH)
        from repro.sim.trace import TaskCategory

        for category in (TaskCategory.SORT, TaskCategory.WRITE, TaskCategory.REDUCE):
            spans = cluster.trace.filtered(category=category)
            assert spans, category
            assert all(s.thread < cluster.cores_per_node for s in spans)

    def test_negative_gpu_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(gpus_per_node=-1)

    def test_gpu_gemm_cost_has_no_host_traffic(self):
        machine = MachineModel()
        cpu_cost = machine.gemm(64, 64, 64)
        gpu_cost = machine.gemm(64, 64, 64, device="gpu")
        assert gpu_cost.bytes == 0.0
        assert gpu_cost.cpu < cpu_cost.cpu
