"""Inter-node work stealing: correctness, makespan, chaos.

The acceptance criteria from the stealing design: on a skewed tiny
workload at >=2 nodes, stealing must strictly reduce the virtual
makespan AND leave the Global Array block contents byte-identical to
the static run at the same seed (WRITE_C accumulation never migrates,
so ordered tagged accumulation sees the same sequence either way).
"""

import numpy as np
import pytest

from repro.core import api
from repro.core.api import RunConfig, StealPolicy
from repro.core.variants import V5
from repro.experiments.calibration import PAPER_MACHINE, make_cluster, make_workload
from repro.sim.cluster import DataMode
from repro.sim.faults import FaultPlan, NodeCrash
from repro.sim.trace import TaskCategory

#: the paper's machine is comm-bound at tiny scale, where the benefit
#: filter rightly declines to migrate; an order-of-magnitude slower
#: GEMM unit makes imbalance show up as makespan
COMPUTE_BOUND = PAPER_MACHINE.with_overrides(gemm_gflops=1.0)


def _config(n_nodes, stealing, **overrides):
    """Skewed tiny-scale config: every heavy chain lands on node 0."""
    kwargs = dict(
        n_nodes=n_nodes,
        cores_per_node=2,
        seed=7,
        metrics=False,
        machine=COMPUTE_BOUND,
        skew_factor=6,
        skew_period=n_nodes,
        stealing=stealing,
    )
    kwargs.update(overrides)
    return RunConfig(**kwargs)


def _run(n_nodes, stealing, **overrides):
    return api.run("tiny", variant=V5, config=_config(n_nodes, stealing, **overrides))


# ----------------------------------------------------------------------
# bitwise equivalence: the determinism argument, test-asserted
# ----------------------------------------------------------------------
class TestBitwiseEquivalence:
    def test_ga_blocks_identical_with_and_without_stealing(self):
        static = _run(4, None)
        stolen = _run(4, StealPolicy())
        assert stolen.steals_granted > 0  # the comparison must be non-vacuous
        assert np.array_equal(
            static.output.flat_values(), stolen.output.flat_values()
        )

    def test_same_seed_reproduces_the_same_steals(self):
        a = _run(4, StealPolicy())
        b = _run(4, StealPolicy())
        assert a.execution_time == b.execution_time
        assert a.steal_requests == b.steal_requests
        assert a.steals_granted == b.steals_granted
        assert a.chains_migrated == b.chains_migrated
        assert np.array_equal(a.output.flat_values(), b.output.flat_values())


# ----------------------------------------------------------------------
# makespan: stealing must pay for itself on a skewed workload
# ----------------------------------------------------------------------
class TestMakespan:
    @pytest.mark.parametrize("n_nodes", [2, 4])
    def test_stealing_strictly_reduces_skewed_makespan(self, n_nodes):
        static = _run(n_nodes, None)
        stolen = _run(n_nodes, StealPolicy())
        assert stolen.chains_migrated > 0
        assert stolen.execution_time < static.execution_time

    def test_single_node_run_is_a_noop(self):
        # stealing needs a second node; the layer must not even start
        static = _run(1, None)
        stolen = _run(1, StealPolicy())
        assert stolen.steal_requests == 0
        assert stolen.steals_granted == 0
        assert stolen.execution_time == static.execution_time
        assert np.array_equal(
            static.output.flat_values(), stolen.output.flat_values()
        )

    def test_disabled_policy_is_a_noop(self):
        static = _run(4, None)
        stolen = _run(4, StealPolicy(enabled=False))
        assert stolen.steal_requests == 0
        assert stolen.execution_time == static.execution_time


# ----------------------------------------------------------------------
# counters, metrics, trace spans
# ----------------------------------------------------------------------
class TestObservability:
    def test_counters_metrics_and_trace_spans(self):
        cluster = make_cluster(
            2,
            n_nodes=4,
            data_mode=DataMode.REAL,
            trace_enabled=True,
            metrics_enabled=True,
            machine=COMPUTE_BOUND,
        )
        workload = make_workload(
            cluster, scale="tiny", seed=7, skew_factor=6, skew_period=4
        )
        result = api.run(
            workload, variant=V5, config=RunConfig(stealing=StealPolicy())
        )
        assert result.steals_granted > 0
        assert result.steals_denied > 0
        # some requests can be in flight when the run completes
        assert result.steal_requests >= result.steals_granted + result.steals_denied
        assert result.chains_migrated >= result.steals_granted
        assert result.migrated_flops > 0
        assert result.steal_forwarded_bytes > 0

        snap = result.metrics
        assert snap["counters"]["steal.granted"] == result.steals_granted
        assert snap["counters"]["steal.denied"] == result.steals_denied
        assert snap["counters"]["steal.requests"] == result.steal_requests
        assert snap["counters"]["steal.migrated_flops"] == result.migrated_flops
        latency = snap["histograms"]["steal.latency_s"]
        assert latency["count"] == result.steals_granted
        assert latency["min"] > 0  # control messages ride the network

        spans = [
            e for e in cluster.trace.events if e.category is TaskCategory.STEAL
        ]
        assert any(e.label.startswith("steal.grant->") for e in spans)
        assert any(e.label.startswith("steal.recv<-") for e in spans)


# ----------------------------------------------------------------------
# chaos: stealing composed with node crashes
# ----------------------------------------------------------------------
class TestStealingUnderCrashes:
    def _run(self, plan=None):
        cluster = make_cluster(
            2, n_nodes=4, data_mode=DataMode.REAL, machine=COMPUTE_BOUND
        )
        workload = make_workload(
            cluster, scale="tiny", seed=7, skew_factor=6, skew_period=4
        )
        workload.i2.array.enable_ordered_accumulation()
        if plan is not None:
            cluster.install_faults(plan)
        result = api.run(
            workload, variant=V5, config=RunConfig(stealing=StealPolicy())
        )
        return workload.i2.flat_values(), result

    def test_thief_crash_reissues_stolen_work_bitwise(self):
        """Crash a thief mid-run: stolen chains re-home, nothing is lost.

        Node 0 holds every heavy chain (skew_period == n_nodes), so the
        other nodes steal from it; killing node 1 after the first grants
        exercises the stale-GRANT guard and the crash re-homing of
        migrated tasks. The output must still be bitwise identical to
        the fault-free stealing run.
        """
        reference, clean = self._run(None)
        assert clean.steals_granted > 0
        plan = FaultPlan(
            master_seed=9,
            crashes=(NodeCrash(node=1, at=0.5 * clean.execution_time),),
        )
        values, result = self._run(plan)
        assert result.nodes_crashed == 1
        assert result.tasks_reassigned > 0
        assert result.steals_granted > 0
        assert np.array_equal(values, reference)

    def test_crash_run_is_deterministic(self):
        _, clean = self._run(None)
        plan = FaultPlan(
            master_seed=9,
            crashes=(NodeCrash(node=1, at=0.5 * clean.execution_time),),
        )
        values_a, a = self._run(plan)
        values_b, b = self._run(plan)
        assert a.execution_time == b.execution_time
        assert a.steals_granted == b.steals_granted
        assert a.chains_migrated == b.chains_migrated
        assert np.array_equal(values_a, values_b)
