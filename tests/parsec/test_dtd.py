"""Tests for the Dynamic Task Discovery runtime and its CCSD port."""

import numpy as np
import pytest

from repro.core.dtd_port import run_over_dtd
from repro.core.executor import run_ptg
from repro.core.variants import V5
from repro.ga.runtime import GlobalArrays
from repro.parsec.dtd import AccessMode, DtdRuntime
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.cost import OpCost
from repro.sim.trace import TaskCategory
from repro.tce.molecules import tiny_system
from repro.tce.reference import compute_reference, correlation_energy
from repro.tce.t2_7 import build_t2_7
from repro.util.errors import DataflowError


def make_cluster(n_nodes=2, cores=2, data_mode=DataMode.REAL):
    return Cluster(
        ClusterConfig(n_nodes=n_nodes, cores_per_node=cores, data_mode=data_mode)
    )


def burn(duration, log=None, write=None, value=None):
    def body(ctx):
        yield from ctx.charge(OpCost(duration, 0.0))
        if log is not None:
            log.append((ctx.task.name, ctx.cluster.engine.now))
        if write is not None:
            ctx.write(write, value)

    return body


class TestDependenceInference:
    def test_read_after_write(self):
        cluster = make_cluster()
        runtime = DtdRuntime(cluster)
        x = runtime.data("x", 1, 0)
        log = []
        runtime.insert_task("W", burn(1.0, log, "x", 42), [(x, AccessMode.WRITE)], node=0)
        runtime.insert_task("R", burn(0.5, log), [(x, AccessMode.READ)], node=0)
        result = runtime.execute()
        assert [name for name, _ in log] == ["W", "R"]
        assert result.n_edges == 1

    def test_write_after_read_antidependence(self):
        cluster = make_cluster()
        runtime = DtdRuntime(cluster)
        x = runtime.data("x", 1, 0)
        log = []
        runtime.insert_task("W1", burn(1.0, log, "x", 1), [(x, AccessMode.WRITE)], node=0)
        runtime.insert_task("R1", burn(1.0, log), [(x, AccessMode.READ)], node=0)
        runtime.insert_task("R2", burn(1.0, log), [(x, AccessMode.READ)], node=0)
        runtime.insert_task("W2", burn(1.0, log, "x", 2), [(x, AccessMode.WRITE)], node=0)
        runtime.execute()
        order = {name: i for i, (name, _) in enumerate(log)}
        assert order["W1"] < order["R1"] and order["W1"] < order["R2"]
        assert order["W2"] > order["R1"] and order["W2"] > order["R2"]

    def test_independent_tasks_run_in_parallel(self):
        cluster = make_cluster(cores=4)
        runtime = DtdRuntime(cluster)
        finish = []

        def body(ctx):
            yield from ctx.charge(OpCost(1.0, 0.0))
            finish.append(ctx.cluster.engine.now)

        for i in range(4):
            x = runtime.data(f"x{i}", 1, 0)
            runtime.insert_task(f"T{i}", body, [(x, AccessMode.WRITE)], node=0)
        result = runtime.execute()
        assert result.n_edges == 0
        # all ran concurrently (plus insertion + per-task overhead)
        assert max(finish) - min(finish) < 0.5

    def test_rw_chains_serialize(self):
        cluster = make_cluster(cores=4)
        runtime = DtdRuntime(cluster)
        acc = runtime.data("acc", 1, 0)
        log = []
        for i in range(5):
            runtime.insert_task(f"U{i}", burn(0.2, log), [(acc, AccessMode.RW)], node=0)
        runtime.execute()
        assert [name for name, _ in log] == [f"U{i}" for i in range(5)]

    def test_values_flow_between_tasks(self):
        cluster = make_cluster()
        runtime = DtdRuntime(cluster)
        x = runtime.data("x", 1, 0)
        got = {}

        def producer(ctx):
            yield from ctx.charge(OpCost(0.1, 0.0))
            ctx.write("x", 99)

        def consumer(ctx):
            yield from ctx.charge(OpCost(0.1, 0.0))
            got["x"] = ctx.data["x"]

        runtime.insert_task("P", producer, [(x, AccessMode.WRITE)], node=0)
        runtime.insert_task("C", consumer, [(x, AccessMode.READ)], node=1)
        result = runtime.execute()
        assert got["x"] == 99
        assert result.messages_remote == 1

    def test_insert_after_execute_rejected(self):
        cluster = make_cluster()
        runtime = DtdRuntime(cluster)
        runtime.execute()
        with pytest.raises(DataflowError):
            runtime.insert_task("late", burn(0.1), [], node=0)

    def test_bad_access_mode_rejected(self):
        cluster = make_cluster()
        runtime = DtdRuntime(cluster)
        x = runtime.data("x", 1, 0)
        with pytest.raises(DataflowError):
            runtime.insert_task("T", burn(0.1), [(x, "bogus")], node=0)

    def test_insertion_time_charged(self):
        cluster = make_cluster()
        runtime = DtdRuntime(cluster)
        for i in range(10):
            x = runtime.data(f"x{i}", 1, 0)
            runtime.insert_task(f"T{i}", burn(0.0), [(x, AccessMode.WRITE)], node=0)
        result = runtime.execute()
        assert result.insertion_time > 0
        assert result.execution_time >= result.insertion_time


class TestCcsdOverDtd:
    def test_numerics_match_reference(self):
        cluster = make_cluster(n_nodes=4)
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
        result = run_over_dtd(cluster, workload.subroutine)
        expected = compute_reference(workload)
        np.testing.assert_allclose(
            workload.i2.flat_values(), expected, rtol=1e-12, atol=1e-12
        )
        assert result.n_tasks > 3 * workload.subroutine.n_gemms

    def test_energy_matches_ptg_to_14_digits(self):
        def fresh():
            cluster = make_cluster(n_nodes=4)
            ga = GlobalArrays(cluster)
            return cluster, build_t2_7(cluster, ga, tiny_system().orbital_space())

        cluster, workload = fresh()
        run_over_dtd(cluster, workload.subroutine)
        dtd_energy = correlation_energy(workload.i2.flat_values())
        cluster, workload = fresh()
        run_ptg(cluster, workload.subroutine, V5)
        ptg_energy = correlation_energy(workload.i2.flat_values())
        assert dtd_energy == pytest.approx(ptg_energy, rel=1e-13)

    def test_dag_is_materialized(self):
        """The DTD cost the paper calls out: every edge exists in memory."""
        cluster = make_cluster(n_nodes=4, data_mode=DataMode.SYNTH)
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
        result = run_over_dtd(cluster, workload.subroutine)
        # at minimum: 2 edges into each GEMM, 1 out of it, plus
        # reduce/sort/write edges
        assert result.n_edges >= 3 * workload.subroutine.n_gemms

    def test_trace_has_task_classes(self):
        cluster = make_cluster(n_nodes=4, data_mode=DataMode.SYNTH)
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
        run_over_dtd(cluster, workload.subroutine)
        counts = cluster.trace.count_by_category()
        for category in (
            TaskCategory.READ_A,
            TaskCategory.GEMM,
            TaskCategory.SORT,
            TaskCategory.WRITE,
        ):
            assert counts.get(category, 0) > 0

    def test_deterministic(self):
        def once():
            cluster = make_cluster(n_nodes=4, data_mode=DataMode.SYNTH)
            ga = GlobalArrays(cluster)
            workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
            return run_over_dtd(cluster, workload.subroutine).execution_time

        assert once() == once()
