"""Tests for the scheduler policy disciplines and the LIFO store."""

import numpy as np
import pytest

from repro.core.executor import run_ptg
from repro.core.variants import V4
from repro.ga.runtime import GlobalArrays
from repro.parsec.scheduler import SchedulerPolicy
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.engine import Engine
from repro.sim.queues import LifoStore
from repro.tce.molecules import tiny_system
from repro.tce.reference import compute_reference
from repro.tce.t2_7 import build_t2_7


class TestLifoStore:
    def test_newest_first(self):
        engine = Engine()
        store = LifoStore(engine)
        for i in range(4):
            store.put(i)
        got = []

        def worker():
            for _ in range(4):
                got.append((yield store.get()))

        engine.process(worker())
        engine.run()
        assert got == [3, 2, 1, 0]

    def test_blocking_get(self):
        engine = Engine()
        store = LifoStore(engine)
        got = []

        def worker():
            got.append(((yield store.get()), engine.now))

        engine.process(worker())
        engine.schedule(2.0, store.put, "x")
        engine.run()
        assert got == [("x", 2.0)]

    def test_try_get(self):
        engine = Engine()
        store = LifoStore(engine)
        assert store.try_get() == (False, None)
        store.put("a")
        store.put("b")
        assert store.try_get() == (True, "b")
        assert len(store) == 1


class TestPolicies:
    @pytest.mark.parametrize("policy", list(SchedulerPolicy))
    def test_every_policy_computes_correct_results(self, policy):
        cluster = Cluster(
            ClusterConfig(n_nodes=4, cores_per_node=2, data_mode=DataMode.REAL)
        )
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
        run = run_ptg(cluster, workload.subroutine, V4, policy=policy)
        expected = compute_reference(workload)
        np.testing.assert_allclose(
            workload.i2.flat_values(), expected, rtol=1e-12, atol=1e-12
        )
        assert run.execution_time > 0

    def test_policies_produce_different_schedules(self):
        def time_for(policy):
            cluster = Cluster(
                ClusterConfig(n_nodes=4, cores_per_node=2, data_mode=DataMode.SYNTH)
            )
            ga = GlobalArrays(cluster)
            workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
            return run_ptg(
                cluster, workload.subroutine, V4, policy=policy
            ).execution_time

        times = {policy: time_for(policy) for policy in SchedulerPolicy}
        # at least two disciplines must schedule observably differently
        assert len(set(times.values())) >= 2

    def test_default_policy_is_priority(self):
        from repro.parsec.runtime import ParsecRuntime

        cluster = Cluster(ClusterConfig(n_nodes=1))
        assert ParsecRuntime(cluster).policy is SchedulerPolicy.PRIORITY
