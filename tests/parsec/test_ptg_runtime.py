"""Unit tests for the generic PTG runtime.

Builds small PTGs by hand — including the paper's Figure 1 example (a
GEMM chain fed by DFILL, drained by SORT) and its Figure 2 variation
(parallel GEMMs into a reduction) — and checks instantiation,
validation, scheduling order, priorities, and remote dataflow.
"""

from types import SimpleNamespace

import pytest

from repro.parsec.ptg import PTG
from repro.parsec.runtime import ParsecRuntime
from repro.parsec.taskclass import Dep, Flow, FlowMode, TaskClass
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.cost import OpCost
from repro.sim.trace import TaskCategory
from repro.util.errors import DataflowError


def make_cluster(n_nodes=2, cores=2, **overrides):
    from repro.sim.cost import MachineModel

    machine = MachineModel(**overrides) if overrides else MachineModel()
    return Cluster(ClusterConfig(n_nodes=n_nodes, cores_per_node=cores, machine=machine))


def simple_run(duration=0.0, record=None, value=None):
    """A body that burns ``duration`` cpu and forwards a value on flow C."""

    def run(ctx):
        yield from ctx.charge(OpCost(duration, 0.0))
        if record is not None:
            record.append((ctx.task.label, ctx.cluster.engine.now))
        prev = ctx.inputs.get("C")
        ctx.outputs["C"] = (prev or 0) + 1 if value is None else value

    return run


def unit_size(params, md):
    return 1


class TestFigure1Chain:
    """The PTG of the paper's Figure 1: DFILL -> GEMM chain -> SORT."""

    def build(self, record, n_chains=2, chain_len=3, n_nodes=2):
        md = SimpleNamespace(n_chains=n_chains, chain_len=chain_len)
        ptg = PTG("fig1")
        ptg.add(
            TaskClass(
                name="DFILL",
                params=("L1",),
                domain=lambda md: [(L1,) for L1 in range(md.n_chains)],
                placement=lambda p, md: p[0] % n_nodes,
                run=simple_run(0.5, record, value=0),
                category=TaskCategory.DFILL,
                flows=[
                    Flow(
                        "C",
                        FlowMode.WRITE,
                        unit_size,
                        outputs=[
                            Dep("GEMM", lambda p, md: (p[0], 0), "C"),
                        ],
                    )
                ],
            )
        )
        ptg.add(
            TaskClass(
                name="GEMM",
                params=("L1", "L2"),
                domain=lambda md: [
                    (L1, L2)
                    for L1 in range(md.n_chains)
                    for L2 in range(md.chain_len)
                ],
                placement=lambda p, md: p[0] % n_nodes,
                run=simple_run(1.0, record),
                category=TaskCategory.GEMM,
                flows=[
                    Flow(
                        "C",
                        FlowMode.RW,
                        unit_size,
                        inputs=[
                            Dep(
                                "DFILL",
                                lambda p, md: (p[0],),
                                "C",
                                guard=lambda p, md: p[1] == 0,
                            ),
                            Dep(
                                "GEMM",
                                lambda p, md: (p[0], p[1] - 1),
                                "C",
                                guard=lambda p, md: p[1] != 0,
                            ),
                        ],
                        outputs=[
                            Dep(
                                "GEMM",
                                lambda p, md: (p[0], p[1] + 1),
                                "C",
                                guard=lambda p, md: p[1] < md.chain_len - 1,
                            ),
                            Dep(
                                "SORT",
                                lambda p, md: (p[0],),
                                "C",
                                guard=lambda p, md: p[1] == md.chain_len - 1,
                            ),
                        ],
                    )
                ],
            )
        )
        ptg.add(
            TaskClass(
                name="SORT",
                params=("L1",),
                domain=lambda md: [(L1,) for L1 in range(md.n_chains)],
                placement=lambda p, md: p[0] % n_nodes,
                run=simple_run(0.25, record),
                category=TaskCategory.SORT,
                flows=[
                    Flow(
                        "C",
                        FlowMode.READ,
                        unit_size,
                        inputs=[
                            Dep(
                                "GEMM",
                                lambda p, md: (p[0], md.chain_len - 1),
                                "C",
                            )
                        ],
                    )
                ],
            )
        )
        return ptg, md

    def test_instantiation_counts(self):
        ptg, md = self.build([])
        graph = ptg.instantiate(md, n_nodes=2)
        assert len(graph) == 2 + 6 + 2
        assert {t.label for t in graph.initially_ready()} == {
            "DFILL(0,)",
            "DFILL(1,)",
        }

    def test_chain_executes_in_order(self):
        record = []
        ptg, md = self.build(record, n_chains=1, chain_len=4, n_nodes=1)
        cluster = make_cluster(n_nodes=1, cores=4)
        result = ParsecRuntime(cluster).execute(ptg, md)
        labels = [label for label, _ in record]
        assert labels == [
            "DFILL(0,)",
            "GEMM(0, 0)",
            "GEMM(0, 1)",
            "GEMM(0, 2)",
            "GEMM(0, 3)",
            "SORT(0,)",
        ]
        assert result.n_tasks == 6

    def test_rw_flow_carries_accumulated_value(self):
        """The RW C flow threads one value through the whole chain."""
        seen = {}

        def sort_run(ctx):
            seen["value"] = ctx.inputs["C"]
            yield from ctx.charge(OpCost(0.0, 0.0))

        record = []
        ptg, md = self.build(record, n_chains=1, chain_len=5, n_nodes=1)
        ptg.classes["SORT"].run = sort_run
        cluster = make_cluster(n_nodes=1)
        ParsecRuntime(cluster).execute(ptg, md)
        assert seen["value"] == 5  # DFILL seeds 0, each GEMM +1

    def test_independent_chains_run_in_parallel(self):
        record = []
        ptg, md = self.build(record, n_chains=4, chain_len=3, n_nodes=1)
        cluster = make_cluster(n_nodes=1, cores=4)
        result = ParsecRuntime(cluster).execute(ptg, md)
        # 4 chains, each serially 0.5 + 3*1 + 0.25 = 3.75 plus small
        # per-task overheads: with 4 cores they all overlap
        assert result.execution_time < 2 * 3.75

    def test_trace_spans_recorded_per_category(self):
        record = []
        ptg, md = self.build(record)
        cluster = make_cluster()
        ParsecRuntime(cluster).execute(ptg, md)
        counts = cluster.trace.count_by_category()
        assert counts[TaskCategory.DFILL] == 2
        assert counts[TaskCategory.GEMM] == 6
        assert counts[TaskCategory.SORT] == 2


class TestFigure2ParallelReduction:
    """Parallel GEMMs feeding a reduction, as in the paper's Figure 2."""

    def build(self, n_gemms=4):
        md = SimpleNamespace(n_gemms=n_gemms)
        ptg = PTG("fig2")
        ptg.add(
            TaskClass(
                name="GEMM",
                params=("L2",),
                domain=lambda md: [(i,) for i in range(md.n_gemms)],
                placement=lambda p, md: 0,
                run=simple_run(1.0, None, value=1),
                category=TaskCategory.GEMM,
                flows=[
                    Flow(
                        "C",
                        FlowMode.WRITE,
                        unit_size,
                        outputs=[Dep("RED", lambda p, md: (), "X")],
                    )
                ],
            )
        )

        def red_run(ctx):
            yield from ctx.charge(OpCost(0.1, 0.0))
            ctx.outputs["X"] = sum(
                ctx.inputs["X"] if isinstance(ctx.inputs["X"], list) else [ctx.inputs["X"]]
            )

        ptg.add(
            TaskClass(
                name="RED",
                params=(),
                domain=lambda md: [()],
                placement=lambda p, md: 0,
                run=red_run,
                category=TaskCategory.REDUCE,
                flows=[
                    Flow(
                        "X",
                        FlowMode.RW,
                        unit_size,
                        inputs=[
                            Dep(
                                "GEMM",
                                lambda p, md: (i,),
                                "C",
                                guard=(lambda i: lambda p, md: i < md.n_gemms)(i),
                            )
                            for i in range(n_gemms)
                        ],
                    )
                ],
            )
        )
        return ptg, md

    def test_reduction_waits_for_all_inputs_and_sums(self):
        ptg, md = self.build(n_gemms=4)
        cluster = make_cluster(n_nodes=1, cores=4)
        runtime = ParsecRuntime(cluster)
        result = runtime.execute(ptg, md)
        red = runtime.graph.instance("RED", ())
        assert red.done
        assert result.n_tasks == 5

    def test_parallel_gemms_finish_simultaneously(self):
        ptg, md = self.build(n_gemms=4)
        cluster = make_cluster(n_nodes=1, cores=4)
        result = ParsecRuntime(cluster).execute(ptg, md)
        # all four GEMMs run concurrently -> ~1s + reduction, not ~4s
        assert result.execution_time < 2.0


class TestRemoteDataflow:
    def build(self, size_elems=1000):
        md = SimpleNamespace()
        ptg = PTG("remote")
        ptg.add(
            TaskClass(
                name="PROD",
                params=(),
                domain=lambda md: [()],
                placement=lambda p, md: 0,
                run=simple_run(0.0, None, value=42),
                flows=[
                    Flow(
                        "C",
                        FlowMode.WRITE,
                        lambda p, md: size_elems,
                        outputs=[Dep("CONS", lambda p, md: (), "C")],
                    )
                ],
            )
        )
        got = {}

        def cons_run(ctx):
            got["value"] = ctx.inputs["C"]
            got["time"] = ctx.cluster.engine.now
            yield from ctx.charge(OpCost(0.0, 0.0))

        ptg.add(
            TaskClass(
                name="CONS",
                params=(),
                domain=lambda md: [()],
                placement=lambda p, md: 1,
                run=cons_run,
                flows=[
                    Flow(
                        "C",
                        FlowMode.READ,
                        lambda p, md: size_elems,
                        inputs=[Dep("PROD", lambda p, md: (), "C")],
                    )
                ],
            )
        )
        return ptg, md, got

    def test_cross_node_transfer_delivers_data_and_costs_time(self):
        ptg, md, got = self.build(size_elems=10**6)
        cluster = make_cluster(n_nodes=2)
        result = ParsecRuntime(cluster).execute(ptg, md)
        assert got["value"] == 42
        assert result.messages_remote == 1
        assert result.bytes_remote == 8.0 * 10**6
        # 8MB over the simulated NIC takes macroscopic virtual time
        assert got["time"] > cluster.machine.wire_time(8.0 * 10**6)

    def test_local_delivery_is_free_of_transport(self):
        ptg, md, got = self.build()
        # place consumer on node 0 too
        ptg.classes["CONS"].placement = lambda p, md: 0
        cluster = make_cluster(n_nodes=2)
        result = ParsecRuntime(cluster).execute(ptg, md)
        assert result.messages_remote == 0
        assert got["value"] == 42


class TestPriorities:
    def test_higher_priority_pops_first_on_saturated_core(self):
        order = []
        md = SimpleNamespace()

        def body(ctx):
            order.append(ctx.task.params[0])
            yield from ctx.charge(OpCost(0.1, 0.0))

        ptg = PTG("prio")
        ptg.add(
            TaskClass(
                name="T",
                params=("i",),
                domain=lambda md: [(i,) for i in range(6)],
                placement=lambda p, md: 0,
                run=body,
                priority=lambda p, md: p[0],  # later tasks more important
                flows=[Flow("C", FlowMode.WRITE, unit_size)],
            )
        )
        cluster = make_cluster(n_nodes=1, cores=1)
        ParsecRuntime(cluster).execute(ptg, md)
        # the first pop can race the seeding order, but the rest must be
        # in strictly decreasing priority
        assert order[1:] == sorted(order[1:], reverse=True)

    def test_no_priority_is_fifo(self):
        order = []
        md = SimpleNamespace()

        def body(ctx):
            order.append(ctx.task.params[0])
            yield from ctx.charge(OpCost(0.1, 0.0))

        ptg = PTG("fifo")
        ptg.add(
            TaskClass(
                name="T",
                params=("i",),
                domain=lambda md: [(i,) for i in range(6)],
                placement=lambda p, md: 0,
                run=body,
                flows=[Flow("C", FlowMode.WRITE, unit_size)],
            )
        )
        cluster = make_cluster(n_nodes=1, cores=1)
        ParsecRuntime(cluster).execute(ptg, md)
        assert order == [0, 1, 2, 3, 4, 5]


class TestValidation:
    def test_missing_consumer_rejected(self):
        md = SimpleNamespace()
        ptg = PTG("bad")
        ptg.add(
            TaskClass(
                name="A",
                params=(),
                domain=lambda md: [()],
                placement=lambda p, md: 0,
                run=simple_run(),
                flows=[
                    Flow(
                        "C",
                        FlowMode.WRITE,
                        unit_size,
                        outputs=[Dep("GHOST", lambda p, md: (), "C")],
                    )
                ],
            )
        )
        with pytest.raises(DataflowError, match="missing"):
            ptg.instantiate(md, n_nodes=1)

    def test_unfed_input_rejected(self):
        md = SimpleNamespace()
        ptg = PTG("starved")
        ptg.add(
            TaskClass(
                name="B",
                params=(),
                domain=lambda md: [()],
                placement=lambda p, md: 0,
                run=simple_run(),
                flows=[
                    Flow(
                        "C",
                        FlowMode.READ,
                        unit_size,
                        inputs=[Dep("B", lambda p, md: (99,), "C")],
                    )
                ],
            )
        )
        with pytest.raises(DataflowError):
            ptg.instantiate(md, n_nodes=1)

    def test_duplicate_class_rejected(self):
        ptg = PTG("dup")
        cls = TaskClass(
            name="A",
            params=(),
            domain=lambda md: [()],
            placement=lambda p, md: 0,
            run=simple_run(),
            flows=[],
        )
        ptg.add(cls)
        with pytest.raises(DataflowError):
            ptg.add(cls)

    def test_invalid_placement_rejected(self):
        md = SimpleNamespace()
        ptg = PTG("place")
        ptg.add(
            TaskClass(
                name="A",
                params=(),
                domain=lambda md: [()],
                placement=lambda p, md: 7,
                run=simple_run(),
                flows=[],
            )
        )
        with pytest.raises(DataflowError, match="invalid node"):
            ptg.instantiate(md, n_nodes=2)

    def test_launch_twice_rejected(self):
        md = SimpleNamespace()
        ptg = PTG("twice")
        ptg.add(
            TaskClass(
                name="A",
                params=(),
                domain=lambda md: [()],
                placement=lambda p, md: 0,
                run=simple_run(),
                flows=[],
            )
        )
        cluster = make_cluster(n_nodes=1)
        runtime = ParsecRuntime(cluster)
        runtime.launch(ptg, md)
        with pytest.raises(DataflowError):
            runtime.launch(ptg, md)

    def test_empty_graph_completes_immediately(self):
        md = SimpleNamespace()
        ptg = PTG("empty")
        ptg.add(
            TaskClass(
                name="A",
                params=(),
                domain=lambda md: [],
                placement=lambda p, md: 0,
                run=simple_run(),
                flows=[],
            )
        )
        cluster = make_cluster(n_nodes=1)
        result = ParsecRuntime(cluster).execute(ptg, md)
        assert result.n_tasks == 0
