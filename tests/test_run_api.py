"""Tests of the unified ``repro.run`` facade and the RunResult protocol."""

import json
import warnings
from pathlib import Path

import pytest

import repro
from repro.core.api import RunConfig, run
from repro.experiments.calibration import make_cluster, make_workload
from repro.obs import RunReport, RunResult
from repro.util.errors import ConfigurationError

TINY = RunConfig(n_nodes=4, cores_per_node=2, seed=7)


class TestFacadeDispatch:
    def test_parsec_from_scale_string(self):
        result = run("tiny", runtime="parsec", variant="v5", config=TINY)
        assert isinstance(result, RunResult)
        assert result.runtime_name == "parsec"
        assert result.variant == "v5"
        assert result.n_tasks > 0
        assert result.execution_time > 0

    def test_legacy_and_original_are_synonyms(self):
        a = run("tiny", runtime="legacy", config=TINY)
        b = run("tiny", runtime="original", config=TINY)
        assert a.runtime_name == b.runtime_name == "legacy"
        assert a.execution_time == b.execution_time

    def test_dtd(self):
        result = run("tiny", runtime="dtd", config=TINY)
        assert result.runtime_name == "dtd"
        assert result.n_tasks > 0

    def test_variant_name_as_runtime_shorthand(self):
        result = run("tiny", runtime="v3", config=TINY)
        assert result.runtime_name == "parsec"
        assert result.variant == "v3"

    def test_prebuilt_workload_uses_its_cluster(self):
        cluster = make_cluster(2, n_nodes=4, metrics_enabled=True)
        workload = make_workload(cluster, scale="tiny")
        result = run(workload, variant=repro.V4)
        assert result.variant == "v4"
        assert result.metrics is not None

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ConfigurationError):
            run("tiny", runtime="mpi", config=TINY)


class TestRunResultProtocol:
    def test_uniform_surface_across_runtimes(self):
        for runtime in ("legacy", "parsec", "dtd"):
            result = run("tiny", runtime=runtime, config=TINY)
            assert result.execution_time > 0
            assert result.n_tasks > 0
            assert isinstance(result.recovery_counters(), dict)
            assert result.runtime_name in result.summary()
            assert result.output is not None

    def test_recovery_counters_zero_without_faults(self):
        result = run("tiny", runtime="parsec", config=TINY)
        assert set(result.recovery_counters()) == {
            "task_retries",
            "retransmits",
            "tasks_recomputed",
            "tasks_reassigned",
            "nodes_crashed",
            "recovery_overhead_s",
        }
        assert all(v == 0 for v in result.recovery_counters().values())

    def test_report_attached_when_metrics_enabled(self):
        result = run("tiny", runtime="parsec", config=TINY)
        assert isinstance(result.report, RunReport)
        assert result.report.runtime == "parsec"
        assert result.report.phases["execution"]["virtual_s"] > 0
        assert result.report.phases["inspection"]["count"] == 1
        assert result.report.phases["ptg_build"]["count"] == 1
        assert result.report.phases["validation"]["count"] == 1
        assert result.report.metrics["counters"]
        assert result.report.recovery["task_retries"] == 0

    def test_no_report_when_metrics_disabled(self):
        config = RunConfig(n_nodes=4, cores_per_node=2, metrics=False)
        result = run("tiny", runtime="parsec", config=config)
        assert result.report is None
        assert result.metrics is None


class TestDeterminism:
    def test_identical_seeds_identical_reports(self):
        a = run("tiny", runtime="parsec", config=TINY)
        b = run("tiny", runtime="parsec", config=TINY)
        assert a.report.to_json_line() == b.report.to_json_line()

    def test_metrics_do_not_change_virtual_time(self):
        times = {}
        for enabled in (False, True):
            config = RunConfig(n_nodes=4, cores_per_node=2, metrics=enabled)
            times[enabled] = run("tiny", runtime="parsec", config=config).execution_time
        assert times[False] == times[True]

    def test_legacy_metrics_do_not_change_virtual_time(self):
        times = {}
        for enabled in (False, True):
            config = RunConfig(n_nodes=4, cores_per_node=2, metrics=enabled)
            times[enabled] = run("tiny", runtime="legacy", config=config).execution_time
        assert times[False] == times[True]


class TestGoldenDigests:
    """Bitwise virtual-time + energy digests: workload x runtime.

    The t2_7 digests were captured *before* the DES fast path
    (immediate lane, try_get workers, inspection cache) landed and
    survived the workload-SDK refactor bit for bit; the ccsd and rbgs
    digests pin the two new workloads through every runtime the same
    way. Regenerate with ``tests/data/regen_golden_digests.py`` only
    for an intentional behavioural change.
    """

    GOLDEN = Path(__file__).parent / "data" / "golden_tiny_digests.json"
    WORKLOADS = ["t2_7", "ccsd", "rbgs"]
    RUNTIMES = ["legacy", "v1", "v2", "v3", "v4", "v5", "dtd"]

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(self.GOLDEN.read_text())

    def test_covers_every_workload_and_runtime(self, golden):
        assert sorted(golden) == sorted(self.WORKLOADS)
        for workload in self.WORKLOADS:
            assert sorted(golden[workload]) == sorted(self.RUNTIMES)

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("rt", RUNTIMES)
    def test_digest_bitwise_stable(self, golden, workload, rt):
        from repro.tce.reference import correlation_energy

        config = RunConfig(n_nodes=4, cores_per_node=2, seed=7, metrics=False)
        result = run(f"{workload}:tiny", runtime=rt, config=config)
        assert result.execution_time.hex() == golden[workload][rt]["execution_time"]
        energy = correlation_energy(result.output.flat_values())
        assert energy.hex() == golden[workload][rt]["energy"]


class TestInspectionCache:
    def test_cached_and_uncached_runs_identical(self):
        from repro.core.api import InspectionCache

        cache = InspectionCache()
        config = RunConfig(
            n_nodes=4, cores_per_node=2, metrics=False, inspection_cache=cache
        )
        plain = RunConfig(n_nodes=4, cores_per_node=2, metrics=False)
        for rt in ("v2", "v5"):
            warm = run("tiny", runtime=rt, config=config)  # miss, fills cache
            cached = run("tiny", runtime=rt, config=config)  # hit
            reference = run("tiny", runtime=rt, config=plain)
            assert warm.execution_time == reference.execution_time
            assert cached.execution_time == reference.execution_time
        assert cache.hits >= 2
        assert cache.misses >= 1

    def test_distinct_node_counts_do_not_collide(self):
        from repro.core.api import InspectionCache

        cache = InspectionCache()
        times = {}
        for n_nodes in (2, 4):
            config = RunConfig(
                n_nodes=n_nodes,
                cores_per_node=2,
                metrics=False,
                inspection_cache=cache,
            )
            times[n_nodes] = run("tiny", runtime="v5", config=config).execution_time
        assert len(cache) == 2  # one entry per node count
        assert times[2] != times[4]


class TestDeprecatedShim:
    def test_bare_scale_warns_and_still_works(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run("tiny", runtime="v5", config=TINY)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert result.execution_time > 0
        assert result.variant == "v5"
        assert result.report.scale == "tiny"

    def test_bare_scale_matches_explicit_token(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = run("tiny", runtime="v5", config=TINY)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            explicit = run("t2_7:tiny", runtime="v5", config=TINY)
        assert not any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert shim.execution_time == explicit.execution_time
        assert (shim.output.flat_values() == explicit.output.flat_values()).all()

    def test_run_over_parsec_is_gone(self):
        assert not hasattr(repro, "run_over_parsec")
        assert callable(repro.run_ptg)
