"""Tests for the ``python -m repro`` command-line driver."""

import json

import pytest

import repro
from repro.__main__ import EXIT_CHECK_FAILED, EXIT_OK, main
from repro.obs import RUN_REPORT_SCHEMA_VERSION, read_jsonl


class TestCli:
    def test_info(self, capsys):
        assert main(["info", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "icsd_t2_7" in out
        assert "472 basis functions" in out

    def test_equivalence_tiny(self, capsys):
        assert main(["equivalence", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "agreement" in out
        assert "reference" in out

    def test_traces_tiny(self, capsys):
        assert main(["traces", "--scale", "tiny", "--width", "40", "--rows", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out and "Figure 11" in out and "Figure 12/13" in out
        assert "legend:" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--scale", "galactic"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestReportCommand:
    def test_report_tiny_emits_both_runtimes(self, capsys, tmp_path):
        out = tmp_path / "runs.jsonl"
        assert main(["report", "--scale", "tiny", "--out", str(out)]) == EXIT_OK
        reports = read_jsonl(out)
        assert [r.runtime for r in reports] == ["legacy", "parsec"]
        for report in reports:
            assert report.schema == RUN_REPORT_SCHEMA_VERSION
            assert report.scale == "tiny"
            assert report.n_tasks > 0
            assert report.metrics["counters"], f"no counters from {report.runtime}"
            assert report.phases["execution"]["virtual_s"] > 0
            assert report.trace_stats["n_events"] > 0
        rendered = capsys.readouterr().out
        assert "Phases" in rendered and "Counters" in rendered

    def test_report_without_out_prints_jsonl(self, capsys):
        assert main(["report", "--scale", "tiny", "--runtime", "v4"]) == EXIT_OK
        lines = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed["runtime"] == "parsec"
        assert parsed["variant"] == "v4"

    def test_report_deterministic_across_invocations(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(["report", "--scale", "tiny", "--out", str(a)]) == EXIT_OK
        assert main(["report", "--scale", "tiny", "--out", str(b)]) == EXIT_OK
        assert a.read_text() == b.read_text()


class TestPerfCommand:
    def test_perf_writes_baseline_and_passes_against_itself(self, capsys, tmp_path):
        out = tmp_path / "BENCH_fig9_tiny.json"
        assert (
            main(["perf", "--scale", "tiny", "--out", str(out), "--baseline", str(out)])
            == EXIT_OK
        )
        data = json.loads(out.read_text())
        assert data["schema"] == 1
        assert data["scale"] == "tiny"
        assert set(data["times"]) == {"original", "v1", "v2", "v3", "v4", "v5"}
        # comparing the run against the baseline it just wrote: no diff
        assert "no regressions" in capsys.readouterr().out

    def test_perf_fails_on_injected_regression(self, capsys, tmp_path):
        out = tmp_path / "BENCH_new.json"
        doctored = tmp_path / "BENCH_doctored.json"
        assert main(["perf", "--scale", "tiny", "--out", str(out)]) in (
            EXIT_OK,
        )  # first run only writes
        data = json.loads(out.read_text())
        data["times"] = {
            code: {cores: t * 0.5 for cores, t in series.items()}
            for code, series in data["times"].items()
        }
        doctored.write_text(json.dumps(data))
        assert (
            main(
                [
                    "perf",
                    "--scale",
                    "tiny",
                    "--out",
                    str(out),
                    "--baseline",
                    str(doctored),
                ]
            )
            == EXIT_CHECK_FAILED
        )
        assert "REGRESSION" in capsys.readouterr().out

    def test_perf_threshold_is_configurable(self, tmp_path):
        out = tmp_path / "BENCH_new.json"
        main(["perf", "--scale", "tiny", "--out", str(out)])
        # an absurdly generous threshold forgives even a 2x slowdown
        doctored = tmp_path / "BENCH_doctored.json"
        data = json.loads(out.read_text())
        data["times"] = {
            code: {cores: t * 0.5 for cores, t in series.items()}
            for code, series in data["times"].items()
        }
        doctored.write_text(json.dumps(data))
        assert (
            main(
                [
                    "perf",
                    "--scale",
                    "tiny",
                    "--out",
                    str(out),
                    "--baseline",
                    str(doctored),
                    "--threshold",
                    "2.0",
                ]
            )
            == EXIT_OK
        )

    def test_committed_tiny_baseline_matches_fresh_sweep(self):
        """The checked-in BENCH file reproduces exactly (virtual times)."""
        from repro.experiments.perf import PerfBaseline, baseline_path, run_perf

        committed = baseline_path("tiny")
        assert committed.exists(), "benchmarks/baselines/BENCH_fig9_tiny.json missing"
        old = PerfBaseline.read(committed)
        new = run_perf(scale="tiny")
        assert new.times == old.times


class TestInterrupts:
    def test_ctrl_c_exits_130(self, monkeypatch, capsys):
        """KeyboardInterrupt anywhere in a subcommand maps to the shell
        convention 128 + SIGINT instead of a traceback."""
        import repro.__main__ as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "cmd_info", interrupted)
        assert cli.main(["info"]) == cli.EXIT_INTERRUPTED == 130
        assert "interrupted" in capsys.readouterr().err

    def test_exit_codes_are_distinct(self):
        from repro.__main__ import (
            EXIT_CHECK_FAILED,
            EXIT_INTERRUPTED,
            EXIT_OK,
            EXIT_USAGE,
        )

        codes = {EXIT_OK, EXIT_CHECK_FAILED, EXIT_USAGE, EXIT_INTERRUPTED}
        assert codes == {0, 1, 2, 130}


class TestServiceCli:
    def test_parse_params_json_and_strings(self):
        from repro.__main__ import _parse_params

        params = _parse_params(
            ["cores=4", "stealing=true", 'codes=["v5","v4"]', "scale=tiny"]
        )
        assert params == {
            "cores": 4,
            "stealing": True,
            "codes": ["v5", "v4"],
            "scale": "tiny",
        }

    def test_parse_params_rejects_bare_words(self):
        from repro.__main__ import _parse_params

        with pytest.raises(SystemExit):
            _parse_params(["cores"])

    def test_submit_against_dead_daemon_fails_cleanly(self, capsys):
        # nothing listens on this port: a clean error, not a traceback
        assert (
            main(["submit", "point", "--port", "1", "--param", "cores=1"])
            == EXIT_CHECK_FAILED
        )
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_status_against_dead_daemon_fails_cleanly(self, capsys):
        assert main(["status", "--port", "1"]) == EXIT_CHECK_FAILED
        assert "error" in capsys.readouterr().err
