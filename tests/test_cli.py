"""Tests for the ``python -m repro`` command-line driver."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "icsd_t2_7" in out
        assert "472 basis functions" in out

    def test_equivalence_tiny(self, capsys):
        assert main(["equivalence", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "agreement" in out
        assert "reference" in out

    def test_traces_tiny(self, capsys):
        assert main(["traces", "--scale", "tiny", "--width", "40", "--rows", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out and "Figure 11" in out and "Figure 12/13" in out
        assert "legend:" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--scale", "galactic"])
