"""Unit tests for FIFO resources and the processor-sharing bandwidth model."""

import pytest

from repro.sim.engine import Engine
from repro.sim.resources import BandwidthResource, Resource
from repro.util.errors import SimulationError


@pytest.fixture
def engine():
    return Engine()


class TestResource:
    def test_uncontended_acquire_is_immediate(self, engine):
        resource = Resource(engine, capacity=1)
        event = resource.acquire()
        assert event.triggered
        assert resource.in_use == 1

    def test_release_without_acquire_rejected(self, engine):
        resource = Resource(engine, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_capacity_below_one_rejected(self, engine):
        with pytest.raises(SimulationError):
            Resource(engine, capacity=0)

    def test_fifo_granting_order(self, engine):
        resource = Resource(engine, capacity=1)
        order = []

        def worker(tag, hold):
            yield resource.acquire()
            order.append((tag, engine.now))
            yield engine.timeout(hold)
            resource.release()

        for tag in range(3):
            engine.process(worker(tag, 2.0))
        engine.run()
        assert order == [(0, 0.0), (1, 2.0), (2, 4.0)]

    def test_capacity_two_allows_two_holders(self, engine):
        resource = Resource(engine, capacity=2)
        starts = []

        def worker(tag):
            yield resource.acquire()
            starts.append((tag, engine.now))
            yield engine.timeout(5.0)
            resource.release()

        for tag in range(3):
            engine.process(worker(tag))
        engine.run()
        assert starts == [(0, 0.0), (1, 0.0), (2, 5.0)]

    def test_use_helper_holds_for_duration(self, engine):
        resource = Resource(engine, capacity=1)
        spans = []

        def worker(tag):
            start = engine.now
            yield from resource.use(3.0)
            spans.append((tag, start, engine.now))

        engine.process(worker("a"))
        engine.process(worker("b"))
        engine.run()
        assert spans == [("a", 0.0, 3.0), ("b", 0.0, 6.0)]

    def test_wait_time_statistics(self, engine):
        resource = Resource(engine, capacity=1)

        def holder():
            yield from resource.use(4.0)

        def waiter():
            yield engine.timeout(1.0)
            yield from resource.use(1.0)

        engine.process(holder())
        engine.process(waiter())
        engine.run()
        # waiter queued at t=1, granted at t=4 -> waited 3
        assert resource.total_wait_time == pytest.approx(3.0)
        assert resource.total_acquisitions == 2

    def test_queue_length_reflects_waiters(self, engine):
        resource = Resource(engine, capacity=1)
        resource.acquire()
        resource.acquire()
        resource.acquire()
        assert resource.queue_length == 2

    def test_release_skips_abandoned_waiter(self, engine):
        """Regression: a grant must never go to a dead waiter.

        Pre-fix, release() granted the slot to whichever waiter was
        oldest — including one whose process had been killed. The
        abandoned event never resumed anybody, so the slot leaked and
        every later waiter deadlocked.
        """
        resource = Resource(engine, capacity=1)
        resource.acquire()  # holder
        dead = resource.acquire()  # will be killed while parked
        live = resource.acquire()
        dead.abandon()
        resource.release()
        assert not dead.triggered
        assert live.triggered  # the live waiter got the slot...
        assert resource.in_use == 1  # ...and the slot did not leak
        resource.release()
        assert resource.in_use == 0

    def test_release_skips_already_triggered_waiter(self, engine):
        """A waiter event that somehow fired early is not granted twice."""
        resource = Resource(engine, capacity=1)
        resource.acquire()
        raced = resource.acquire()
        live = resource.acquire()
        raced.succeed()  # fired outside the grant path
        resource.release()
        assert live.triggered
        assert resource.in_use == 1

    def test_release_with_only_dead_waiters_frees_the_slot(self, engine):
        resource = Resource(engine, capacity=1)
        resource.acquire()
        resource.acquire().abandon()
        resource.release()
        assert resource.in_use == 0
        assert resource.acquire().triggered  # fresh acquire is immediate

    def test_abandon_waiters_counts_live_only(self, engine):
        resource = Resource(engine, capacity=1)
        resource.acquire()
        first = resource.acquire()
        resource.acquire()
        first.abandon()
        assert resource.abandon_waiters() == 1
        assert resource.queue_length == 0
        resource.release()
        assert resource.in_use == 0  # no waiter left to grant to

    def test_use_releases_slot_when_parked_grantee_dies(self, engine):
        """Crash-safety of use(): a waiter torn down while parked on the
        grant abandons it, so release() skips the corpse."""
        resource = Resource(engine, capacity=1)
        progressed = []

        def holder():
            yield from resource.use(2.0)

        def doomed():
            yield from resource.use(1.0)
            progressed.append("doomed")  # must never run

        engine.process(holder())
        victim = engine.process(doomed())
        engine.run(until=1.0)
        assert resource.queue_length == 1
        victim._generator.close()  # kill the parked process
        engine.run()
        assert progressed == []
        assert resource.in_use == 0

    def test_use_releases_slot_when_killed_between_grant_and_resume(self, engine):
        """The grant fired but the grantee died before resuming: the
        use() teardown path must give the slot back."""
        resource = Resource(engine, capacity=1)
        body = resource.use(3.0)
        first = next(body)  # uncontended: parks on the hold timer
        assert resource.in_use == 1
        body.close()  # teardown mid-hold
        assert resource.in_use == 0
        assert first is not None


class TestBandwidthResource:
    def test_single_job_duration(self, engine):
        bandwidth = BandwidthResource(engine, capacity=10.0)
        done = []

        def worker():
            yield bandwidth.transfer(50.0)
            done.append(engine.now)

        engine.process(worker())
        engine.run()
        assert done == [pytest.approx(5.0)]

    def test_two_equal_jobs_share_equally(self, engine):
        bandwidth = BandwidthResource(engine, capacity=10.0)
        done = []

        def worker(tag):
            yield bandwidth.transfer(50.0)
            done.append((tag, engine.now))

        engine.process(worker("a"))
        engine.process(worker("b"))
        engine.run()
        # both take 100/10 = 10s at half rate each
        assert done[0][1] == pytest.approx(10.0)
        assert done[1][1] == pytest.approx(10.0)

    def test_staggered_arrival_processor_sharing_math(self, engine):
        # job1: 100 units at t=0; job2: 50 units at t=2; capacity 10.
        # t in [0,2): job1 alone at rate 10 -> 80 left at t=2.
        # t in [2,12): both at rate 5; job2 finishes at t=12 (50/5).
        # t in [12,15): job1 alone, 30 left at rate 10 -> t=15.
        bandwidth = BandwidthResource(engine, capacity=10.0)
        done = {}

        def job1():
            yield bandwidth.transfer(100.0)
            done["job1"] = engine.now

        def job2():
            yield engine.timeout(2.0)
            yield bandwidth.transfer(50.0)
            done["job2"] = engine.now

        engine.process(job1())
        engine.process(job2())
        engine.run()
        assert done["job2"] == pytest.approx(12.0)
        assert done["job1"] == pytest.approx(15.0)

    def test_zero_transfer_completes_immediately(self, engine):
        bandwidth = BandwidthResource(engine, capacity=1.0)
        event = bandwidth.transfer(0.0)
        assert event.triggered

    def test_negative_transfer_rejected(self, engine):
        bandwidth = BandwidthResource(engine, capacity=1.0)
        with pytest.raises(SimulationError):
            bandwidth.transfer(-1.0)

    def test_many_jobs_slow_each_other_down(self, engine):
        bandwidth = BandwidthResource(engine, capacity=100.0)
        finish = []

        def worker():
            yield bandwidth.transfer(100.0)
            finish.append(engine.now)

        for _ in range(8):
            engine.process(worker())
        engine.run()
        # 8 jobs of 100 units on capacity 100 -> all finish at t=8
        assert all(t == pytest.approx(8.0) for t in finish)

    def test_utilization_accounting(self, engine):
        bandwidth = BandwidthResource(engine, capacity=10.0)

        def worker():
            yield bandwidth.transfer(20.0)  # busy [0, 2]
            yield engine.timeout(2.0)       # idle [2, 4]
            yield bandwidth.transfer(20.0)  # busy [4, 6]

        engine.process(worker())
        engine.run()
        assert engine.now == pytest.approx(6.0)
        assert bandwidth.utilization() == pytest.approx(4.0 / 6.0)
        assert bandwidth.total_work == pytest.approx(40.0)

    def test_tiny_residual_does_not_stall_the_clock(self, engine):
        """Regression: a residual whose completion delay underflows float
        time resolution (now + delay == now) must finish, not loop."""
        bandwidth = BandwidthResource(engine, capacity=5.0e10)
        done = []

        def worker(size, delay):
            yield engine.timeout(delay)
            yield bandwidth.transfer(size)
            done.append(engine.now)

        # staggered small transfers at realistic byte/bandwidth scales,
        # which is where the drift was observed
        for i in range(50):
            engine.process(worker(680.0 * (i + 1), 0.0004 * i / 7.0))
        engine.run()
        assert len(done) == 50

    def test_completion_order_matches_remaining_work(self, engine):
        bandwidth = BandwidthResource(engine, capacity=10.0)
        order = []

        def worker(tag, size):
            yield bandwidth.transfer(size)
            order.append(tag)

        engine.process(worker("small", 10.0))
        engine.process(worker("large", 100.0))
        engine.run()
        assert order == ["small", "large"]
