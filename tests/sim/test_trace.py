"""Tests of the runtime-agnostic TraceRecorder."""

import pytest

from repro.sim.trace import TaskCategory, TraceRecorder


def populated() -> TraceRecorder:
    trace = TraceRecorder()
    trace.record(0, 0, TaskCategory.GEMM, "GEMM#1", 0.0, 1.0)
    trace.record(0, 1, TaskCategory.COMM, "GET#1", 0.5, 2.0, meta={"bytes": 4096})
    trace.record(1, 0, TaskCategory.GEMM, "GEMM#2", 1.0, 3.0)
    trace.record(1, 0, TaskCategory.WRITE, "WRITE#1", 3.0, 3.5)
    return trace


class TestRoundTrip:
    def test_json_round_trip_preserves_events_and_meta(self):
        trace = populated()
        back = TraceRecorder.from_json(trace.to_json())
        assert back.events == trace.events
        assert back.events[1].meta == {"bytes": 4096}

    def test_round_trip_preserves_derived_stats(self):
        trace = populated()
        back = TraceRecorder.from_json(trace.to_json())
        assert back.makespan() == trace.makespan()
        assert back.total_time_by_category() == trace.total_time_by_category()


class TestDisabled:
    def test_disabled_recorder_is_a_no_op(self):
        trace = TraceRecorder(enabled=False)
        trace.record(0, 0, TaskCategory.GEMM, "GEMM#1", 0.0, 1.0)
        assert len(trace) == 0
        assert trace.events == []
        assert trace.makespan() == 0.0

    def test_negative_span_rejected_when_enabled(self):
        trace = TraceRecorder()
        with pytest.raises(ValueError):
            trace.record(0, 0, TaskCategory.GEMM, "bad", 2.0, 1.0)


class TestFiltered:
    def test_filter_by_category(self):
        gemms = populated().filtered(category=TaskCategory.GEMM)
        assert [e.label for e in gemms] == ["GEMM#1", "GEMM#2"]

    def test_filter_by_node(self):
        assert len(populated().filtered(node=1)) == 2

    def test_combined_criteria(self):
        trace = populated()
        hits = trace.filtered(
            category=TaskCategory.GEMM,
            node=1,
            predicate=lambda e: e.duration > 1.0,
        )
        assert [e.label for e in hits] == ["GEMM#2"]
        assert trace.filtered(
            category=TaskCategory.COMM, node=1
        ) == []  # COMM only happened on node 0
