"""Unit tests for the BatchedTimeline array-backed event store.

The load-bearing property is the merge rule of DESIGN.md §6: timeline
rows, heap entries, and immediate-lane entries all draw from the one
shared sequence counter and drain in global ``(time, seq)`` order, so a
producer converted to the timeline fires in *exactly* the position its
heap-based ``Timeout``/``ScheduledCall`` equivalent would have. The
equivalence tests here run the same scenario both ways and assert the
observed orderings and clock readings are identical.
"""

import pytest

from repro.sim.engine import Engine
from repro.sim.timeline import (
    DIRECT,
    KIND_COMM,
    KIND_TASK,
    PERSISTENT,
    TimelineTimer,
)
from repro.util.errors import SimulationError


@pytest.fixture
def engine():
    return Engine()


# ----------------------------------------------------------------------
# merge equivalence against the plain heapq path
# ----------------------------------------------------------------------
class TestMergeEquivalence:
    """Identical scenarios through heapq Timeouts vs timeline timers."""

    def _run_heap(self, delays):
        """Reference: every wait is a plain heap-scheduled Timeout."""
        engine = Engine()
        order = []

        def proc(tag, waits):
            for i, d in enumerate(waits):
                yield engine.timeout(d)
                order.append((tag, i, engine.now))

        for tag, waits in delays.items():
            engine.process(proc(tag, waits), name=tag)
        end = engine.run()
        return order, end

    def _run_timeline(self, delays):
        """Same scenario, every wait through a PERSISTENT timeline timer."""
        engine = Engine()
        order = []

        def proc(tag, waits):
            timer = engine.timeline.timer(KIND_TASK)
            for i, d in enumerate(waits):
                yield timer.after(d)
                order.append((tag, i, engine.now))

        for tag, waits in delays.items():
            engine.process(proc(tag, waits), name=tag)
        end = engine.run()
        return order, end

    def test_zero_delay_merge_matches_heap(self):
        # all events at t=0: ordering is decided purely by seq draws
        delays = {"a": [0.0, 0.0, 0.0], "b": [0.0, 0.0], "c": [0.0]}
        assert self._run_heap(delays) == self._run_timeline(delays)

    def test_nonzero_delay_merge_matches_heap(self):
        delays = {
            "a": [0.5, 0.25, 0.25],
            "b": [0.25, 0.5, 0.25],
            "c": [1.0],
        }
        assert self._run_heap(delays) == self._run_timeline(delays)

    def test_mixed_zero_and_nonzero_ties_match_heap(self):
        # deliberate (time, seq) ties: a and b collide at t=0.25 and 0.5
        delays = {
            "a": [0.25, 0.25, 0.0],
            "b": [0.25, 0.0, 0.25],
        }
        assert self._run_heap(delays) == self._run_timeline(delays)

    def test_timeline_interleaves_with_live_heap_events(self):
        """A timeline row between two heap Timeouts fires in between."""
        engine = Engine()
        order = []
        engine.schedule(1.0, order.append, "heap@1")
        slot = engine.timeline.open(
            # PERSISTENT resumes are lane hops carrying None, so the
            # parked continuation takes one argument
            KIND_TASK,
            callback=lambda _=None: order.append("timeline@2"),
        )
        engine.timeline.arm(slot, 2.0)
        engine.schedule(3.0, order.append, "heap@3")
        engine.run()
        # PERSISTENT fires hop through the lane but the clock does not
        # advance past pending heap entries, so order is by arm time
        assert order == ["heap@1", "timeline@2", "heap@3"]

    def test_direct_mode_matches_schedule(self):
        """DIRECT rows fire like ScheduledCalls: no extra seq, in place."""

        def scenario(use_timeline):
            engine = Engine()
            order = []
            if use_timeline:
                kind = engine.timeline.register_kind("test-direct", DIRECT)
                slot = engine.timeline.open(
                    kind, callback=lambda: order.append(("d", engine.now))
                )
                engine.timeline.arm(slot, 1.0)
            else:
                engine.schedule(1.0, lambda: order.append(("d", engine.now)))
            engine.schedule(1.0, lambda: order.append(("after", engine.now)))
            engine.run()
            return order

        assert scenario(False) == scenario(True)


# ----------------------------------------------------------------------
# channel lifecycle
# ----------------------------------------------------------------------
class TestChannels:
    def test_rearm_while_armed_is_rejected(self, engine):
        timer = engine.timeline.timer(KIND_TASK)
        timer.after(1.0)
        with pytest.raises(SimulationError, match="re-armed while armed"):
            timer.after(1.0)

    def test_negative_delay_rejected(self, engine):
        timer = engine.timeline.timer(KIND_TASK)
        with pytest.raises(SimulationError, match="negative delay"):
            timer.after(-0.5)

    def test_disarm_cancels_pending_row(self, engine):
        fired = []
        slot = engine.timeline.open(
            KIND_TASK, callback=lambda _=None: fired.append(1)
        )
        engine.timeline.arm(slot, 1.0)
        engine.timeline.disarm(slot)
        engine.run()
        assert fired == []
        assert engine.timeline.stale_dropped == 1

    def test_rearm_replaces_pending_row(self, engine):
        times = []
        slot = engine.timeline.open(
            KIND_TASK, callback=lambda _=None: times.append(engine.now)
        )
        engine.timeline.arm(slot, 5.0)
        engine.timeline.rearm(slot, 1.0)
        engine.run()
        assert times == [1.0]

    def test_close_recycles_the_slot(self, engine):
        timeline = engine.timeline
        timer = timeline.timer(KIND_TASK)
        first_slot = timer.slot
        timer.after(1.0)
        timer.close()  # armed row goes stale, slot freed
        again = timeline.timer(KIND_COMM)
        assert again.slot == first_slot
        assert timeline.channels == 1
        engine.run()
        assert timeline.fired_total == 0

    def test_timer_yields_resume_with_none(self, engine):
        """PERSISTENT resume carries None, like a default Timeout."""
        seen = []

        def proc():
            timer = engine.timeline.timer(KIND_TASK)
            value = yield timer.after(0.5)
            seen.append(value)

        engine.process(proc())
        engine.run()
        assert seen == [None]

    def test_arm_batch_matches_sequential_arms(self):
        """One vectorized arm_batch drains identically to an arm() loop."""

        def scenario(batched):
            engine = Engine()
            fired = []
            slots = [
                engine.timeline.open(
                    KIND_TASK,
                    callback=lambda _=None, i=i: fired.append((i, engine.now)),
                )
                for i in range(6)
            ]
            delays = [0.3, 0.1, 0.2, 0.1, 0.3, 0.2]
            if batched:
                engine.timeline.arm_batch(slots, delays)
            else:
                for slot, delay in zip(slots, delays):
                    engine.timeline.arm(slot, delay)
            engine.run()
            return fired

        assert scenario(False) == scenario(True)

    def test_counts_by_kind_reports_live_rows(self, engine):
        timeline = engine.timeline
        a = timeline.timer(KIND_TASK)
        b = timeline.timer(KIND_COMM)
        a.after(1.0)
        b.after(2.0)
        timeline.disarm(b.slot)
        assert timeline.counts_by_kind() == {"task": 1}

    def test_persistent_is_default_mode(self, engine):
        kind = engine.timeline.register_kind("extra")
        assert engine.timeline._kind_modes[kind] == PERSISTENT

    def test_timer_aliases_survive_compaction(self, engine):
        """Cached heap/column aliases stay valid across _compact()."""
        timeline = engine.timeline
        timer = timeline.timer(KIND_TASK)
        assert isinstance(timer, TimelineTimer)
        churn = [timeline.timer(KIND_TASK) for _ in range(80)]
        for t in churn:
            t.after(5.0)
        for t in churn:
            timeline.disarm(t.slot)  # 80 stale rows force a compaction
        assert timeline.pending < 80
        fired = []
        timeline._chan_cb[timer.slot] = lambda _=None: fired.append(engine.now)
        timer.after(1.0)
        engine.run()
        assert fired == [1.0]
