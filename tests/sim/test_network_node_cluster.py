"""Unit tests for the interconnect, node, cost model, and cluster assembly."""

import pytest

from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.cost import MachineModel, OpCost
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.trace import TaskCategory, TraceRecorder
from repro.util.errors import ConfigurationError, SimulationError


def make_machine(**overrides):
    """A round-number machine so transfer arithmetic is easy to verify."""
    base = dict(
        gemm_gflops=1.0,
        mem_bw_bytes_per_s=100.0,
        nic_bw_bytes_per_s=10.0,
        net_latency_s=1.0,
    )
    base.update(overrides)
    return MachineModel(**base)


def make_pair(machine=None):
    engine = Engine()
    machine = machine or make_machine()
    trace = TraceRecorder()
    network = Network(engine, machine)
    nodes = [Node(engine, i, machine, cores=2, trace=trace) for i in range(3)]
    for node in nodes:
        network.register(node)
    return engine, network, nodes, trace


class TestNetwork:
    def test_remote_transfer_timing(self):
        # 50 bytes at 10 B/s: 5s tx + 1s latency + 5s rx = 11s
        engine, network, nodes, _ = make_pair()
        arrivals = []

        def consumer():
            message = yield nodes[1].inbox("main").get()
            arrivals.append((message.payload, engine.now))

        engine.process(consumer())
        network.send(0, 1, 50.0, "hello", inbox="main")
        engine.run()
        assert arrivals == [("hello", pytest.approx(11.0))]

    def test_local_delivery_is_immediate_and_skips_nic(self):
        engine, network, nodes, _ = make_pair()
        arrivals = []

        def consumer():
            message = yield nodes[0].inbox("main").get()
            arrivals.append((message.payload, engine.now))

        engine.process(consumer())
        network.send(0, 0, 1e9, "local", inbox="main")
        engine.run()
        assert arrivals == [("local", pytest.approx(0.0))]
        assert network.remote_messages == 0

    def test_sender_nic_serializes_messages(self):
        # Two 50-byte messages from node 0: second waits for the first's tx.
        engine, network, nodes, _ = make_pair()
        arrivals = []

        def consumer(node_id):
            message = yield nodes[node_id].inbox("main").get()
            arrivals.append((message.dst, engine.now))

        engine.process(consumer(1))
        engine.process(consumer(2))
        network.send(0, 1, 50.0, None, inbox="main")
        network.send(0, 2, 50.0, None, inbox="main")
        engine.run()
        arrivals.sort()
        assert arrivals[0] == (1, pytest.approx(11.0))
        assert arrivals[1] == (2, pytest.approx(16.0))  # tx starts at t=5

    def test_sender_can_wait_for_delivery(self):
        engine, network, nodes, _ = make_pair()
        done = []

        def sender():
            yield network.send(0, 1, 10.0, None, inbox="main")
            done.append(engine.now)

        engine.process(sender())
        engine.run()
        assert done == [pytest.approx(3.0)]  # 1 + 1 + 1

    def test_duplicate_registration_rejected(self):
        engine, network, nodes, _ = make_pair()
        with pytest.raises(SimulationError):
            network.register(nodes[0])

    def test_unknown_node_rejected(self):
        engine, network, nodes, _ = make_pair()
        with pytest.raises(SimulationError):
            network.node(99)

    def test_statistics(self):
        engine, network, nodes, _ = make_pair()
        network.send(0, 1, 100.0, None, inbox="x")
        network.send(1, 1, 50.0, None, inbox="x")
        engine.run()
        assert network.messages_sent == 2
        assert network.bytes_sent == 150.0
        assert network.remote_messages == 1


class TestNode:
    def test_execute_charges_cpu_then_memory_and_traces(self):
        engine, _, nodes, trace = make_pair()
        node = nodes[0]

        def worker():
            # cpu 2s, 300 bytes at 100 B/s -> 3s memory phase
            yield from node.execute(0, TaskCategory.GEMM, "g", OpCost(2.0, 300.0))

        engine.process(worker())
        engine.run()
        assert engine.now == pytest.approx(5.0)
        assert len(trace.events) == 1
        event = trace.events[0]
        assert (event.t_start, event.t_end) == (0.0, pytest.approx(5.0))
        assert event.category is TaskCategory.GEMM

    def test_concurrent_memory_phases_share_bandwidth(self):
        engine, _, nodes, trace = make_pair()
        node = nodes[0]
        ends = []

        def worker(thread):
            yield from node.execute(
                thread, TaskCategory.SORT, "s", OpCost(0.0, 100.0)
            )
            ends.append(engine.now)

        engine.process(worker(0))
        engine.process(worker(1))
        engine.run()
        # two 100-byte jobs on 100 B/s shared -> both end at t=2
        assert ends == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_named_inboxes_and_mutexes_are_cached(self):
        engine, _, nodes, _ = make_pair()
        node = nodes[0]
        assert node.inbox("ga") is node.inbox("ga")
        assert node.mutex("write") is node.mutex("write")
        assert node.inbox("ga") is not node.inbox("parsec")

    def test_mutex_inherits_machine_overheads(self):
        engine, _, nodes, _ = make_pair(
            make_machine(mutex_lock_s=0.5, mutex_unlock_s=0.25)
        )
        mutex = nodes[0].mutex("w")
        assert mutex.lock_overhead == 0.5
        assert mutex.unlock_overhead == 0.25

    def test_zero_core_node_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            Node(engine, 0, make_machine(), cores=0, trace=TraceRecorder())


class TestMachineModel:
    def test_gemm_cost_formula(self):
        machine = MachineModel(gemm_gflops=2.0)
        cost = machine.gemm(10, 20, 30)
        assert cost.cpu == pytest.approx(2 * 10 * 20 * 30 / 2.0e9)
        assert cost.bytes == 8 * (10 * 30 + 30 * 20 + 2 * 10 * 20)

    def test_sort_cache_warm_discount(self):
        machine = MachineModel(cache_reuse_discount=0.5)
        cold = machine.sort4(1000)
        warm = machine.sort4(1000, cache_warm=True)
        # a memory-bound shuffle on cache-resident data is cheaper on
        # both components (the CPU time is stall-dominated)
        assert warm.bytes == pytest.approx(cold.bytes * 0.5)
        assert warm.cpu == pytest.approx(cold.cpu * 0.5)

    def test_axpy_traffic(self):
        machine = MachineModel()
        cost = machine.axpy(100)
        assert cost.bytes == 8 * 3 * 100

    def test_with_overrides_returns_new_model(self):
        machine = MachineModel()
        faster = machine.with_overrides(nic_bw_bytes_per_s=1e12)
        assert faster.nic_bw_bytes_per_s == 1e12
        assert machine.nic_bw_bytes_per_s != 1e12

    def test_invalid_discount_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(cache_reuse_discount=1.5)

    def test_opcost_validation_and_arith(self):
        with pytest.raises(ConfigurationError):
            OpCost(-1.0, 0.0)
        total = OpCost(1.0, 10.0) + OpCost(2.0, 20.0)
        assert (total.cpu, total.bytes) == (3.0, 30.0)
        assert OpCost(1.0, 10.0).scaled(2).bytes == 20.0


class TestCluster:
    def test_build_wires_everything(self):
        cluster = Cluster(ClusterConfig(n_nodes=4, cores_per_node=3))
        assert len(cluster.nodes) == 4
        assert cluster.cores_per_node == 3
        assert cluster.network.node(2) is cluster.nodes[2]
        assert cluster.n_nodes == 4

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_nodes=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(cores_per_node=0)

    def test_with_cores_preserves_rest(self):
        config = ClusterConfig(n_nodes=8, cores_per_node=1, data_mode=DataMode.SYNTH)
        swept = config.with_cores(15)
        assert swept.cores_per_node == 15
        assert swept.n_nodes == 8
        assert swept.data_mode is DataMode.SYNTH

    def test_trace_can_be_disabled(self):
        cluster = Cluster(ClusterConfig(n_nodes=1, trace_enabled=False))
        cluster.trace.record(0, 0, TaskCategory.GEMM, "x", 0.0, 1.0)
        assert len(cluster.trace) == 0

    def test_total_cores(self):
        assert ClusterConfig(n_nodes=32, cores_per_node=7).total_cores == 224
