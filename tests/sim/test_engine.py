"""Unit tests for the DES kernel: events, timeouts, processes, combinators."""

import pytest

from repro.sim.engine import Engine, all_of, any_of
from repro.util.errors import SimulationError


@pytest.fixture
def engine():
    return Engine()


class TestScheduling:
    def test_clock_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_schedule_runs_in_time_order(self, engine):
        order = []
        engine.schedule(2.0, order.append, "b")
        engine.schedule(1.0, order.append, "a")
        engine.schedule(3.0, order.append, "c")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, engine):
        order = []
        for tag in range(5):
            engine.schedule(1.0, order.append, tag)
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_run_returns_final_time(self, engine):
        engine.schedule(5.5, lambda: None)
        assert engine.run() == 5.5

    def test_run_until_stops_early(self, engine):
        fired = []
        engine.schedule(10.0, fired.append, True)
        assert engine.run(until=4.0) == 4.0
        assert fired == []
        # remaining event still fires on a later run
        engine.run()
        assert fired == [True]

    def test_run_until_advances_clock_past_empty_heap(self, engine):
        assert engine.run(until=7.0) == 7.0
        assert engine.now == 7.0

    def test_cancelled_call_does_not_run(self, engine):
        fired = []
        call = engine.schedule(1.0, fired.append, 1)
        call.cancel()
        engine.run()
        assert fired == []

    def test_peek_skips_cancelled(self, engine):
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        first.cancel()
        assert engine.peek() == 2.0


class TestSimEvent:
    def test_succeed_delivers_value(self, engine):
        event = engine.event()
        got = []
        event._wait(lambda ev: got.append(ev.value))
        event.succeed(42)
        engine.run()
        assert got == [42]

    def test_late_waiter_still_fires(self, engine):
        event = engine.event()
        event.succeed("x")
        got = []
        event._wait(lambda ev: got.append(ev.value))
        engine.run()
        assert got == ["x"]

    def test_double_trigger_rejected(self, engine):
        event = engine.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()
        with pytest.raises(SimulationError):
            event.fail(ValueError("x"))

    def test_fail_requires_exception(self, engine):
        with pytest.raises(SimulationError):
            engine.event().fail("not an exception")

    def test_state_flags(self, engine):
        event = engine.event()
        assert not event.triggered and not event.ok and not event.failed
        event.succeed(1)
        assert event.triggered and event.ok and not event.failed


class TestTimeout:
    def test_timeout_fires_at_delay(self, engine):
        times = []
        timeout = engine.timeout(3.0)
        timeout._wait(lambda ev: times.append(engine.now))
        engine.run()
        assert times == [3.0]

    def test_timeout_value_passthrough(self, engine):
        timeout = engine.timeout(1.0, value="payload")
        got = []
        timeout._wait(lambda ev: got.append(ev.value))
        engine.run()
        assert got == ["payload"]

    def test_negative_timeout_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.timeout(-1.0)


class TestProcess:
    def test_simple_sequence(self, engine):
        log = []

        def worker():
            log.append(("start", engine.now))
            yield engine.timeout(2.0)
            log.append(("mid", engine.now))
            yield engine.timeout(3.0)
            log.append(("end", engine.now))

        engine.process(worker())
        engine.run()
        assert log == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]

    def test_return_value_on_completion(self, engine):
        def worker():
            yield engine.timeout(1.0)
            return "done"

        proc = engine.process(worker())
        results = []
        proc.completion._wait(lambda ev: results.append(ev.value))
        engine.run()
        assert results == ["done"]
        assert not proc.alive

    def test_process_joins_process(self, engine):
        def child():
            yield engine.timeout(4.0)
            return 99

        def parent():
            value = yield engine.process(child())
            assert engine.now == 4.0
            return value

        proc = engine.process(parent())
        engine.run()
        assert proc.completion.value == 99

    def test_yield_from_subgenerator(self, engine):
        def helper():
            yield engine.timeout(1.0)
            yield engine.timeout(1.0)
            return "sub"

        def worker():
            value = yield from helper()
            return value

        proc = engine.process(worker())
        engine.run()
        assert proc.completion.value == "sub"
        assert engine.now == 2.0

    def test_unhandled_exception_propagates_from_run(self, engine):
        def worker():
            yield engine.timeout(1.0)
            raise RuntimeError("boom")

        engine.process(worker())
        with pytest.raises(SimulationError, match="unhandled exception"):
            engine.run()

    def test_failed_event_thrown_into_process(self, engine):
        event = engine.event()
        caught = []

        def worker():
            try:
                yield event
            except ValueError as exc:
                caught.append(str(exc))

        engine.process(worker())
        engine.schedule(1.0, event.fail, ValueError("injected"))
        engine.run()
        assert caught == ["injected"]

    def test_waited_process_failure_propagates_to_waiter(self, engine):
        def child():
            yield engine.timeout(1.0)
            raise KeyError("inner")

        def parent():
            try:
                yield engine.process(child())
            except KeyError:
                return "caught"

        proc = engine.process(parent())
        engine.run()
        assert proc.completion.value == "caught"

    def test_non_generator_rejected(self, engine):
        with pytest.raises(SimulationError, match="generator"):
            engine.process(lambda: None)

    def test_yield_non_waitable_rejected(self, engine):
        def worker():
            yield 42

        engine.process(worker())
        with pytest.raises(SimulationError):
            engine.run()


class TestCombinators:
    def test_all_of_collects_values_in_order(self, engine):
        t1 = engine.timeout(3.0, value="late")
        t2 = engine.timeout(1.0, value="early")
        results = []

        def worker():
            values = yield all_of(engine, [t1, t2])
            results.append((engine.now, values))

        engine.process(worker())
        engine.run()
        assert results == [(3.0, ["late", "early"])]

    def test_all_of_empty_fires_immediately(self, engine):
        combined = all_of(engine, [])
        assert combined.triggered and combined.value == []

    def test_all_of_fails_on_first_failure(self, engine):
        good = engine.timeout(5.0)
        bad = engine.event()
        engine.schedule(1.0, bad.fail, RuntimeError("nope"))
        caught = []

        def worker():
            try:
                yield all_of(engine, [good, bad])
            except RuntimeError as exc:
                caught.append((engine.now, str(exc)))

        engine.process(worker())
        engine.run()
        assert caught == [(1.0, "nope")]

    def test_any_of_returns_winner(self, engine):
        slow = engine.timeout(9.0, value="slow")
        fast = engine.timeout(2.0, value="fast")
        results = []

        def worker():
            index, value = yield any_of(engine, [slow, fast])
            results.append((engine.now, index, value))

        engine.process(worker())
        engine.run()
        assert results == [(2.0, 1, "fast")]

    def test_any_of_empty_rejected(self, engine):
        with pytest.raises(SimulationError):
            any_of(engine, [])


class TestCancelInteraction:
    """ScheduledCall.cancel crossed with peek() and run(until=...)."""

    def test_cancel_between_bounded_runs(self, engine):
        fired = []
        call = engine.schedule(5.0, fired.append, True)
        assert engine.run(until=3.0) == 3.0
        call.cancel()
        # the cancelled slot is popped silently; the clock does not
        # advance to its time
        assert engine.run() == 3.0
        assert fired == []

    def test_peek_none_when_all_cancelled(self, engine):
        a = engine.schedule(1.0, lambda: None)
        b = engine.schedule(2.0, lambda: None)
        a.cancel()
        b.cancel()
        assert engine.peek() is None

    def test_callback_cancels_later_call(self, engine):
        fired = []
        later = engine.schedule(2.0, fired.append, "later")
        engine.schedule(1.0, later.cancel)
        engine.run()
        assert fired == []

    def test_run_until_ignores_cancelled_head(self, engine):
        fired = []
        head = engine.schedule(1.0, fired.append, "head")
        engine.schedule(5.0, fired.append, "tail")
        head.cancel()
        # the cancelled head must not stop a bounded run short of until
        assert engine.run(until=2.0) == 2.0
        assert fired == []
        engine.run()
        assert fired == ["tail"]

    def test_cancel_after_firing_is_harmless(self, engine):
        fired = []
        call = engine.schedule(1.0, fired.append, True)
        engine.run()
        call.cancel()  # no-op: already popped
        assert fired == [True]


class TestCombinatorFailures:
    """all_of / any_of under failing inputs."""

    def test_any_of_slow_success_beats_fast_failure(self, engine):
        slow = engine.timeout(5.0, value="slow-win")
        fast_fail = engine.event()
        engine.schedule(1.0, fast_fail.fail, RuntimeError("fast loser"))
        results = []

        def worker():
            index, value = yield any_of(engine, [slow, fast_fail])
            results.append((engine.now, index, value))

        engine.process(worker())
        engine.run()
        assert results == [(5.0, 0, "slow-win")]

    def test_any_of_fails_only_when_all_failed(self, engine):
        first = engine.event()
        second = engine.event()
        engine.schedule(1.0, first.fail, RuntimeError("first"))
        engine.schedule(2.0, second.fail, RuntimeError("second"))
        caught = []

        def worker():
            try:
                yield any_of(engine, [first, second])
            except RuntimeError as exc:
                caught.append((engine.now, str(exc)))

        engine.process(worker())
        engine.run()
        # fails at the LAST failure, with the FIRST failure's exception
        assert caught == [(2.0, "first")]

    def test_any_of_with_already_failed_input(self, engine):
        dead = engine.event()
        dead.fail(ValueError("pre-failed"))
        alive = engine.timeout(1.0, value="ok")
        results = []

        def worker():
            index, value = yield any_of(engine, [dead, alive])
            results.append((index, value))

        engine.process(worker())
        engine.run()
        assert results == [(1, "ok")]

    def test_all_of_late_successes_after_failure_ignored(self, engine):
        bad = engine.event()
        good = engine.timeout(3.0, value="late")
        engine.schedule(1.0, bad.fail, RuntimeError("early"))
        caught = []

        def worker():
            try:
                yield all_of(engine, [bad, good])
            except RuntimeError as exc:
                caught.append((engine.now, str(exc)))

        engine.process(worker())
        engine.run()  # good still fires at 3.0; must not re-trigger
        assert caught == [(1.0, "early")]

    def test_all_of_with_already_failed_input(self, engine):
        dead = engine.event()
        dead.fail(KeyError("gone"))
        caught = []

        def worker():
            try:
                yield all_of(engine, [dead, engine.timeout(1.0)])
            except KeyError:
                caught.append(engine.now)

        engine.process(worker())
        engine.run()
        assert caught == [0.0]


class TestDeterminism:
    def test_identical_runs_produce_identical_schedules(self):
        def build_and_run():
            engine = Engine()
            log = []

            def worker(tag, delay):
                for _ in range(3):
                    yield engine.timeout(delay)
                    log.append((tag, engine.now))

            for tag in range(4):
                engine.process(worker(tag, 0.5 + 0.25 * tag))
            engine.run()
            return log

        assert build_and_run() == build_and_run()

    def test_run_not_reentrant(self, engine):
        def worker():
            yield engine.timeout(1.0)
            engine.run()

        engine.process(worker())
        with pytest.raises(SimulationError):
            engine.run()


class TestImmediateLane:
    """The zero-delay fast path: lane + heap merge in global seq order."""

    def test_call_soon_runs_callbacks(self, engine):
        got = []
        engine.call_soon(got.append, "a")
        engine.call_soon(got.append, "b")
        engine.run()
        assert got == ["a", "b"]

    def test_lane_merges_with_heap_by_seq(self, engine):
        # same timestamp: whoever registered first (lower seq) runs first,
        # exactly as if everything had gone through the heap
        order = []
        engine.schedule(0.0, order.append, "heap0")  # seq 0
        engine.call_soon(order.append, "lane1")      # seq 1
        engine.schedule(0.0, order.append, "heap2")  # seq 2
        engine.run()
        assert order == ["heap0", "lane1", "heap2"]

    def test_lane_runs_before_later_heap_times(self, engine):
        order = []
        engine.schedule(5.0, order.append, "later")

        def at_t1():
            engine.call_soon(order.append, "lane@1")

        engine.schedule(1.0, at_t1)
        engine.run()
        assert order == ["lane@1", "later"]

    def test_event_dispatch_goes_through_lane_not_heap(self, engine):
        event = engine.event()
        got = []
        event._wait(lambda ev: got.append(ev.value))
        event.succeed(9)
        assert engine.heap_size == 0  # no zero-delay heapq traffic
        engine.run()
        assert got == [9]

    def test_run_until_does_not_drain_future_lane_entries(self, engine):
        # a lane entry stamped beyond `until` must survive for a later run()
        fired = []

        def at_t3():
            engine.call_soon(fired.append, True)

        engine.schedule(3.0, at_t3)
        engine.run(until=2.0)
        assert fired == []
        engine.run()
        assert fired == [True]

    def test_checkpoint_resumes_through_lane(self, engine):
        log = []

        def proc():
            log.append(("before", engine.now))
            yield engine.checkpoint
            log.append(("after", engine.now))

        engine.process(proc())
        engine.run()
        assert log == [("before", 0.0), ("after", 0.0)]

    def test_checkpoint_consumes_one_seq_like_presucceeded_get(self):
        # two engines, two spellings of "yield once at now": the subsequent
        # timeout must land on the same (time, seq) slot in both
        def drive(use_checkpoint):
            engine = Engine()
            order = []

            def proc():
                if use_checkpoint:
                    yield engine.checkpoint
                else:
                    event = engine.event()
                    event.succeed(None)
                    yield event
                order.append("proc")

            engine.process(proc())
            engine.process(iter_marker(engine, order))
            engine.run()
            return order

        def iter_marker(engine, order):
            yield engine.timeout(0.0)
            order.append("marker")

        assert drive(True) == drive(False)

    def test_peek_sees_lane_head(self, engine):
        engine.schedule(4.0, lambda _=None: None)
        engine.call_soon(lambda _=None: None)
        assert engine.peek() == 0.0


class TestHeapCompaction:
    def test_heap_size_and_cancelled_pending_track_schedule_cancel(self, engine):
        calls = [engine.schedule(float(i + 1), lambda _=None: None) for i in range(10)]
        assert engine.heap_size == 10
        assert engine.cancelled_pending == 0
        calls[0].cancel()
        calls[0].cancel()  # idempotent: counted once
        assert engine.cancelled_pending == 1
        assert engine.heap_size == 10  # lazy: still occupying a slot

    def test_compaction_reclaims_majority_cancelled(self, engine):
        calls = [engine.schedule(float(i + 1), lambda _=None: None) for i in range(100)]
        for call in calls[:70]:
            call.cancel()
        # threshold (>= 64 cancelled and more than half the heap) was crossed
        assert engine.cancelled_pending < 64
        live = engine.heap_size - engine.cancelled_pending
        assert live == 30
        engine.run()
        assert engine.heap_size == 0

    def test_cancel_churn_keeps_heap_bounded(self, engine):
        peak = 0
        for i in range(10_000):
            engine.schedule(1.0 + i, lambda _=None: None).cancel()
            peak = max(peak, engine.heap_size)
        assert peak <= 130  # compaction bound, not monotone growth

    def test_cancel_after_run_does_not_corrupt_counter(self, engine):
        call = engine.schedule(1.0, lambda _=None: None)
        engine.run()
        call.cancel()  # already popped: must not count as heap garbage
        assert engine.cancelled_pending == 0

    def test_compaction_preserves_order_and_delivery(self, engine):
        order = []
        keep = []
        for i in range(200):
            call = engine.schedule(float(i), order.append, i)
            if i % 3:
                call.cancel()
            else:
                keep.append(i)
        engine.run()
        assert order == keep
