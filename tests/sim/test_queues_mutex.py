"""Unit tests for Store/PriorityStore mailboxes and the SimMutex model."""

import pytest

from repro.sim.engine import Engine
from repro.sim.mutex import SimMutex
from repro.sim.queues import LifoStore, PriorityStore, Store


@pytest.fixture
def engine():
    return Engine()


class TestStore:
    def test_put_then_get_fifo(self, engine):
        store = Store(engine)
        store.put("a")
        store.put("b")
        got = []

        def worker():
            got.append((yield store.get()))
            got.append((yield store.get()))

        engine.process(worker())
        engine.run()
        assert got == ["a", "b"]

    def test_get_blocks_until_put(self, engine):
        store = Store(engine)
        got = []

        def consumer():
            got.append(((yield store.get()), engine.now))

        def producer():
            yield engine.timeout(3.0)
            store.put("late")

        engine.process(consumer())
        engine.process(producer())
        engine.run()
        assert got == [("late", 3.0)]

    def test_multiple_getters_served_fifo(self, engine):
        store = Store(engine)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        engine.process(consumer(0))
        engine.process(consumer(1))
        engine.schedule(1.0, store.put, "x")
        engine.schedule(2.0, store.put, "y")
        engine.run()
        assert got == [(0, "x"), (1, "y")]

    def test_try_get(self, engine):
        store = Store(engine)
        assert store.try_get() == (False, None)
        store.put(7)
        assert store.try_get() == (True, 7)
        assert len(store) == 0

    def test_len_counts_buffered(self, engine):
        store = Store(engine)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestPriorityStore:
    def test_highest_priority_first(self, engine):
        store = PriorityStore(engine)
        store.put("low", priority=1)
        store.put("high", priority=10)
        store.put("mid", priority=5)
        got = []

        def worker():
            for _ in range(3):
                got.append((yield store.get()))

        engine.process(worker())
        engine.run()
        assert got == ["high", "mid", "low"]

    def test_equal_priority_is_fifo(self, engine):
        store = PriorityStore(engine)
        for tag in range(4):
            store.put(tag, priority=3)
        got = []

        def worker():
            for _ in range(4):
                got.append((yield store.get()))

        engine.process(worker())
        engine.run()
        assert got == [0, 1, 2, 3]

    def test_blocking_get_wakes_on_put(self, engine):
        store = PriorityStore(engine)
        got = []

        def worker():
            got.append(((yield store.get()), engine.now))

        engine.process(worker())
        engine.schedule(2.0, store.put, "item", 9)
        engine.run()
        assert got == [("item", 2.0)]

    def test_peek_priority(self, engine):
        store = PriorityStore(engine)
        with pytest.raises(IndexError):
            store.peek_priority()
        store.put("x", priority=4)
        assert store.peek_priority() == 4

    def test_try_get_best(self, engine):
        store = PriorityStore(engine)
        store.put("a", priority=1)
        store.put("b", priority=2)
        assert store.try_get() == (True, "b")


class TestSimMutex:
    def test_mutual_exclusion(self, engine):
        mutex = SimMutex(engine)
        active = []
        max_active = []

        def worker():
            yield from mutex.lock()
            active.append(1)
            max_active.append(len(active))
            yield engine.timeout(1.0)
            active.pop()
            yield from mutex.unlock()

        for _ in range(4):
            engine.process(worker())
        engine.run()
        assert max(max_active) == 1
        assert mutex.total_locks == 4

    def test_lock_overhead_charged_per_operation(self, engine):
        mutex = SimMutex(engine, lock_overhead=0.5, unlock_overhead=0.25)
        times = []

        def worker():
            yield from mutex.lock()
            times.append(("locked", engine.now))
            yield from mutex.unlock()
            times.append(("unlocked", engine.now))

        engine.process(worker())
        engine.run()
        assert times == [("locked", 0.5), ("unlocked", 0.75)]

    def test_critical_section_helper(self, engine):
        mutex = SimMutex(engine)
        spans = []

        def worker(tag):
            start = engine.now
            yield from mutex.critical_section(2.0)
            spans.append((tag, start, engine.now))

        engine.process(worker("a"))
        engine.process(worker("b"))
        engine.run()
        assert spans == [("a", 0.0, 2.0), ("b", 0.0, 4.0)]

    def test_contended_wait_time_accumulates(self, engine):
        mutex = SimMutex(engine)

        def holder():
            yield from mutex.lock()
            yield engine.timeout(5.0)
            yield from mutex.unlock()

        def contender():
            yield engine.timeout(1.0)
            yield from mutex.lock()
            yield from mutex.unlock()

        engine.process(holder())
        engine.process(contender())
        engine.run()
        assert mutex.contended_wait_time == pytest.approx(4.0)

    def test_locked_flag(self, engine):
        mutex = SimMutex(engine)

        def worker():
            yield from mutex.lock()
            assert mutex.locked
            yield from mutex.unlock()

        engine.process(worker())
        engine.run()
        assert not mutex.locked


class TestAbandonedGetters:
    """Dead consumers must not eat items (see queues._pop_live_getter)."""

    @pytest.mark.parametrize("store_cls", [Store, LifoStore, PriorityStore])
    def test_put_skips_abandoned_getter(self, engine, store_cls):
        store = store_cls(engine)
        corpse = store.get()  # a consumer that will die while parked
        corpse.abandon()
        got = []

        def live():
            item = yield store.get()
            got.append(item)

        engine.process(live())
        engine.run(until=0.0)  # park the live getter behind the corpse
        store.put("task")
        engine.run()
        assert got == ["task"]
        assert not corpse.triggered

    @pytest.mark.parametrize("store_cls", [Store, LifoStore, PriorityStore])
    def test_abandon_getters_then_put_buffers_item(self, engine, store_cls):
        store = store_cls(engine)
        store.get()  # pending getter
        assert store.abandon_getters() == 1
        assert store.abandon_getters() == 0  # idempotent
        store.put("x")
        assert len(store) == 1
        ok, item = store.try_get()
        assert ok and item == "x"

    def test_triggered_getter_not_double_served(self, engine):
        # a getter satisfied immediately (items available) never re-enters
        # the getter queue, so put() must simply buffer
        store = Store(engine)
        store.put(1)
        first = store.get()
        assert first.triggered and first.value == 1
        store.put(2)
        assert len(store) == 1
