"""Tests for the legacy CGP runtime: correctness, stealing, levels, traces."""

import numpy as np
import pytest

from repro.ga.runtime import GlobalArrays
from repro.legacy.runtime import LegacyConfig, LegacyRuntime
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.trace import TaskCategory
from repro.tce.molecules import tiny_system
from repro.tce.reference import compute_reference, correlation_energy
from repro.tce.t2_7 import build_t2_7
from repro.util.errors import ConfigurationError


def run_legacy(
    n_nodes=4,
    cores_per_node=2,
    data_mode=DataMode.REAL,
    use_nxtval=True,
    seed=7,
    system=None,
):
    cluster = Cluster(
        ClusterConfig(n_nodes=n_nodes, cores_per_node=cores_per_node, data_mode=data_mode)
    )
    ga = GlobalArrays(cluster)
    workload = build_t2_7(cluster, ga, (system or tiny_system()).orbital_space(), seed=seed)
    runtime = LegacyRuntime(cluster, ga, LegacyConfig(use_nxtval=use_nxtval))
    result = runtime.execute_subroutine(workload.subroutine)
    return cluster, workload, result


class TestCorrectness:
    def test_output_matches_dense_reference(self):
        cluster, workload, result = run_legacy()
        expected = compute_reference(workload)
        np.testing.assert_allclose(
            workload.i2.flat_values(), expected, rtol=1e-12, atol=1e-12
        )

    def test_static_distribution_same_numerics(self):
        _, w_nxtval, _ = run_legacy(use_nxtval=True)
        _, w_static, _ = run_legacy(use_nxtval=False)
        np.testing.assert_allclose(
            w_nxtval.i2.flat_values(), w_static.i2.flat_values(), rtol=1e-13
        )

    def test_correlation_energy_matches_reference_exactly(self):
        cluster, workload, _ = run_legacy()
        expected = correlation_energy(compute_reference(workload))
        measured = correlation_energy(workload.i2.flat_values())
        assert measured == pytest.approx(expected, rel=1e-13)

    def test_every_chain_executed_exactly_once(self):
        _, workload, result = run_legacy()
        assert result.chains_executed == workload.subroutine.n_chains
        assert sum(result.chains_per_rank.values()) == workload.subroutine.n_chains


class TestScheduling:
    def test_rank_count_is_nodes_times_cores(self):
        _, _, result = run_legacy(n_nodes=3, cores_per_node=4)
        assert result.n_ranks == 12

    def test_nxtval_requests_exceed_chain_count(self):
        # every rank gets one extra "no more work" ticket
        _, workload, result = run_legacy()
        assert result.nxtval_requests == workload.subroutine.n_chains + result.n_ranks

    def test_static_mode_uses_no_nxtval(self):
        _, _, result = run_legacy(use_nxtval=False)
        assert result.nxtval_requests == 0

    def test_static_mode_rank_cyclic_assignment(self):
        _, workload, result = run_legacy(use_nxtval=False, n_nodes=2, cores_per_node=2)
        n_chains = workload.subroutine.n_chains
        counts = sorted(result.chains_per_rank.values())
        # rank-cyclic: every rank gets floor or ceil of the even share
        assert sum(counts) == n_chains
        assert counts[-1] - counts[0] <= 1

    def test_work_stealing_adapts_when_one_node_is_remote(self):
        """NXTVAL hands chains to whoever asks first; every rank gets some."""
        _, workload, result = run_legacy(n_nodes=4, cores_per_node=2)
        assert all(v > 0 for v in result.chains_per_rank.values())

    def test_empty_levels_rejected(self):
        cluster = Cluster(ClusterConfig(n_nodes=2))
        ga = GlobalArrays(cluster)
        runtime = LegacyRuntime(cluster, ga)
        with pytest.raises(ConfigurationError):
            runtime.execute([])

    def test_multiple_levels_are_barrier_separated(self):
        cluster = Cluster(ClusterConfig(n_nodes=2, cores_per_node=2))
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
        chains = workload.subroutine.chains
        half = len(chains) // 2
        runtime = LegacyRuntime(cluster, ga)
        runtime.execute([chains[:half], chains[half:]])
        # every level-2 GEMM starts after every level-1 GEMM ends
        barriers = cluster.trace.filtered(category=TaskCategory.BARRIER)
        assert len(barriers) == 2 * 4  # two levels x four ranks
        first_barrier_end = min(
            e.t_end for e in barriers
        )
        level1_ids = {c.chain_id for c in chains[:half]}
        gemms = cluster.trace.filtered(category=TaskCategory.GEMM)
        for g in gemms:
            if g.meta["chain"] not in level1_ids:
                assert g.t_start >= first_barrier_end - 1e-12


class TestBehaviour:
    def test_no_communication_computation_overlap_per_rank(self):
        """Blocking gets: a rank's COMM and GEMM spans never overlap."""
        cluster, _, _ = run_legacy()
        for (node, thread), spans in cluster.trace.by_thread().items():
            busy = sorted(
                (e.t_start, e.t_end) for e in spans if e.duration > 0
            )
            for (s1, e1), (s2, e2) in zip(busy, busy[1:]):
                assert s2 >= e1 - 1e-12  # strictly sequential

    def test_trace_contains_the_figure12_task_classes(self):
        cluster, _, _ = run_legacy()
        counts = cluster.trace.count_by_category()
        for category in (
            TaskCategory.GEMM,
            TaskCategory.COMM,
            TaskCategory.SORT,
            TaskCategory.WRITE,
            TaskCategory.DFILL,
            TaskCategory.NXTVAL,
            TaskCategory.BARRIER,
        ):
            assert counts.get(category, 0) > 0, f"missing {category}"

    def test_gemm_count_matches_workload(self):
        cluster, workload, _ = run_legacy()
        gemms = cluster.trace.filtered(category=TaskCategory.GEMM)
        assert len(gemms) == workload.subroutine.n_gemms

    def test_two_get_spans_per_gemm(self):
        cluster, workload, _ = run_legacy()
        comms = cluster.trace.filtered(category=TaskCategory.COMM)
        assert len(comms) == 2 * workload.subroutine.n_gemms

    def test_deterministic_execution_time(self):
        t1 = run_legacy()[2].execution_time
        t2 = run_legacy()[2].execution_time
        assert t1 == t2

    def test_more_cores_reduce_time_at_small_scale(self):
        t_small = run_legacy(cores_per_node=1, data_mode=DataMode.SYNTH)[2]
        t_large = run_legacy(cores_per_node=4, data_mode=DataMode.SYNTH)[2]
        assert t_large.execution_time < t_small.execution_time

    def test_synth_mode_runs_without_data(self):
        cluster, workload, result = run_legacy(data_mode=DataMode.SYNTH)
        assert result.execution_time > 0
        assert not workload.i2.array.holds_data
