"""Regenerate ``golden_tiny_digests.json`` (run from the repo root).

Only do this for an *intentional* behavioural change — the digests are
the bitwise-equivalence contract of the DES fast path and of the
workload SDK (every registered workload through every runtime), and any
drift on an optimization-only change is a bug, not a baseline refresh.

    PYTHONPATH=src python tests/data/regen_golden_digests.py
"""

import json
from pathlib import Path

from repro.core.api import RunConfig, run
from repro.tce.reference import correlation_energy

WORKLOADS = ("t2_7", "ccsd", "rbgs")
RUNTIMES = ("legacy", "v1", "v2", "v3", "v4", "v5", "dtd")
CONFIG = RunConfig(n_nodes=4, cores_per_node=2, seed=7, metrics=False)


def main() -> None:
    digests = {}
    for workload in WORKLOADS:
        digests[workload] = {}
        for runtime in RUNTIMES:
            result = run(f"{workload}:tiny", runtime=runtime, config=CONFIG)
            digests[workload][runtime] = {
                "execution_time": result.execution_time.hex(),
                "energy": correlation_energy(result.output.flat_values()).hex(),
            }
            print(workload, runtime, digests[workload][runtime])
    path = Path(__file__).parent / "golden_tiny_digests.json"
    path.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
