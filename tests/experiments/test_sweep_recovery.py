"""Recovery tests for the self-healing sweep executor.

The contract under test: worker death, hung cells, and poisoned cells
must not abort a pooled sweep — the pool respawns, innocent in-flight
cells are requeued, and the merged output for every healthy cell stays
byte-identical to the serial sweep. ``on_error="record"`` degrades an
unrunnable cell to an explicit :class:`CellError` instead of failing
the whole grid.
"""

import os
import signal
import time

import pytest

from repro.experiments.sweep import (
    CellError,
    CellTimeoutError,
    PoisonedCellError,
    RetryPolicy,
    SweepCell,
    SweepExecutor,
)
from repro.util.backoff import capped_exponential
from repro.util.errors import ConfigurationError


# -- cell bodies (module-level so the pool pickles them by reference) --
def _square(x):
    return x * x


def _kill_once(x, flag_dir):
    """SIGKILL the worker on the first attempt, then behave."""
    flag = os.path.join(flag_dir, f"killed-{x}")
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("1")
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _kill_always(x):
    os.kill(os.getpid(), signal.SIGKILL)


def _hang_once(x, flag_dir):
    """Hang far past any test deadline on the first attempt only."""
    flag = os.path.join(flag_dir, f"hung-{x}")
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("1")
        time.sleep(120)
    return x * x


def _hang_always(x):
    time.sleep(120)


def _boom(x):
    raise ValueError(f"cell {x} exploded")


FAST_RETRY = RetryPolicy(retries=2, base_delay_s=0.0, max_delay_s=0.0)


def _cells(n, fn=_square, **extra):
    return [SweepCell(key=(i,), fn=fn, kwargs={"x": i, **extra}) for i in range(n)]


class TestWorkerDeathRecovery:
    def test_killed_worker_is_respawned_and_merge_matches_serial(self, tmp_path):
        """The satellite regression: kill a worker mid-sweep, output is
        byte-identical to the serial sweep."""
        serial, _ = SweepExecutor(jobs=1).run(_cells(6))
        cells = _cells(6, fn=_kill_once, flag_dir=str(tmp_path))
        parallel, stats = SweepExecutor(jobs=2, retry=FAST_RETRY).run(cells)
        assert parallel == serial
        assert stats.pool_kills >= 1
        assert stats.retries >= 1
        assert not stats.cell_errors

    def test_poisoned_cell_raises_by_default(self):
        cells = [
            SweepCell(key=("ok",), fn=_square, kwargs={"x": 3}),
            SweepCell(key=("bad",), fn=_kill_always, kwargs={"x": 0}),
        ]
        with pytest.raises(PoisonedCellError, match="bad"):
            SweepExecutor(jobs=2, retry=FAST_RETRY).run(cells)

    def test_poisoned_cell_recorded_and_healthy_cells_identical(self):
        """One poisoned cell degrades the sweep to a partial result;
        every healthy cell still matches the serial sweep exactly."""
        serial, _ = SweepExecutor(jobs=1).run(_cells(5))
        cells = _cells(5) + [
            SweepCell(key=("bad",), fn=_kill_always, kwargs={"x": 0})
        ]
        results, stats = SweepExecutor(
            jobs=2, retry=FAST_RETRY, on_error="record"
        ).run(cells)
        error = results[("bad",)]
        assert isinstance(error, CellError)
        assert error.kind == "poisoned"
        assert error.attempts >= 2  # killed workers at least twice
        healthy = {k: v for k, v in results.items() if k != ("bad",)}
        assert healthy == serial
        assert stats.cell_errors == {"bad": "poisoned"}
        assert list(results) == [(i,) for i in range(5)] + [("bad",)]

    def test_partial_result_at_higher_job_counts(self):
        serial, _ = SweepExecutor(jobs=1).run(_cells(8))
        for jobs in (2, 4):
            cells = [SweepCell(key=("bad",), fn=_kill_always, kwargs={"x": 0})]
            cells += _cells(8)
            results, _ = SweepExecutor(
                jobs=jobs, retry=FAST_RETRY, on_error="record"
            ).run(cells)
            assert results[("bad",)].kind == "poisoned"
            assert {k: v for k, v in results.items() if k != ("bad",)} == serial


class TestDeadlines:
    def test_hung_cell_is_killed_and_retried(self, tmp_path):
        serial, _ = SweepExecutor(jobs=1).run(_cells(4))
        cells = _cells(4, fn=_hang_once, flag_dir=str(tmp_path))
        results, stats = SweepExecutor(
            jobs=2, timeout=2.0, retry=FAST_RETRY
        ).run(cells)
        assert results == serial
        assert stats.pool_kills >= 1

    def test_always_hanging_cell_times_out(self):
        cells = [SweepCell(key=("hang",), fn=_hang_always, kwargs={"x": 0}),
                 SweepCell(key=(1,), fn=_square, kwargs={"x": 1})]
        results, stats = SweepExecutor(
            jobs=2, timeout=1.0, retry=RetryPolicy(retries=1, base_delay_s=0.0),
            on_error="record",
        ).run(cells)
        error = results[("hang",)]
        assert isinstance(error, CellError)
        assert error.kind == "timeout"
        assert error.attempts == 2  # initial run + one retry
        assert results[(1,)] == 1

    def test_timeout_raises_by_default(self):
        cells = [SweepCell(key=("hang",), fn=_hang_always, kwargs={"x": 0}),
                 SweepCell(key=(1,), fn=_square, kwargs={"x": 1})]
        with pytest.raises(CellTimeoutError, match="hang"):
            SweepExecutor(
                jobs=2, timeout=1.0,
                retry=RetryPolicy(retries=0, base_delay_s=0.0),
            ).run(cells)


class TestErrorRecording:
    def test_exception_recorded_when_requested(self):
        cells = [SweepCell(key=(1,), fn=_square, kwargs={"x": 1}),
                 SweepCell(key=("boom",), fn=_boom, kwargs={"x": 2})]
        results, stats = SweepExecutor(jobs=2, on_error="record").run(cells)
        assert results[(1,)] == 1
        assert results[("boom",)].kind == "exception"
        assert "exploded" in results[("boom",)].message
        assert stats.cell_errors == {"boom": "exception"}

    def test_exception_recorded_serially_too(self):
        cells = [SweepCell(key=(1,), fn=_square, kwargs={"x": 1}),
                 SweepCell(key=("boom",), fn=_boom, kwargs={"x": 2})]
        results, _ = SweepExecutor(jobs=1, on_error="record").run(cells)
        assert results[(1,)] == 1
        assert results[("boom",)].kind == "exception"

    def test_exception_still_raises_by_default(self):
        cells = [SweepCell(key=(2,), fn=_boom, kwargs={"x": 2})]
        with pytest.raises(ValueError, match="exploded"):
            SweepExecutor(jobs=1).run(cells)

    def test_cell_error_serializes(self):
        error = CellError(key=("a",), label="a", kind="timeout",
                          message="deadline", attempts=3)
        assert error.to_dict() == {
            "label": "a", "kind": "timeout",
            "message": "deadline", "attempts": 3,
        }


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0)
        assert policy.delay(0) == 0.1
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(10) == 1.0
        assert policy.delay(100_000) == 1.0  # no float overflow

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_pool_kills=0)
        with pytest.raises(ConfigurationError):
            SweepExecutor(jobs=2, timeout=0.0)
        with pytest.raises(ConfigurationError):
            SweepExecutor(jobs=2, on_error="explode")

    def test_capped_exponential_edge_cases(self):
        assert capped_exponential(0.0, 5, 1.0) == 0.0
        assert capped_exponential(-1.0, 5, 1.0) == 0.0
        assert capped_exponential(1e-5, 2000, 0.5) == 0.5
        assert capped_exponential(1e300, 10, 7.0) == 7.0  # inf intermediate

    def test_stats_summary_mentions_recovery(self):
        from repro.experiments.sweep import SweepStats

        stats = SweepStats(label="s", jobs=2, n_cells=3, wall_s=1.0,
                           retries=2, pool_kills=1,
                           cell_errors={"bad": "poisoned"})
        assert "2 retries" in stats.summary()
        assert "1 pool kills" in stats.summary()
        report = stats.to_report()
        assert report.extra["retries"] == 2
        assert report.extra["cell_errors"] == {"bad": "poisoned"}
