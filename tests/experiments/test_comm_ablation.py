"""The comm-optimization ablation matrix (coalescing × remote cache).

Runs the real driver at tiny scale on one workload (the full three-
workload matrix is the CI ablation-smoke job's budget, not the unit
suite's) and pins the properties the CI gate relies on: all four knob
cells present, knobs-on outputs bitwise-equal to baseline, the
both-knobs cell strictly cheaper in wire messages, and a rendering
table that carries every cell.
"""

import pytest

from repro.experiments.ablations import run_comm_ablation


@pytest.fixture(scope="module")
def result():
    return run_comm_ablation(workloads=("t2_7",), scale="tiny")


class TestCommAblation:
    def test_matrix_has_all_four_cells(self, result):
        labels = [cell.label for cell in result.rows]
        assert labels == ["baseline", "coalesce", "cache", "coalesce+cache"]
        assert all(cell.workload == "t2_7" for cell in result.rows)

    def test_all_outputs_bitwise_equal(self, result):
        assert result.all_equal
        for cell in result.rows:
            assert cell.output_equal

    def test_both_knobs_save_wire_messages(self, result):
        base = result.baseline("t2_7")
        savings = result.message_savings("t2_7")
        assert savings > 0.0
        for cell in result.rows:
            if cell.coalescing or cell.cache:
                assert cell.wire_messages < base.wire_messages

    def test_knob_counters_light_up(self, result):
        for cell in result.rows:
            if cell.coalescing:
                assert cell.coalesced_batches > 0
                assert cell.messages_saved > 0
            else:
                assert cell.coalesced_batches == 0
                assert cell.messages_saved == 0
            if cell.cache:
                assert cell.cache_hits > 0
                assert cell.cache_bytes_saved > 0
                # hits are fetches that never touched the wire
                assert cell.bytes_fetched < result.baseline("t2_7").bytes_fetched
            else:
                assert cell.cache_hits == 0

    def test_table_renders_every_cell(self, result):
        table = result.table()
        assert "coalesce+cache" in table
        assert "baseline" in table
        assert table.count("t2_7") >= 4

    def test_unknown_workload_raises(self, result):
        with pytest.raises(KeyError):
            result.baseline("nope")
        with pytest.raises(KeyError):
            result.message_savings("nope")
