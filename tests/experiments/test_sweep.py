"""Tests for the multi-process sweep executor and the grid bugfixes.

The headline guarantee under test: a parallel sweep (``jobs > 1``) is
**byte-identical** to the serial one — same ``times`` dicts, same BENCH
JSON bytes — because every cell is an independent deterministic
simulation and the merge is keyed, not completion-ordered.
"""

import json

import pytest

from repro.core import api
from repro.experiments.fig9 import Fig9Result, fig9_shape_checks, run_fig9
from repro.experiments.perf import (
    BENCH_SCHEMA_VERSION,
    MissingCell,
    PERF_PRESETS,
    PerfBaseline,
    diff_baselines,
    run_perf,
)
from repro.experiments.sweep import SweepCell, SweepExecutor, SweepStats
from repro.util.errors import ConfigurationError


# module-level so the process pool can pickle them by reference
def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"cell {x} exploded")


class TestSweepExecutor:
    def test_serial_and_parallel_merge_identically(self):
        cells = [SweepCell(key=(i,), fn=_square, kwargs={"x": i}) for i in range(8)]
        serial, _ = SweepExecutor(jobs=1).run(cells)
        parallel, _ = SweepExecutor(jobs=3).run(cells)
        assert serial == parallel
        # merge order is submission order, independent of completion order
        assert list(parallel) == [(i,) for i in range(8)]

    def test_duplicate_keys_rejected(self):
        cells = [
            SweepCell(key=("a",), fn=_square, kwargs={"x": 1}),
            SweepCell(key=("a",), fn=_square, kwargs={"x": 2}),
        ]
        with pytest.raises(ConfigurationError, match="duplicate"):
            SweepExecutor(jobs=1).run(cells)

    def test_worker_exception_propagates(self):
        cells = [SweepCell(key=(1,), fn=_square, kwargs={"x": 1}),
                 SweepCell(key=(2,), fn=_boom, kwargs={"x": 2})]
        with pytest.raises(ValueError, match="exploded"):
            SweepExecutor(jobs=2).run(cells)

    def test_jobs_zero_means_cpu_count(self):
        assert SweepExecutor(jobs=0).jobs >= 1
        assert SweepExecutor(jobs=None).jobs >= 1

    def test_progress_lines_and_stats(self):
        lines = []
        cells = [SweepCell(key=(i,), fn=_square, kwargs={"x": i}) for i in range(3)]
        _, stats = SweepExecutor(jobs=1, progress=lines.append, label="t").run(cells)
        assert len(lines) == 3
        assert all("t" in line and "done in" in line for line in lines)
        assert stats.n_cells == 3
        assert set(stats.cell_wall_s) == {"0", "1", "2"}
        assert "3 cells" in stats.summary()

    def test_stats_to_report_is_obs_run_report(self):
        stats = SweepStats(label="x", jobs=2, n_cells=4, wall_s=1.5,
                           cell_wall_s={"a": 0.5, "b": 1.0})
        report = stats.to_report()
        assert report.runtime == "sweep"
        assert report.workload == "x"
        assert report.extra["jobs"] == 2
        assert report.extra["wall_s"] == 1.5
        assert report.extra["cell_wall_s"] == {"a": 0.5, "b": 1.0}
        # serializes like any other obs report
        assert json.loads(report.to_json_line())["runtime"] == "sweep"


class TestParallelIdentity:
    """jobs>1 must be byte-identical to the serial sweep."""

    def test_perf_tiny_times_and_json_bitwise_identical(self, tmp_path):
        serial = run_perf(scale="tiny", jobs=1)
        parallel = run_perf(scale="tiny", jobs=2)
        assert serial.times == parallel.times
        a = serial.write(tmp_path / "serial.json")
        b = parallel.write(tmp_path / "parallel.json")
        assert a.read_bytes() == b.read_bytes()

    def test_fig9_parallel_matches_serial(self):
        serial = run_fig9(scale="tiny", core_counts=(1, 2), n_nodes=4, jobs=1)
        parallel = run_fig9(scale="tiny", core_counts=(1, 2), n_nodes=4, jobs=2)
        assert serial.times == parallel.times

    def test_equivalence_parallel_matches_serial(self):
        from repro.experiments.equivalence import run_equivalence

        serial = run_equivalence(scale="tiny", n_nodes=4, jobs=1)
        parallel = run_equivalence(scale="tiny", n_nodes=4, jobs=2)
        assert serial.energies == parallel.energies


class TestPrecomputedInspection:
    def test_precompute_fills_one_entry_per_height(self):
        cache = api.precompute_inspection("tiny", 4, codes=("v1", "v2", "v5"))
        # v1 is height None, v2/v5 share height 1 -> two entries
        assert len(cache) == 2
        assert cache.misses == 2

    def test_non_parsec_codes_are_skipped(self):
        cache = api.precompute_inspection("tiny", 4, codes=("original", "legacy"))
        assert len(cache) == 0

    def test_cache_pickles(self):
        import pickle

        cache = api.precompute_inspection("tiny", 4, codes=("v5",))
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == len(cache) == 1


class TestShapeChecksOnSmallGrids:
    """The paper's probe points (3, 7, 11) may be absent from the grid."""

    @pytest.fixture(scope="class")
    def tiny_result(self):
        return run_fig9(scale="tiny", core_counts=(1, 2, 4), n_nodes=4)

    def test_shape_checks_do_not_raise_on_tiny_grid(self, tiny_result):
        checks = fig9_shape_checks(tiny_result)
        assert len(checks) == 10

    def test_out_of_grid_checks_marked_skipped(self, tiny_result):
        checks = fig9_shape_checks(tiny_result)
        skipped = [c for c in checks if c.skipped]
        assert skipped, "tiny grid lacks 3/7/11 - some checks must skip"
        for check in skipped:
            assert check.passed  # skips never fail the run
            assert check.detail.startswith("skipped:")
        by_name = {c.name: c for c in checks}
        assert by_name["original speedup at 3 cores/node ~2.35x"].skipped
        assert by_name["original plateaus by 7 cores/node"].skipped
        assert by_name["v2-v5 keep improving to 15; v1 largely stops"].skipped
        # claims probing only the grid's own points still evaluate
        assert not by_name["v5 fastest variant at 15 (within 2% tie tolerance)"].skipped

    def test_missing_codes_marked_skipped(self):
        times = {
            "original": {1: 10.0, 2: 6.0},
            "v5": {1: 9.0, 2: 4.0},
        }
        result = Fig9Result(times, (1, 2), "tiny", 4)
        checks = fig9_shape_checks(result)
        assert len(checks) == 10
        by_name = {c.name: c for c in checks}
        v1_check = by_name["v1 slowest variant at 15; v2 second slowest"]
        assert v1_check.skipped and "lacks" in v1_check.detail

    def test_summary_table_on_tiny_grid(self, tiny_result):
        table = tiny_result.summary_table()
        assert "n/a (grid lacks 3 cores/node)" in table
        assert "n/a (grid lacks 7 cores/node)" in table
        assert "best original" in table

    def test_paper_grid_has_no_skips(self):
        # synthetic paper-shaped data: all ten claims must evaluate
        times = {
            "original": {1: 91.4, 3: 38.3, 7: 28.3, 11: 27.9, 15: 28.7},
            "v1": {1: 82.2, 3: 29.5, 7: 17.4, 11: 14.1, 15: 13.1},
            "v2": {1: 85.6, 3: 30.6, 7: 16.2, 11: 12.2, 15: 10.4},
            "v3": {1: 85.6, 3: 28.6, 7: 12.6, 11: 10.0, 15: 8.67},
            "v4": {1: 85.6, 3: 28.6, 7: 12.6, 11: 10.0, 15: 8.66},
            "v5": {1: 85.8, 3: 28.7, 7: 12.5, 11: 10.0, 15: 8.66},
        }
        result = Fig9Result(times, (1, 3, 7, 11, 15), "paper", 32)
        checks = fig9_shape_checks(result)
        assert not any(c.skipped for c in checks)
        assert all(c.passed for c in checks)


class TestPerfScaleValidation:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError) as exc:
            run_perf(scale="papr")
        message = str(exc.value)
        for scale in PERF_PRESETS:
            assert scale in message

    def test_known_scales_still_resolve(self):
        # presets only - no sweep is run here
        assert set(PERF_PRESETS) == {"tiny", "small", "paper", "full"}

    def test_cli_rejects_unknown_scale(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["perf", "--scale", "papr"])
        assert exc.value.code == 2


class TestBenchSchemaValidation:
    def _payload(self, **overrides):
        payload = {
            "schema": BENCH_SCHEMA_VERSION,
            "scale": "tiny",
            "n_nodes": 4,
            "core_counts": [1, 2],
            "times": {"v5": {"1": 2.0, "2": 1.0}},
        }
        payload.update(overrides)
        return payload

    def test_round_trip_ok(self):
        baseline = PerfBaseline.from_dict(self._payload())
        assert baseline.times["v5"][1] == 2.0

    def test_future_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="schema"):
            PerfBaseline.from_dict(self._payload(schema=BENCH_SCHEMA_VERSION + 1))

    def test_missing_schema_rejected(self):
        payload = self._payload()
        del payload["schema"]
        with pytest.raises(ConfigurationError, match="schema"):
            PerfBaseline.from_dict(payload)

    def test_read_rejects_mismatched_file(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps(self._payload(schema=99)))
        with pytest.raises(ConfigurationError, match="schema=99"):
            PerfBaseline.read(path)


class TestMissingCellReporting:
    def _baseline(self, times):
        return PerfBaseline(
            scale="tiny", n_nodes=4, core_counts=(1, 2), times=times
        )

    def test_vanished_core_count_reported(self):
        old = self._baseline({"v5": {1: 2.0, 2: 1.0}})
        new = self._baseline({"v5": {1: 2.0}})
        diff = diff_baselines(old, new)
        assert diff.missing == [MissingCell("v5", 2)]
        assert diff.ok  # missing cells warn, they do not fail the gate

    def test_vanished_code_reported_once(self):
        old = self._baseline({"v4": {1: 2.0, 2: 1.0}, "v5": {1: 2.0}})
        new = self._baseline({"v5": {1: 2.0}})
        diff = diff_baselines(old, new)
        assert diff.missing == [MissingCell("v4", None)]

    def test_regressions_and_missing_together(self):
        old = self._baseline({"v5": {1: 1.0, 2: 1.0}})
        new = self._baseline({"v5": {1: 2.0}})
        diff = diff_baselines(old, new)
        assert len(diff.regressions) == 1
        assert diff.regressions[0].cores == 1
        assert diff.missing == [MissingCell("v5", 2)]
        assert not diff.ok
        # legacy iteration protocol still walks the regressions
        assert [r.cores for r in diff] == [1]

    def test_grown_grid_is_not_missing(self):
        old = self._baseline({"v5": {1: 2.0}})
        new = self._baseline({"v5": {1: 2.0, 2: 1.0}, "v4": {1: 2.0}})
        diff = diff_baselines(old, new)
        assert diff.missing == []
        assert diff.ok

    def test_cli_warns_on_missing_cells(self, capsys, tmp_path):
        out = tmp_path / "BENCH_new.json"
        from repro.__main__ import EXIT_OK, main

        assert main(["perf", "--scale", "tiny", "--out", str(out)]) == EXIT_OK
        data = json.loads(out.read_text())
        # fatten the baseline with a cell the fresh sweep will not have
        data["times"]["v5"]["99"] = 1.0
        doctored = tmp_path / "BENCH_doctored.json"
        doctored.write_text(json.dumps(data))
        assert (
            main(
                ["perf", "--scale", "tiny", "--out", str(out),
                 "--baseline", str(doctored)]
            )
            == EXIT_OK
        )
        printed = capsys.readouterr().out
        assert "WARNING v5@99c: missing from the new sweep" in printed
        assert "went missing" in printed


class TestCliJobs:
    def test_perf_parallel_cli_matches_committed_baseline(self, tmp_path, capsys):
        from repro.__main__ import EXIT_OK, main

        out = tmp_path / "BENCH_fig9_tiny.json"
        assert main(["perf", "--scale", "tiny", "--out", str(out), "-j", "2"]) == EXIT_OK
        printed = capsys.readouterr().out
        assert "no regressions" in printed
        assert "2 job(s)" in printed
        from repro.experiments.perf import baseline_path

        committed = json.loads(baseline_path("tiny").read_text())
        fresh = json.loads(out.read_text())
        assert fresh == committed
