"""Tests for the experiment drivers (at reduced scales for speed)."""

import pytest

from repro.experiments.ablations import (
    compare_load_balancing,
    sweep_priority_offsets,
    sweep_segment_height,
    sweep_write_organization,
)
from repro.experiments.calibration import (
    CORE_COUNTS,
    PAPER_MACHINE,
    PAPER_NODES,
    bench_scale,
    make_cluster,
    make_workload,
)
from repro.experiments.equivalence import run_equivalence
from repro.experiments.fig9 import fig9_shape_checks, run_fig9, run_point
from repro.experiments.traces import comm_vs_gemm_share, run_fig10_11, run_fig12_13
from repro.sim.cost import MachineModel


class TestCalibration:
    def test_paper_machine_matches_model_defaults(self):
        """The pinned calibration and the MachineModel defaults must not
        drift apart silently."""
        assert PAPER_MACHINE == MachineModel()

    def test_paper_constants(self):
        assert PAPER_NODES == 32
        assert CORE_COUNTS == (1, 3, 7, 11, 15)

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert bench_scale() == "paper"
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert bench_scale() == "tiny"

    def test_make_cluster_and_workload(self):
        cluster = make_cluster(2, n_nodes=4)
        workload = make_workload(cluster, scale="tiny")
        assert workload.subroutine.n_chains > 0
        assert cluster.machine is PAPER_MACHINE


class TestFig9Small:
    """The sweep machinery at 'tiny' scale on 4 nodes."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(scale="tiny", core_counts=(1, 2), n_nodes=4)

    def test_all_cells_present_and_positive(self, result):
        assert set(result.times) == {"original", "v1", "v2", "v3", "v4", "v5"}
        for series in result.times.values():
            assert set(series) == {1, 2}
            assert all(t > 0 for t in series.values())

    def test_more_cores_help_everyone_at_tiny_scale(self, result):
        for code, series in result.times.items():
            assert series[2] < series[1], code

    def test_table_renders(self, result):
        table = result.table()
        assert "original" in table and "v5" in table

    def test_best_original(self, result):
        cores, time = result.best_original()
        assert cores == 2
        assert time == result.times["original"][2]

    def test_run_point_deterministic(self):
        a = run_point("v4", 2, scale="tiny", n_nodes=4)
        b = run_point("v4", 2, scale="tiny", n_nodes=4)
        assert a == b

    def test_shape_checks_report_names(self):
        # shape checks need the full core grid; build a synthetic result
        from repro.experiments.fig9 import Fig9Result

        times = {
            "original": {1: 91.4, 3: 38.3, 7: 28.3, 11: 27.9, 15: 28.7},
            "v1": {1: 82.2, 3: 29.5, 7: 17.4, 11: 14.1, 15: 13.1},
            "v2": {1: 85.6, 3: 30.6, 7: 16.2, 11: 12.2, 15: 10.4},
            "v3": {1: 85.6, 3: 28.6, 7: 12.6, 11: 10.0, 15: 8.67},
            "v4": {1: 85.6, 3: 28.6, 7: 12.6, 11: 10.0, 15: 8.66},
            "v5": {1: 85.8, 3: 28.7, 7: 12.5, 11: 10.0, 15: 8.66},
        }
        result = Fig9Result(times, (1, 3, 7, 11, 15), "paper", 32)
        checks = fig9_shape_checks(result)
        assert len(checks) == 10
        failed = [c for c in checks if not c.passed]
        assert not failed, [f"{c.name}: {c.detail}" for c in failed]
        assert "2.1x" in result.summary_table()


class TestTraceExperiments:
    def test_fig10_11_priorities_reduce_startup_idle(self):
        # the network-flood contrast needs a non-trivial message load,
        # so this test runs at 'small' scale; the benchmark asserts the
        # same at paper scale
        v4, v2 = run_fig10_11(scale="small", n_nodes=8)
        assert v2.startup_idle > v4.startup_idle
        assert v2.execution_time >= v4.execution_time * 0.98
        assert "trace of v2" in v2.name

    def test_fig12_13_original_has_no_overlap_and_heavy_comm(self):
        original = run_fig12_13(scale="tiny", n_nodes=4)
        # within-thread overlap is structurally zero for blocking code —
        # exactly the paper's Figure 12 point
        assert original.overlap == 0.0
        assert original.comm_fraction > 0.05
        assert comm_vs_gemm_share(original) > 0.1
        gantt = original.gantt(width=60, max_rows=4)
        assert "G" in gantt and "c" in gantt

    def test_trace_has_events(self):
        original = run_fig12_13(scale="tiny", n_nodes=4)
        assert len(original.trace) > 0


class TestEquivalence:
    def test_all_implementations_agree(self):
        result = run_equivalence(scale="tiny", n_nodes=4)
        assert set(result.energies) == {
            "reference",
            "original",
            "v1",
            "v2",
            "v3",
            "v4",
            "v5",
        }
        assert result.max_relative_spread < 1e-13
        assert result.agrees_to_digits() >= 13.0


class TestAblations:
    def test_priority_offset_sweep_returns_all_offsets(self):
        times = sweep_priority_offsets(offsets=(0, 5), scale="tiny", cores_per_node=2)
        assert set(times) == {0, 5}
        assert all(t > 0 for t in times.values())

    def test_segment_height_sweep(self):
        times = sweep_segment_height(heights=(1, None), scale="tiny", cores_per_node=2)
        assert set(times) == {"height-1", "full-chain"}

    def test_write_organization_sweep(self):
        times = sweep_write_organization(
            mutex_costs=(1e-6,), scale="tiny", cores_per_node=2
        )
        (cell,) = times.values()
        assert set(cell) == {"single-write (v5)", "parallel-write"}

    def test_load_balancing_comparison(self):
        times = compare_load_balancing(scale="tiny", cores_per_node=2, n_nodes=4)
        assert len(times) == 3
        assert all(t > 0 for t in times.values())
