"""Unit + property tests for orbital tiling and block-tensor layout."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.tce.orbital_space import OrbitalSpace, Tile
from repro.tce.tensor import BlockLayout, BlockTensor
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


class TestOrbitalSpace:
    def test_exact_tiling(self):
        space = OrbitalSpace(nocc=8, nvirt=16, tile_size=4)
        assert [t.size for t in space.holes] == [4, 4]
        assert [t.size for t in space.particles] == [4, 4, 4, 4]
        assert space.n_basis == 24

    def test_ragged_trailing_tile(self):
        space = OrbitalSpace(nocc=10, nvirt=7, tile_size=4)
        assert [t.size for t in space.holes] == [4, 4, 2]
        assert [t.size for t in space.particles] == [4, 3]

    def test_offsets_are_cumulative(self):
        space = OrbitalSpace(nocc=10, nvirt=5, tile_size=4)
        assert [t.offset for t in space.holes] == [0, 4, 8]

    def test_beta_carotene_dimensions(self):
        from repro.tce.molecules import beta_carotene

        system = beta_carotene(tile_size=40)
        assert system.n_basis == 472  # the number the paper quotes
        space = system.orbital_space()
        assert space.n_hole_tiles == 4
        assert space.n_particle_tiles == 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OrbitalSpace(0, 5, 2)
        with pytest.raises(ConfigurationError):
            OrbitalSpace(5, 5, 0)
        with pytest.raises(ConfigurationError):
            Tile("x", 0, 4, 0)
        with pytest.raises(ConfigurationError):
            OrbitalSpace(4, 4, 2).tiles("q")

    @given(
        nocc=st.integers(min_value=1, max_value=200),
        nvirt=st.integers(min_value=1, max_value=400),
        tile=st.integers(min_value=1, max_value=50),
    )
    def test_tiles_cover_ranges_exactly(self, nocc, nvirt, tile):
        space = OrbitalSpace(nocc, nvirt, tile)
        assert sum(t.size for t in space.holes) == nocc
        assert sum(t.size for t in space.particles) == nvirt
        for tiles in (space.holes, space.particles):
            cursor = 0
            for t in tiles:
                assert t.offset == cursor
                assert 1 <= t.size <= tile
                cursor += t.size


def make_ga(n_nodes=3, data_mode=DataMode.REAL):
    cluster = Cluster(ClusterConfig(n_nodes=n_nodes, data_mode=data_mode))
    return cluster, GlobalArrays(cluster)


class TestBlockLayout:
    def test_blocks_tile_flat_range(self):
        space = OrbitalSpace(8, 16, 4)
        layout = BlockLayout(space, "hp")
        cursor = 0
        for key in layout.keys():
            lo, hi = layout.block_range(key)
            assert lo == cursor
            assert hi - lo == layout.block_size(key)
            cursor = hi
        assert cursor == layout.total == 8 * 16

    def test_block_shape_matches_tiles(self):
        space = OrbitalSpace(10, 7, 4)  # ragged tiles
        layout = BlockLayout(space, "hpp")
        assert layout.block_shape((2, 1, 0)) == (2, 3, 4)

    def test_keep_predicate_restricts_storage(self):
        space = OrbitalSpace(8, 16, 4)
        layout = BlockLayout(space, "pp", keep=lambda key: key[0] <= key[1])
        assert layout.n_blocks == 10  # 4 choose 2 + diagonal
        assert (1, 0) not in layout
        assert (0, 1) in layout

    def test_unknown_block_rejected(self):
        layout = BlockLayout(OrbitalSpace(8, 16, 4), "h")
        with pytest.raises(ConfigurationError):
            layout.block_range((9,))

    def test_empty_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockLayout(OrbitalSpace(8, 16, 4), "")

    def test_total_equals_full_dense_size_without_keep(self):
        space = OrbitalSpace(6, 9, 3)
        layout = BlockLayout(space, "hphh")
        assert layout.total == 6 * 9 * 6 * 6


class TestBlockTensor:
    def test_create_allocates_matching_ga(self):
        cluster, ga = make_ga()
        tensor = BlockTensor.create(ga, "t2", OrbitalSpace(8, 16, 4), "hh")
        assert tensor.total == 64
        assert tensor.array.total == 64

    def test_fill_and_read_block(self):
        cluster, ga = make_ga()
        space = OrbitalSpace(8, 16, 4)
        tensor = BlockTensor.create(ga, "v", space, "hp")
        tensor.fill_random(RngStream(1, "x"))
        block = tensor.block_values((1, 2))
        lo, hi = tensor.block_range((1, 2))
        np.testing.assert_array_equal(block.reshape(-1), tensor.flat_values()[lo:hi])
        assert block.shape == (4, 4)

    def test_fill_is_deterministic(self):
        def values():
            cluster, ga = make_ga()
            tensor = BlockTensor.create(ga, "v", OrbitalSpace(8, 16, 4), "hp")
            tensor.fill_random(RngStream(42, "seed"))
            return tensor.flat_values()

        np.testing.assert_array_equal(values(), values())

    def test_synth_mode_fill_is_noop(self):
        cluster, ga = make_ga(data_mode=DataMode.SYNTH)
        tensor = BlockTensor.create(ga, "v", OrbitalSpace(8, 16, 4), "hp")
        tensor.fill_random(RngStream(1, "x"))  # must not raise
        assert not tensor.array.holds_data

    def test_huge_synth_tensor_allocates_no_storage(self):
        # beta-carotene's va tensor is ~5e9 elements; SYNTH mode must
        # handle it with pure offset arithmetic
        cluster, ga = make_ga(n_nodes=32, data_mode=DataMode.SYNTH)
        space = OrbitalSpace(148, 324, 40)
        tensor = BlockTensor.create(ga, "va", space, "hppp")
        assert tensor.total == 148 * 324**3
        lo, hi = tensor.block_range((3, 8, 8, 8))
        assert hi - lo == 28 * 4 * 4 * 4
