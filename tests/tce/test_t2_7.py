"""Tests for the icsd_t2_7 workload generator and the dense reference."""

import numpy as np
import pytest

from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.tce.molecules import (
    SCALE_PRESETS,
    beta_carotene,
    system_for_scale,
    tiny_system,
)
from repro.tce.reference import chain_output, compute_reference, correlation_energy
from repro.tce.t2_7 import build_t2_7
from repro.util.errors import ConfigurationError


def make_workload(system=None, data_mode=DataMode.REAL, seed=7, symmetry_filter=True):
    system = system or tiny_system()
    cluster = Cluster(ClusterConfig(n_nodes=4, cores_per_node=2, data_mode=data_mode))
    ga = GlobalArrays(cluster)
    return build_t2_7(
        cluster, ga, system.orbital_space(), seed=seed, symmetry_filter=symmetry_filter
    )


class TestChainStructure:
    def test_chain_keys_cover_unique_tile_pairs(self):
        workload = make_workload(symmetry_filter=False)
        space = workload.space
        keys = {chain.key for chain in workload.subroutine.chains}
        expected = {
            (p3, p4, h1, h2)
            for p3 in range(space.n_particle_tiles)
            for p4 in range(p3, space.n_particle_tiles)
            for h1 in range(space.n_hole_tiles)
            for h2 in range(h1, space.n_hole_tiles)
        }
        assert keys == expected

    def test_chain_ids_sequential_in_program_order(self):
        workload = make_workload()
        ids = [chain.chain_id for chain in workload.subroutine.chains]
        assert ids == list(range(len(ids)))

    def test_unfiltered_chain_length_is_full_contraction_space(self):
        workload = make_workload(symmetry_filter=False)
        space = workload.space
        expected = space.n_hole_tiles * space.n_particle_tiles
        assert all(c.length == expected for c in workload.subroutine.chains)

    def test_symmetry_filter_keeps_half_the_iterations(self):
        filtered = make_workload(symmetry_filter=True).subroutine
        unfiltered = make_workload(symmetry_filter=False).subroutine
        assert 0 < filtered.n_gemms < unfiltered.n_gemms
        # the parity rule keeps exactly half when tile counts are even
        assert filtered.n_gemms == unfiltered.n_gemms // 2

    def test_gemm_positions_are_dense_within_chain(self):
        workload = make_workload()
        for chain in workload.subroutine.chains:
            assert [g.position for g in chain.gemms] == list(range(chain.length))

    def test_gemm_shapes_match_tiles(self):
        workload = make_workload()
        space = workload.space
        chain = workload.subroutine.chains[0]
        p3b, p4b, h1b, h2b = chain.key
        assert chain.m == space.particles[p3b].size * space.particles[p4b].size
        assert chain.n == space.holes[h1b].size * space.holes[h2b].size
        for gemm in chain.gemms:
            h7b, p5b = gemm.a.key[0], gemm.a.key[1]
            assert gemm.k == space.holes[h7b].size * space.particles[p5b].size
            assert gemm.a.key == (h7b, p5b, p3b, p4b)
            assert gemm.b.key == (h7b, p5b, h1b, h2b)

    def test_operand_refs_resolve_into_tensors(self):
        workload = make_workload()
        gemm = workload.subroutine.chains[0].gemms[0]
        assert gemm.a.tensor is workload.va
        assert gemm.b.tensor is workload.tb
        assert gemm.a.size == gemm.k * gemm.m
        assert gemm.b.size == gemm.k * gemm.n


class TestSortWrites:
    def test_four_branches_always_present(self):
        workload = make_workload()
        for chain in workload.subroutine.chains:
            assert len(chain.sort_writes) == 4

    def test_guard_counts_one_two_or_four(self):
        """The paper: 'one, two, or four SORT operations'."""
        workload = make_workload()
        counts = {len(chain.active_sorts) for chain in workload.subroutine.chains}
        assert counts <= {1, 2, 4}
        assert 1 in counts  # generic off-diagonal chains
        assert 4 in counts  # fully diagonal chains (p3b==p4b, h1b==h2b)

    def test_guards_match_paper_predicates(self):
        workload = make_workload()
        for chain in workload.subroutine.chains:
            p3b, p4b, h1b, h2b = chain.key
            expected = [
                p3b <= p4b and h1b <= h2b,
                p3b <= p4b and h2b <= h1b,
                p4b <= p3b and h1b <= h2b,
                p4b <= p3b and h2b <= h1b,
            ]
            assert [sw.guard for sw in chain.sort_writes] == expected

    def test_sort_targets_are_permuted_blocks_of_i2(self):
        workload = make_workload()
        chain = workload.subroutine.chains[0]
        p3b, p4b, h1b, h2b = chain.key
        targets = [sw.target.key for sw in chain.sort_writes]
        assert targets == [
            (p3b, p4b, h1b, h2b),
            (p3b, p4b, h2b, h1b),
            (p4b, p3b, h1b, h2b),
            (p4b, p3b, h2b, h1b),
        ]
        for sw in chain.sort_writes:
            assert sw.target.tensor is workload.i2

    def test_signs_follow_antisymmetry(self):
        workload = make_workload()
        signs = [sw.sign for sw in workload.subroutine.chains[0].sort_writes]
        assert signs == [+1.0, -1.0, -1.0, +1.0]


class TestWorkloadScales:
    def test_tiny_counts(self):
        sub = make_workload(tiny_system()).subroutine
        # 4 p-pairs choose-2 +diag = 10, h pairs = 3 -> 30 chains
        assert sub.n_chains == 30

    def test_paper_scale_structure_without_data(self):
        cluster = Cluster(
            ClusterConfig(n_nodes=32, cores_per_node=1, data_mode=DataMode.SYNTH)
        )
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, beta_carotene(40).orbital_space())
        sub = workload.subroutine
        # 9 particle tiles -> 45 unique pairs; 4 hole tiles -> 10 pairs
        assert sub.n_chains == 450
        assert sub.n_gemms == 450 * 18  # symmetry filter halves 4*9=36
        assert sub.max_chain_length == 18

    def test_scale_presets_exist(self):
        assert set(SCALE_PRESETS) == {"tiny", "small", "paper", "full"}
        assert system_for_scale("paper").n_basis == 472
        with pytest.raises(ConfigurationError):
            system_for_scale("bogus")

    def test_describe_mentions_counts(self):
        sub = make_workload().subroutine
        text = sub.describe()
        assert "icsd_t2_7" in text
        assert str(sub.n_chains) in text


class TestReference:
    def test_chain_output_matches_manual_einsum(self):
        workload = make_workload()
        chain = workload.subroutine.chains[0]
        va = workload.va.flat_values()
        tb = workload.tb.flat_values()
        expected = np.zeros((chain.m, chain.n))
        for gemm in chain.gemms:
            a = va[gemm.a.lo : gemm.a.hi].reshape(gemm.k, gemm.m)
            b = tb[gemm.b.lo : gemm.b.hi].reshape(gemm.k, gemm.n)
            expected += np.einsum("km,kn->mn", a, b)
        np.testing.assert_allclose(chain_output(chain, {}), expected, rtol=1e-13)

    def test_reference_is_deterministic(self):
        ref1 = compute_reference(make_workload(seed=11))
        ref2 = compute_reference(make_workload(seed=11))
        np.testing.assert_array_equal(ref1, ref2)

    def test_reference_changes_with_seed(self):
        ref1 = compute_reference(make_workload(seed=1))
        ref2 = compute_reference(make_workload(seed=2))
        assert not np.allclose(ref1, ref2)

    def test_reference_nonzero(self):
        assert np.linalg.norm(compute_reference(make_workload())) > 0

    def test_reference_rejects_synth_mode(self):
        workload = make_workload(data_mode=DataMode.SYNTH)
        with pytest.raises(ValueError):
            compute_reference(workload)

    def test_diagonal_chain_writes_respect_permutation_symmetry(self):
        """For a fully diagonal chain all four sorts target the same block;
        the accumulated block must equal C - C_swapped_h - C_swapped_p + C_both."""
        workload = make_workload(symmetry_filter=False)
        diag = next(
            c
            for c in workload.subroutine.chains
            if c.key[0] == c.key[1] and c.key[2] == c.key[3]
        )
        assert len(diag.active_sorts) == 4
        C = chain_output(diag, {}).reshape(diag.tile_shape)
        expected = (
            C
            - np.transpose(C, (0, 1, 3, 2))
            - np.transpose(C, (1, 0, 2, 3))
            + np.transpose(C, (1, 0, 3, 2))
        )
        # extract this block's contribution from a reference computed
        # with only this chain active
        contrib = np.zeros(diag.c_size).reshape(diag.tile_shape)
        for sw in diag.active_sorts:
            contrib += sw.sign * np.transpose(C, sw.perm)
        np.testing.assert_allclose(contrib, expected, rtol=1e-13)

    def test_correlation_energy_probe_sensitivity(self):
        ref = compute_reference(make_workload())
        energy = correlation_energy(ref)
        perturbed = ref.copy()
        perturbed[3] += 1e-9
        assert correlation_energy(perturbed) != energy
        assert correlation_energy(ref) == energy  # pure function
