"""Tests for generic contraction terms and the 7-level CC iteration."""

import numpy as np
import pytest

from repro.core.executor import run_ptg
from repro.core.integration import NwchemDriver
from repro.core.variants import V4, V5
from repro.ga.runtime import GlobalArrays
from repro.legacy.runtime import LegacyRuntime
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.tce.cc_iteration import DEFAULT_ITERATION_TERMS, build_ccsd_iteration
from repro.tce.molecules import tiny_system
from repro.tce.reference import (
    compute_iteration_reference,
    compute_subroutine_reference,
    correlation_energy,
)
from repro.tce.terms import TermBuilder, TermSpec, build_term
from repro.util.errors import ConfigurationError


def make_env(n_nodes=4, cores=2, data_mode=DataMode.REAL):
    cluster = Cluster(
        ClusterConfig(n_nodes=n_nodes, cores_per_node=cores, data_mode=data_mode)
    )
    return cluster, GlobalArrays(cluster)


class TestTermSpec:
    def test_operand_dims_derived_from_contraction(self):
        ring = TermSpec("ring", "hp")
        assert ring.a_dims == "hppp" and ring.b_dims == "hphh"
        ladder = TermSpec("ladder", "pp")
        assert ladder.a_dims == "pppp" and ladder.b_dims == "pphh"
        one = TermSpec("one", "h")
        assert one.a_dims == "hpp" and one.b_dims == "hhh"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TermSpec("bad", "")
        with pytest.raises(ConfigurationError):
            TermSpec("bad", "hpx"[0:3])
        with pytest.raises(ConfigurationError):
            TermSpec("bad", "xy"[0:2])


class TestTermBuilder:
    @pytest.mark.parametrize("contraction", ["hp", "hh", "pp", "h", "p"])
    def test_every_contraction_kind_builds_and_verifies(self, contraction):
        cluster, ga = make_env()
        space = tiny_system().orbital_space()
        sub = build_term(ga, space, TermSpec(f"t_{contraction}", contraction))
        assert sub.n_chains > 0
        # chain length = kept contraction tuples
        expected_total = 1
        for kind in contraction:
            expected_total *= len(space.tiles(kind))
        assert all(0 < c.length <= expected_total for c in sub.chains)
        # numerics check through the legacy runtime
        LegacyRuntime(cluster, ga).execute_subroutine(sub)
        expected = compute_subroutine_reference(sub)
        np.testing.assert_allclose(
            sub.output.flat_values(), expected, rtol=1e-12, atol=1e-12
        )

    def test_tensor_pool_shares_operands_across_terms(self):
        cluster, ga = make_env()
        builder = TermBuilder(ga, tiny_system().orbital_space())
        sub_a = builder.build(TermSpec("a", "hp"))
        sub_b = builder.build(TermSpec("b", "hp"))
        assert sub_a.inputs[0] is sub_b.inputs[0]
        assert sub_a.inputs[1] is sub_b.inputs[1]
        assert sub_a.output is sub_b.output

    def test_distinct_contractions_use_distinct_tensors(self):
        cluster, ga = make_env()
        builder = TermBuilder(ga, tiny_system().orbital_space())
        ring = builder.build(TermSpec("ring", "hp"))
        ladder = builder.build(TermSpec("ladder", "pp"))
        assert ring.inputs[0] is not ladder.inputs[0]

    def test_ladder_term_over_parsec_matches_reference(self):
        cluster, ga = make_env()
        sub = build_term(ga, tiny_system().orbital_space(), TermSpec("lad", "pp"))
        run_ptg(cluster, sub, V5)
        expected = compute_subroutine_reference(sub)
        np.testing.assert_allclose(
            sub.output.flat_values(), expected, rtol=1e-12, atol=1e-12
        )

    def test_one_index_term_over_parsec_matches_reference(self):
        cluster, ga = make_env()
        sub = build_term(ga, tiny_system().orbital_space(), TermSpec("one", "h"))
        run_ptg(cluster, sub, V4)
        expected = compute_subroutine_reference(sub)
        np.testing.assert_allclose(
            sub.output.flat_values(), expected, rtol=1e-12, atol=1e-12
        )


class TestCcsdIteration:
    def test_default_table_has_seven_levels(self):
        levels = {spec.level for spec in DEFAULT_ITERATION_TERMS}
        assert levels == set(range(7))
        names = [spec.name for spec in DEFAULT_ITERATION_TERMS]
        assert "icsd_t2_7" in names
        assert len(names) == len(set(names))

    def test_build_iteration_structure(self):
        cluster, ga = make_env()
        iteration = build_ccsd_iteration(ga, tiny_system().orbital_space())
        assert iteration.n_levels == 7
        assert len(iteration.subroutines) == 14
        assert iteration.total_gemms > 0
        assert all(len(level) == 2 for level in iteration.levels())
        assert iteration.subroutine("icsd_t2_7").level == 3
        with pytest.raises(KeyError):
            iteration.subroutine("missing")

    def test_chain_levels_renumber_densely(self):
        cluster, ga = make_env()
        iteration = build_ccsd_iteration(ga, tiny_system().orbital_space())
        for level in iteration.chain_levels():
            assert [c.chain_id for c in level] == list(range(len(level)))

    def test_legacy_full_iteration_matches_reference(self):
        cluster, ga = make_env()
        iteration = build_ccsd_iteration(ga, tiny_system().orbital_space())
        LegacyRuntime(cluster, ga).execute(iteration.chain_levels())
        expected = compute_iteration_reference(iteration.subroutines)
        np.testing.assert_allclose(
            iteration.i2.flat_values(), expected, rtol=1e-12, atol=1e-12
        )

    def test_mixed_driver_iteration_matches_reference(self):
        """Port only icsd_t2_7 + the ladders; the rest stays legacy."""
        cluster, ga = make_env()
        iteration = build_ccsd_iteration(ga, tiny_system().orbital_space())
        driver = NwchemDriver(
            cluster, ga, parsec_kernels={"icsd_t2_7", "icsd_t2_8", "icsd_t2_13"}
        )
        result = driver.run(iteration.subroutines)
        modes = {k.name: k.mode for k in result.kernels}
        assert modes["icsd_t2_7"] == "parsec"
        assert modes["icsd_t2_1"] == "legacy"
        expected = compute_iteration_reference(iteration.subroutines)
        np.testing.assert_allclose(
            iteration.i2.flat_values(), expected, rtol=1e-12, atol=1e-12
        )

    def test_fully_ported_iteration_energy_matches_legacy(self):
        def run(parsec_kernels):
            cluster, ga = make_env()
            iteration = build_ccsd_iteration(ga, tiny_system().orbital_space())
            driver = NwchemDriver(cluster, ga, parsec_kernels=parsec_kernels)
            driver.run(iteration.subroutines)
            return correlation_energy(iteration.i2.flat_values())

        legacy_energy = run(parsec_kernels=set())
        parsec_energy = run(parsec_kernels=None)  # all ported
        assert parsec_energy == pytest.approx(legacy_energy, rel=1e-13)

    def test_iteration_reference_requires_subroutines(self):
        with pytest.raises(ValueError):
            compute_iteration_reference([])
