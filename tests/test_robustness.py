"""Failure injection and robustness tests.

The simulation must fail loudly and diagnosably: a task body that
raises, a PTG whose dataflow stalls, a GA range that escapes its array,
or a corrupted metadata structure should each surface a clear error —
never a silent hang or wrong numbers.
"""

import numpy as np
import pytest

from repro.core.executor import run_ptg
from repro.core.variants import V5
from repro.ga.runtime import GlobalArrays
from repro.legacy.runtime import LegacyRuntime
from repro.parsec.ptg import PTG
from repro.parsec.runtime import ParsecRuntime
from repro.parsec.taskclass import Dep, Flow, FlowMode, TaskClass
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.cost import OpCost
from repro.tce.molecules import tiny_system
from repro.tce.reference import compute_reference
from repro.tce.t2_7 import build_t2_7
from repro.util.errors import DataflowError, GlobalArrayError, SimulationError
from types import SimpleNamespace


def make_cluster(**kwargs):
    defaults = dict(n_nodes=2, cores_per_node=2)
    defaults.update(kwargs)
    return Cluster(ClusterConfig(**defaults))


class TestTaskBodyFailures:
    def build_ptg(self, body):
        ptg = PTG("failing")
        ptg.add(
            TaskClass(
                name="T",
                params=("i",),
                domain=lambda md: [(i,) for i in range(3)],
                placement=lambda p, md: 0,
                run=body,
                flows=[Flow("C", FlowMode.WRITE, lambda p, md: 1)],
            )
        )
        return ptg

    def test_raising_body_surfaces_with_process_name(self):
        def body(ctx):
            yield from ctx.charge(OpCost(0.1, 0.0))
            if ctx.params[0] == 1:
                raise RuntimeError("injected task failure")

        cluster = make_cluster()
        runtime = ParsecRuntime(cluster)
        with pytest.raises(SimulationError, match="parsec.worker") as exc_info:
            runtime.execute(self.build_ptg(body), SimpleNamespace())
        assert isinstance(exc_info.value.__cause__, RuntimeError)

    def test_body_forgetting_output_fails_at_consumer(self):
        """A producer that never sets its output delivers None; a REAL
        consumer that needs the data fails visibly."""
        md = SimpleNamespace()
        ptg = PTG("none-flow")

        def producer(ctx):
            yield from ctx.charge(OpCost(0.0, 0.0))
            # forgot: ctx.outputs["C"] = ...

        def consumer(ctx):
            yield from ctx.charge(OpCost(0.0, 0.0))
            assert ctx.inputs["C"] is None  # documented behaviour

        ptg.add(
            TaskClass(
                name="P",
                params=(),
                domain=lambda md: [()],
                placement=lambda p, md: 0,
                run=producer,
                flows=[
                    Flow(
                        "C",
                        FlowMode.WRITE,
                        lambda p, md: 1,
                        outputs=[Dep("C2", lambda p, md: (), "C")],
                    )
                ],
            )
        )
        ptg.add(
            TaskClass(
                name="C2",
                params=(),
                domain=lambda md: [()],
                placement=lambda p, md: 0,
                run=consumer,
                flows=[
                    Flow(
                        "C",
                        FlowMode.READ,
                        lambda p, md: 1,
                        inputs=[Dep("P", lambda p, md: (), "C")],
                    )
                ],
            )
        )
        result = ParsecRuntime(make_cluster()).execute(ptg, md)
        assert result.n_tasks == 2


class TestStallDetection:
    def test_unvalidated_stalling_graph_raises_with_stuck_tasks(self):
        """With validation off, a starving consumer stalls; execute()
        must diagnose it rather than return silently."""
        md = SimpleNamespace()
        ptg = PTG("stall")
        ptg.add(
            TaskClass(
                name="WAITER",
                params=(),
                domain=lambda md: [()],
                placement=lambda p, md: 0,
                run=lambda ctx: iter(()),
                flows=[
                    Flow(
                        "C",
                        FlowMode.READ,
                        lambda p, md: 1,
                        # references a task that never produces it
                        inputs=[Dep("WAITER", lambda p, md: (1,), "C")],
                    )
                ],
            )
        )
        runtime = ParsecRuntime(make_cluster())
        with pytest.raises(DataflowError, match="stalled"):
            runtime.execute(ptg, md, validate=False)

    def test_validation_catches_it_up_front(self):
        md = SimpleNamespace()
        ptg = PTG("stall2")
        ptg.add(
            TaskClass(
                name="WAITER",
                params=(),
                domain=lambda md: [()],
                placement=lambda p, md: 0,
                run=lambda ctx: iter(()),
                flows=[
                    Flow(
                        "C",
                        FlowMode.READ,
                        lambda p, md: 1,
                        inputs=[Dep("GHOST", lambda p, md: (), "C")],
                    )
                ],
            )
        )
        with pytest.raises(DataflowError):
            ParsecRuntime(make_cluster()).execute(ptg, md)


class TestGaRobustness:
    def test_fetch_out_of_bounds(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("t", 10)
        with pytest.raises(GlobalArrayError):
            # range validation happens at segment computation, eagerly
            list(ga.fetch(0, array, 5, 20))

    def test_direct_ops_out_of_bounds(self):
        cluster = make_cluster(data_mode=DataMode.REAL)
        ga = GlobalArrays(cluster)
        array = ga.create("t", 10)
        with pytest.raises(GlobalArrayError):
            array.read_range_direct(-1, 5)
        with pytest.raises(GlobalArrayError):
            array.accumulate_range_direct(5, 20, np.zeros(15))

    def test_destroyed_array_rejected_mid_program(self):
        cluster = make_cluster(data_mode=DataMode.REAL)
        ga = GlobalArrays(cluster)
        array = ga.create("t", 10)
        array.destroy()

        def reader():
            yield from ga.fetch(0, array, 0, 5)

        cluster.engine.process(reader())
        with pytest.raises(SimulationError) as exc_info:
            cluster.run()
        assert isinstance(exc_info.value.__cause__, GlobalArrayError)


class TestRepeatability:
    def test_running_the_subroutine_twice_doubles_i2(self):
        """Accumulation linearity: the machinery is re-runnable and the
        GA accumulate semantics are exact."""
        cluster = Cluster(
            ClusterConfig(n_nodes=4, cores_per_node=2, data_mode=DataMode.REAL)
        )
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
        expected = compute_reference(workload)
        LegacyRuntime(cluster, ga).execute_subroutine(workload.subroutine)
        run_ptg(cluster, workload.subroutine, V5)
        np.testing.assert_allclose(
            workload.i2.flat_values(), 2.0 * expected, rtol=1e-12, atol=1e-12
        )

    def test_three_parsec_sections_on_one_cluster(self):
        """Repeated PaRSEC launches must not interfere (distinct comm
        inboxes, fresh schedulers)."""
        cluster = Cluster(
            ClusterConfig(n_nodes=4, cores_per_node=2, data_mode=DataMode.REAL)
        )
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
        expected = compute_reference(workload)
        for _ in range(3):
            run_ptg(cluster, workload.subroutine, V5)
        np.testing.assert_allclose(
            workload.i2.flat_values(), 3.0 * expected, rtol=1e-12, atol=1e-12
        )
