"""Tests of the structured RunReport and its JSONL serialization."""

from repro.obs import RUN_REPORT_SCHEMA_VERSION, RunReport, read_jsonl, write_jsonl


def sample_report(**overrides) -> RunReport:
    kwargs = dict(
        runtime="parsec",
        workload="icsd_t2_7",
        execution_time=0.125,
        n_tasks=510,
        variant="v5",
        scale="tiny",
        n_nodes=4,
        cores_per_node=2,
        data_mode="real",
        seed=7,
        phases={"execution": {"virtual_s": 0.125, "count": 1}},
        metrics={"counters": {"net.bytes": 1024.0}, "gauges": {}, "histograms": {}},
        trace_stats={"n_events": 510},
        recovery={"task_retries": 0},
    )
    kwargs.update(overrides)
    return RunReport(**kwargs)


class TestRunReport:
    def test_schema_version_stamped(self):
        assert sample_report().schema == RUN_REPORT_SCHEMA_VERSION

    def test_json_line_round_trip(self):
        report = sample_report()
        line = report.to_json_line()
        assert "\n" not in line
        back = RunReport.from_json_line(line)
        assert back == report

    def test_json_line_is_deterministic(self):
        assert sample_report().to_json_line() == sample_report().to_json_line()

    def test_from_dict_ignores_unknown_keys(self):
        d = sample_report().to_dict()
        d["added_in_schema_99"] = True
        back = RunReport.from_dict(d)
        assert back == sample_report()

    def test_defaults_are_independent_instances(self):
        a, b = RunReport("parsec", "w", 1.0, 2), RunReport("legacy", "w", 1.0, 2)
        a.extra["k"] = "v"
        assert b.extra == {}


class TestJsonl:
    def test_write_then_read(self, tmp_path):
        reports = [sample_report(), sample_report(runtime="legacy", variant=None)]
        path = write_jsonl(reports, tmp_path / "runs.jsonl")
        back = read_jsonl(path)
        assert back == reports

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(sample_report().to_json_line() + "\n\n\n")
        assert len(read_jsonl(path)) == 1
