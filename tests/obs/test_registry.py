"""Tests of the metrics registry: counters, gauges, histograms, phases."""

import pytest

from repro.obs import DEFAULT_BUCKET_EDGES, NULL_METRICS, MetricsRegistry


class TestCounters:
    def test_inc_accumulates(self):
        m = MetricsRegistry()
        m.inc("x")
        m.inc("x", 2.5)
        assert m.counter_value("x") == 3.5

    def test_labels_are_separate_series(self):
        m = MetricsRegistry()
        m.inc("bytes", 10, src=0, dst=1)
        m.inc("bytes", 20, src=1, dst=0)
        m.inc("bytes", 5, src=0, dst=1)
        assert m.counter_value("bytes", src=0, dst=1) == 15
        assert m.counter_value("bytes", src=1, dst=0) == 20
        assert m.counter_total("bytes") == 35

    def test_label_order_does_not_matter(self):
        m = MetricsRegistry()
        m.inc("x", 1, a=1, b=2)
        m.inc("x", 1, b=2, a=1)
        assert m.counter_value("x", a=1, b=2) == 2

    def test_missing_counter_reads_zero(self):
        m = MetricsRegistry()
        assert m.counter_value("never") == 0.0
        assert m.counter_total("never") == 0.0


class TestGauges:
    def test_gauge_set_overwrites(self):
        m = MetricsRegistry()
        m.gauge_set("depth", 5)
        m.gauge_set("depth", 2)
        assert m.gauge_value("depth") == 2

    def test_gauge_max_keeps_high_water_mark(self):
        m = MetricsRegistry()
        m.gauge_max("hwm", 3, node=0)
        m.gauge_max("hwm", 9, node=0)
        m.gauge_max("hwm", 4, node=0)
        assert m.gauge_value("hwm", node=0) == 9


class TestHistograms:
    def test_observe_tracks_count_sum_min_max(self):
        m = MetricsRegistry()
        for v in (1.0, 10.0, 100.0):
            m.observe("lat", v)
        snap = m.snapshot()["histograms"]["lat"]
        assert snap["count"] == 3
        assert snap["sum"] == 111.0
        assert snap["min"] == 1.0
        assert snap["max"] == 100.0

    def test_bucket_assignment_uses_le_edges(self):
        m = MetricsRegistry()
        m.observe("v", 0.5, edges=(1.0, 10.0))
        m.observe("v", 5.0, edges=(1.0, 10.0))
        m.observe("v", 50.0, edges=(1.0, 10.0))
        buckets = m.snapshot()["histograms"]["v"]["buckets"]
        assert buckets["1.0"] == 1
        assert buckets["10.0"] == 1
        assert buckets["inf"] == 1

    def test_default_edges_span_nanoseconds_to_terascale(self):
        assert DEFAULT_BUCKET_EDGES[0] == pytest.approx(1e-9)
        assert DEFAULT_BUCKET_EDGES[-1] == pytest.approx(1e12)


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        m = MetricsRegistry(enabled=False)
        m.inc("a")
        m.gauge_set("b", 1)
        m.gauge_max("c", 2)
        m.observe("d", 3.0)
        with m.phase("p"):
            pass
        assert len(m) == 0
        assert m.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "phases": {},
        }

    def test_null_metrics_is_disabled(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.inc("x")
        assert len(NULL_METRICS) == 0


class TestPhases:
    def test_phase_times_on_injected_clock(self):
        t = [0.0]
        m = MetricsRegistry(clock=lambda: t[0])
        m.phase_start("execution")
        t[0] = 2.5
        m.phase_end("execution")
        phases = m.snapshot()["phases"]
        assert phases["execution"] == {"virtual_s": 2.5, "count": 1}

    def test_phase_context_manager_accumulates(self):
        t = [0.0]
        m = MetricsRegistry(clock=lambda: t[0])
        for dt in (1.0, 3.0):
            with m.phase("build"):
                t[0] += dt
        assert m.snapshot()["phases"]["build"] == {"virtual_s": 4.0, "count": 2}

    def test_double_start_raises(self):
        m = MetricsRegistry()
        m.phase_start("p")
        with pytest.raises(ValueError):
            m.phase_start("p")

    def test_end_without_start_raises(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.phase_end("p")


class TestSnapshot:
    def test_snapshot_keys_sorted_and_rendered(self):
        m = MetricsRegistry()
        m.inc("z.last")
        m.inc("a.first", 2, node=1, dir="tx")
        snap = m.snapshot()
        keys = list(snap["counters"])
        assert keys == sorted(keys)
        assert "a.first{dir=tx,node=1}" in keys

    def test_snapshot_identical_for_identical_sequences(self):
        def build():
            m = MetricsRegistry()
            m.inc("c", 1, k="v")
            m.observe("h", 0.25)
            m.gauge_max("g", 7)
            return m.snapshot()

        assert build() == build()

    def test_histogram_edges_fixed_at_first_declaration(self):
        m = MetricsRegistry()
        m.observe("h", 1.0, edges=(2.0,))
        m.observe("h", 10.0, edges=(100.0,))  # ignored: first edges win
        buckets = m.snapshot()["histograms"]["h"]["buckets"]
        assert set(buckets) <= {"2.0", "inf"}
