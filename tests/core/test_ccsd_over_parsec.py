"""End-to-end tests: the t2_7 subroutine over PaRSEC, all five variants.

The central correctness claim reproduced here is the paper's: "the
final result (correlation energy) computed by the different variations
matched up to the 14th digit" — against both the legacy execution and
the independent dense reference.
"""

import numpy as np
import pytest

from repro.core.executor import run_ptg
from repro.core.integration import NwchemDriver
from repro.core.variants import PAPER_VARIANTS, V2, V4, V5, variant_by_name
from repro.ga.runtime import GlobalArrays
from repro.legacy.runtime import LegacyRuntime
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.trace import TaskCategory
from repro.tce.molecules import tiny_system
from repro.tce.reference import compute_reference, correlation_energy
from repro.tce.t2_7 import build_t2_7


def fresh_workload(n_nodes=4, cores=2, data_mode=DataMode.REAL, seed=7):
    cluster = Cluster(
        ClusterConfig(n_nodes=n_nodes, cores_per_node=cores, data_mode=data_mode)
    )
    ga = GlobalArrays(cluster)
    workload = build_t2_7(cluster, ga, tiny_system().orbital_space(), seed=seed)
    return cluster, ga, workload


class TestNumericalEquivalence:
    @pytest.mark.parametrize("name", sorted(PAPER_VARIANTS))
    def test_variant_matches_dense_reference(self, name):
        cluster, ga, workload = fresh_workload()
        run = run_ptg(cluster, workload.subroutine, variant_by_name(name))
        expected = compute_reference(workload)
        np.testing.assert_allclose(
            workload.i2.flat_values(), expected, rtol=1e-12, atol=1e-12
        )
        assert run.result.n_tasks > 0

    def test_all_variants_agree_on_correlation_energy_to_14_digits(self):
        """The paper's Section IV-A claim, including the legacy code."""
        energies = {}
        for name in sorted(PAPER_VARIANTS):
            cluster, ga, workload = fresh_workload()
            run_ptg(cluster, workload.subroutine, variant_by_name(name))
            energies[name] = correlation_energy(workload.i2.flat_values())
        cluster, ga, workload = fresh_workload()
        LegacyRuntime(cluster, ga).execute_subroutine(workload.subroutine)
        energies["legacy"] = correlation_energy(workload.i2.flat_values())
        reference = energies["legacy"]
        assert reference != 0.0
        for name, energy in energies.items():
            assert energy == pytest.approx(reference, rel=1e-13), name

    def test_v1_matches_legacy_bitwise(self):
        """v1 mimics the original chain order exactly, so even the
        floating-point summation order coincides."""
        cluster, ga, workload = fresh_workload()
        run_ptg(cluster, workload.subroutine, variant_by_name("v1"))
        parsec_values = workload.i2.flat_values()
        cluster, ga, workload = fresh_workload()
        LegacyRuntime(cluster, ga).execute_subroutine(workload.subroutine)
        np.testing.assert_array_equal(parsec_values, workload.i2.flat_values())


class TestTaskCounts:
    def test_v5_task_census(self):
        cluster, ga, workload = fresh_workload()
        run = run_ptg(cluster, workload.subroutine, V5)
        sub = workload.subroutine
        counts = run.result.tasks_per_class
        assert counts["GEMM"] == sub.n_gemms
        assert counts["READ_A"] == sub.n_gemms
        assert counts["READ_B"] == sub.n_gemms
        assert counts["SORT"] == sub.n_chains
        # fully parallel GEMMs: chains of g GEMMs need g-1 reduces
        assert counts["REDUCE"] == sum(c.length - 1 for c in sub.chains)
        assert "DFILL" not in counts  # no multi-GEMM segments at height 1
        assert counts["WRITE_C"] == sum(
            len(c.write_segs) for c in run.metadata.chains
        )

    def test_v1_task_census(self):
        cluster, ga, workload = fresh_workload()
        run = run_ptg(cluster, workload.subroutine, variant_by_name("v1"))
        sub = workload.subroutine
        counts = run.result.tasks_per_class
        assert counts["DFILL"] == sub.n_chains  # one per chain
        assert "REDUCE" not in counts
        assert counts["SORT_I"] == sum(len(c.active_sorts) for c in sub.chains)
        assert counts["WRITE_C_I"] == sum(
            len(c.active_sorts) * len(m.write_segs)
            for c, m in zip(sub.chains, run.metadata.chains)
        )

    def test_v4_has_parallel_sorts_single_write(self):
        cluster, ga, workload = fresh_workload()
        run = run_ptg(cluster, workload.subroutine, V4)
        counts = run.result.tasks_per_class
        assert "SORT_I" in counts and "WRITE_C" in counts
        assert "SORT" not in counts and "WRITE_C_I" not in counts

    def test_intermediate_segment_height(self):
        cluster, ga, workload = fresh_workload()
        variant = V4.with_overrides(name="v4h2", segment_height=2)
        run = run_ptg(cluster, workload.subroutine, variant)
        expected = compute_reference(workload)
        np.testing.assert_allclose(
            workload.i2.flat_values(), expected, rtol=1e-12, atol=1e-12
        )
        # chains of 4 GEMMs -> 2 segments of 2 -> DFILLs exist, 1 reduce
        assert run.result.tasks_per_class["DFILL"] > 0
        assert run.result.tasks_per_class["REDUCE"] > 0


class TestBehaviour:
    def test_write_tasks_run_on_owner_nodes(self):
        cluster, ga, workload = fresh_workload()
        run = run_ptg(cluster, workload.subroutine, V5)
        writes = cluster.trace.filtered(category=TaskCategory.WRITE)
        by_label = {}
        for chain in run.metadata.chains:
            for seg in chain.write_segs:
                by_label[f"WRITE_C({chain.chain_id}, {seg.index})"] = seg.node
        assert len(writes) == len(by_label)
        for span in writes:
            assert span.node == by_label[span.label]

    def test_read_tasks_run_on_data_owners(self):
        cluster, ga, workload = fresh_workload()
        run = run_ptg(cluster, workload.subroutine, V5)
        reads = cluster.trace.filtered(category=TaskCategory.READ_A)
        owners = {
            f"READ_A({c.chain_id}, {g.position})": g.a_owner
            for c in run.metadata.chains
            for g in c.gemms
        }
        for span in reads:
            assert span.node == owners[span.label]

    def test_deterministic_timing(self):
        def once():
            cluster, ga, workload = fresh_workload()
            return run_ptg(cluster, workload.subroutine, V4).execution_time

        assert once() == once()

    def test_priorities_help_vs_v2_even_at_tiny_scale(self):
        """v4 (priorities) should not be slower than v2 (none)."""
        cluster, _, workload = fresh_workload(data_mode=DataMode.SYNTH)
        t_v4 = run_ptg(cluster, workload.subroutine, V4).execution_time
        cluster, _, workload = fresh_workload(data_mode=DataMode.SYNTH)
        t_v2 = run_ptg(cluster, workload.subroutine, V2).execution_time
        assert t_v4 <= t_v2 * 1.05

    def test_synth_mode_executes_full_graph(self):
        cluster, ga, workload = fresh_workload(data_mode=DataMode.SYNTH)
        run = run_ptg(cluster, workload.subroutine, V5)
        assert run.result.n_tasks > 3 * workload.subroutine.n_gemms
        assert run.execution_time > 0


class TestIntegration:
    def test_mixed_iteration_runs_kernels_in_order(self):
        cluster, ga, workload = fresh_workload()
        # split the chains into two pseudo-subroutines
        from repro.tce.subroutine import Subroutine

        chains = workload.subroutine.chains
        half = len(chains) // 2
        # re-number so each subroutine's chain ids are dense
        sub_a = Subroutine(
            "icsd_t2_7", chains[:half], workload.subroutine.inputs, workload.i2
        )
        import dataclasses

        renumbered = [
            dataclasses.replace(c, chain_id=i) for i, c in enumerate(chains[half:])
        ]
        sub_b = Subroutine(
            "icsd_t2_8", renumbered, workload.subroutine.inputs, workload.i2
        )
        driver = NwchemDriver(cluster, ga, parsec_kernels={"icsd_t2_7"})
        result = driver.run([sub_a, sub_b])
        assert [k.mode for k in result.kernels] == ["parsec", "legacy"]
        t2_7 = result.timing("icsd_t2_7")
        t2_8 = result.timing("icsd_t2_8")
        assert t2_7.end <= t2_8.start + 1e-12  # strictly sequenced
        # and the combined numerics still match the dense reference
        expected = compute_reference(workload)
        np.testing.assert_allclose(
            workload.i2.flat_values(), expected, rtol=1e-12, atol=1e-12
        )

    def test_all_parsec_driver(self):
        cluster, ga, workload = fresh_workload()
        driver = NwchemDriver(cluster, ga)  # parsec_kernels=None -> all
        result = driver.run([workload.subroutine])
        assert result.kernels[0].mode == "parsec"
        assert result.execution_time > 0
