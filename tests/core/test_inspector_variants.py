"""Tests for variant specs, the inspection phase, and its metadata."""

import pytest

from repro.core.inspector import _build_reduce_tree, _build_segments, inspect_subroutine
from repro.core.variants import PAPER_VARIANTS, V1, V2, V3, V4, V5, VariantSpec, variant_by_name
from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig
from repro.tce.molecules import tiny_system
from repro.tce.t2_7 import build_t2_7
from repro.util.errors import ConfigurationError


def make_workload(n_nodes=4):
    cluster = Cluster(ClusterConfig(n_nodes=n_nodes, cores_per_node=2))
    ga = GlobalArrays(cluster)
    workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
    return cluster, workload


class TestVariantSpecs:
    def test_paper_table(self):
        assert V1.segment_height is None and not V1.fused_sort and not V1.single_write and V1.priorities
        assert V2.segment_height == 1 and not V2.fused_sort and V2.single_write and not V2.priorities
        assert V3.segment_height == 1 and not V3.fused_sort and not V3.single_write and V3.priorities
        assert V4.segment_height == 1 and not V4.fused_sort and V4.single_write and V4.priorities
        assert V5.segment_height == 1 and V5.fused_sort and V5.single_write and V5.priorities

    def test_lookup(self):
        assert variant_by_name("v3") is V3
        with pytest.raises(ConfigurationError):
            variant_by_name("v9")
        assert set(PAPER_VARIANTS) == {"v1", "v2", "v3", "v4", "v5"}

    def test_fused_sort_requires_single_write(self):
        with pytest.raises(ConfigurationError):
            VariantSpec("bad", 1, fused_sort=True, single_write=False, priorities=True)

    def test_invalid_segment_height(self):
        with pytest.raises(ConfigurationError):
            VariantSpec("bad", 0, False, True, True)

    def test_overrides(self):
        swept = V4.with_overrides(segment_height=4, name="v4h4")
        assert swept.segment_height == 4 and swept.single_write

    def test_describe(self):
        assert "serial chain" in V1.describe()
        assert "no priorities" in V2.describe()
        assert "one SORT" in V5.describe()


class TestSegments:
    def test_whole_chain(self):
        segs = _build_segments(7, None)
        assert len(segs) == 1 and segs[0].length == 7

    def test_height_one(self):
        segs = _build_segments(5, 1)
        assert [s.length for s in segs] == [1] * 5
        assert [s.start for s in segs] == [0, 1, 2, 3, 4]

    def test_intermediate_height_with_ragged_tail(self):
        segs = _build_segments(7, 3)
        assert [(s.start, s.length) for s in segs] == [(0, 3), (3, 3), (6, 1)]

    def test_last_position(self):
        segs = _build_segments(7, 3)
        assert [s.last_position for s in segs] == [2, 5, 6]


class TestReduceTree:
    def test_no_tree_for_single_segment(self):
        reduces, consumer = _build_reduce_tree(1)
        assert reduces == [] and consumer == {}

    def test_two_segments_single_root(self):
        reduces, consumer = _build_reduce_tree(2)
        assert len(reduces) == 1
        assert reduces[0].is_root
        assert consumer == {("seg", 0): 0, ("seg", 1): 0}

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 13, 16])
    def test_tree_shape_invariants(self, n):
        reduces, consumer = _build_reduce_tree(n)
        # a binary reduction of n inputs needs exactly n-1 combines
        assert len(reduces) == n - 1
        roots = [r for r in reduces if r.is_root]
        assert len(roots) == 1
        # every segment is consumed exactly once
        for i in range(n):
            assert ("seg", i) in consumer
        # every non-root reduce output is consumed exactly once
        non_roots = [r.step for r in reduces if not r.is_root]
        for step in non_roots:
            assert ("red", step) in consumer
        # all sources referenced by steps are distinct
        sources = [r.left for r in reduces] + [r.right for r in reduces]
        assert len(sources) == len(set(sources))

    def test_tree_depth_is_logarithmic(self):
        reduces, _ = _build_reduce_tree(16)
        root = [r for r in reduces if r.is_root][0]
        # 16 leaves -> root is the 15th step of a 4-level tree
        assert root.step == 14


class TestInspection:
    def test_chain_placement_is_round_robin(self):
        cluster, workload = make_workload(n_nodes=4)
        md = inspect_subroutine(workload.subroutine, cluster, V5)
        for chain in md.chains:
            assert chain.node == chain.chain_id % 4

    def test_read_owners_match_distribution(self):
        cluster, workload = make_workload()
        md = inspect_subroutine(workload.subroutine, cluster, V5)
        for chain in md.chains:
            for gemm in chain.gemms:
                assert gemm.a_owner == workload.va.array.distribution.last_segment_owner(
                    gemm.a_lo, gemm.a_hi
                )
                assert gemm.b_owner == workload.tb.array.distribution.last_segment_owner(
                    gemm.b_lo, gemm.b_hi
                )

    def test_active_sorts_share_one_target(self):
        cluster, workload = make_workload()
        md = inspect_subroutine(workload.subroutine, cluster, V4)
        for chain in md.chains:
            assert chain.target_hi - chain.target_lo == chain.c_size
            assert 1 <= len(chain.active_sorts) <= 4

    def test_write_segments_tile_the_target(self):
        cluster, workload = make_workload()
        md = inspect_subroutine(workload.subroutine, cluster, V5)
        for chain in md.chains:
            cursor = chain.target_lo
            for seg in chain.write_segs:
                assert seg.lo == cursor
                cursor = seg.hi
            assert cursor == chain.target_hi

    def test_v1_has_single_segment_per_chain(self):
        cluster, workload = make_workload()
        md = inspect_subroutine(workload.subroutine, cluster, V1)
        assert all(c.n_segments == 1 and not c.reduces for c in md.chains)

    def test_v5_has_singleton_segments_and_tree(self):
        cluster, workload = make_workload()
        md = inspect_subroutine(workload.subroutine, cluster, V5)
        for chain in md.chains:
            assert chain.n_segments == chain.length
            if chain.length > 1:
                assert len(chain.reduces) == chain.length - 1

    def test_priority_expression(self):
        cluster, workload = make_workload(n_nodes=4)
        md = inspect_subroutine(workload.subroutine, cluster, V4)
        # max_L1 - L1 + offset*P
        assert md.priority(0, 5) == md.max_L1 + 5 * 4
        assert md.priority(3, 1) == md.max_L1 - 3 + 4
        assert md.priority(0, 5) > md.priority(1, 5)

    def test_v2_priorities_all_zero(self):
        cluster, workload = make_workload()
        md = inspect_subroutine(workload.subroutine, cluster, V2)
        assert md.priority(0, 5) == 0.0
        assert md.priority(7, 1) == 0.0

    def test_root_producer(self):
        cluster, workload = make_workload()
        md_v1 = inspect_subroutine(workload.subroutine, cluster, V1)
        cls, params = md_v1.chain(0).root_producer()
        assert cls == "GEMM" and params == (0, md_v1.chain(0).length - 1)
        md_v5 = inspect_subroutine(workload.subroutine, cluster, V5)
        chain = md_v5.chain(0)
        if chain.length > 1:
            cls, params = chain.root_producer()
            assert cls == "REDUCE" and params == (0, chain.root_step)
