"""API-surface and miscellaneous coverage tests."""

import pytest

import repro
from repro.core.executor import run_ptg
from repro.core.variants import V5
from repro.experiments.fig9 import Fig9Result
from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.trace import TraceRecorder
from repro.tce.molecules import tiny_system
from repro.tce.t2_7 import build_t2_7


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_workflow_via_top_level_names(self):
        cluster = repro.Cluster(
            repro.ClusterConfig(n_nodes=4, cores_per_node=2, data_mode=repro.DataMode.REAL)
        )
        ga = repro.GlobalArrays(cluster)
        workload = repro.build_t2_7(cluster, ga, repro.tiny_system().orbital_space())
        run = repro.run_ptg(cluster, workload.subroutine, repro.V5)
        assert "icsd_t2_7" in run.describe()
        assert run.execution_time > 0

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_paper_variants_exposed(self):
        assert set(repro.PAPER_VARIANTS) == {"v1", "v2", "v3", "v4", "v5"}
        assert repro.variant_by_name("v5") is repro.V5


class TestNetworkDelivery:
    def test_on_deliver_callback_path(self):
        from repro.sim.cost import MachineModel

        engine = Engine()
        machine = MachineModel()
        network = Network(engine, machine)
        trace = TraceRecorder()
        for node_id in range(2):
            network.register(Node(engine, node_id, machine, 2, trace))
        got = []
        network.send(0, 1, 100.0, "payload", on_deliver=lambda m: got.append(m.payload))
        engine.run()
        assert got == ["payload"]

    def test_inbox_and_callback_are_exclusive(self):
        from repro.sim.cost import MachineModel
        from repro.util.errors import SimulationError

        engine = Engine()
        network = Network(engine, MachineModel())
        network.register(Node(engine, 0, MachineModel(), 1, TraceRecorder()))
        with pytest.raises(SimulationError):
            network.send(0, 0, 1.0, None)  # neither given
        with pytest.raises(SimulationError):
            network.send(0, 0, 1.0, None, inbox="x", on_deliver=lambda m: None)


class TestDescriptions:
    def test_subroutine_and_run_describe(self):
        cluster = Cluster(ClusterConfig(n_nodes=2, data_mode=DataMode.SYNTH))
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
        run = run_ptg(cluster, workload.subroutine, V5)
        assert "v5" in run.describe()
        assert "chains" in workload.subroutine.describe()
        assert "icsd_t2_7" in run.metadata.describe()

    def test_fig9_chart_and_best(self):
        times = {
            "original": {1: 90.0, 7: 28.0, 15: 29.0},
            "v5": {1: 85.0, 7: 12.0, 15: 8.7},
        }
        result = Fig9Result(times, (1, 7, 15), "paper", 32)
        assert result.best_original() == (7, 28.0)
        chart = result.chart(width=40, height=10)
        assert "Figure 9" in chart
        assert "o=original" in chart


class TestTraceRecorderExtras:
    def test_json_roundtrip_preserves_events(self):
        from repro.sim.trace import TaskCategory

        trace = TraceRecorder()
        trace.record(1, 2, TaskCategory.GEMM, "g", 0.5, 1.5, {"x": 1})
        restored = TraceRecorder.from_json(trace.to_json())
        assert len(restored) == 1
        event = restored.events[0]
        assert event.node == 1 and event.thread == 2
        assert event.category is TaskCategory.GEMM
        assert event.meta == {"x": 1}

    def test_invalid_span_rejected(self):
        from repro.sim.trace import TaskCategory

        trace = TraceRecorder()
        with pytest.raises(ValueError):
            trace.record(0, 0, TaskCategory.GEMM, "bad", 2.0, 1.0)

    def test_makespan_and_filters(self):
        from repro.sim.trace import TaskCategory

        trace = TraceRecorder()
        trace.record(0, 0, TaskCategory.GEMM, "a", 1.0, 2.0)
        trace.record(1, 0, TaskCategory.SORT, "b", 3.0, 5.0)
        assert trace.makespan() == 4.0
        assert len(trace.filtered(node=1)) == 1
        assert len(trace.filtered(predicate=lambda e: e.duration > 1.5)) == 1
        assert trace.threads() == [(0, 0), (1, 0)]


class TestIntegrationDriverConfig:
    def test_driver_honours_legacy_config(self):
        from repro.core.integration import NwchemDriver
        from repro.legacy.runtime import LegacyConfig

        cluster = Cluster(
            ClusterConfig(n_nodes=2, cores_per_node=2, data_mode=DataMode.SYNTH)
        )
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
        driver = NwchemDriver(
            cluster,
            ga,
            parsec_kernels=set(),  # everything legacy
            legacy_config=LegacyConfig(use_nxtval=False),
        )
        result = driver.run([workload.subroutine])
        assert result.kernels[0].mode == "legacy"
        # static mode: no nxtval traffic at all
        assert cluster.network.messages_sent > 0

    def test_uses_parsec_predicate(self):
        from repro.core.integration import NwchemDriver

        cluster = Cluster(ClusterConfig(n_nodes=2))
        ga = GlobalArrays(cluster)
        workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
        driver_all = NwchemDriver(cluster, ga)
        driver_none = NwchemDriver(cluster, ga, parsec_kernels=set())
        assert driver_all.uses_parsec(workload.subroutine)
        assert not driver_none.uses_parsec(workload.subroutine)


class TestOpCostHelpers:
    def test_wire_time_and_memcpy(self):
        from repro.sim.cost import MachineModel

        machine = MachineModel(nic_bw_bytes_per_s=1e9)
        assert machine.wire_time(1e9) == pytest.approx(1.0)
        assert machine.memcpy(100).bytes == 1600.0
        assert machine.zero_fill(100).bytes == 800.0

    def test_run_until_idle_equivalence(self):
        """cluster.run(until=...) past the workload end equals free run."""
        def final_time(until):
            cluster = Cluster(ClusterConfig(n_nodes=2, data_mode=DataMode.SYNTH))
            ga = GlobalArrays(cluster)
            workload = build_t2_7(cluster, ga, tiny_system().orbital_space())
            from repro.legacy.runtime import LegacyRuntime

            done, _ = LegacyRuntime(cluster, ga).launch([list(workload.subroutine.chains)])
            cluster.run(until=until)
            return done.triggered

        assert final_time(None)
        assert final_time(1e9)
