"""Integration tests for GlobalArray storage and one-sided get/acc."""

import numpy as np
import pytest

from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.cost import MachineModel
from repro.util.errors import GlobalArrayError, SimulationError


def make_cluster(n_nodes=4, data_mode=DataMode.REAL, **machine_overrides):
    machine = MachineModel(**machine_overrides) if machine_overrides else MachineModel()
    return Cluster(
        ClusterConfig(
            n_nodes=n_nodes, cores_per_node=2, machine=machine, data_mode=data_mode
        )
    )


def run_op(cluster, op):
    """Drive one generator op to completion inside the simulation."""
    result = {}

    def driver():
        result["value"] = yield from op
        result["time"] = cluster.engine.now

    cluster.engine.process(driver())
    cluster.run()
    return result


class TestArrayStorage:
    def test_create_and_access_local_view(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("t", 100)
        view = array.ga_access(1, 25, 30)
        view[:] = 7.0
        assert np.all(array.gather()[25:30] == 7.0)

    def test_ga_access_rejects_remote_range(self):
        cluster = make_cluster()
        array = GlobalArrays(cluster).create("t", 100)
        with pytest.raises(GlobalArrayError, match="not within local"):
            array.ga_access(0, 20, 30)  # straddles node 0/1 boundary

    def test_duplicate_name_rejected(self):
        ga = GlobalArrays(make_cluster())
        ga.create("t", 10)
        with pytest.raises(GlobalArrayError):
            ga.create("t", 10)

    def test_lookup(self):
        ga = GlobalArrays(make_cluster())
        array = ga.create("amps", 50)
        assert ga.lookup("amps") is array
        with pytest.raises(GlobalArrayError):
            ga.lookup("missing")

    def test_scatter_gather_roundtrip(self):
        array = GlobalArrays(make_cluster()).create("t", 97)
        values = np.arange(97, dtype=float)
        array.scatter(values)
        np.testing.assert_array_equal(array.gather(), values)

    def test_scatter_shape_checked(self):
        array = GlobalArrays(make_cluster()).create("t", 10)
        with pytest.raises(GlobalArrayError):
            array.scatter(np.zeros(11))

    def test_zero(self):
        array = GlobalArrays(make_cluster()).create("t", 20)
        array.scatter(np.ones(20))
        array.zero()
        assert np.all(array.gather() == 0.0)

    def test_destroyed_array_unusable(self):
        array = GlobalArrays(make_cluster()).create("t", 10)
        array.destroy()
        with pytest.raises(GlobalArrayError):
            array.gather()

    def test_synth_mode_has_no_storage(self):
        array = GlobalArrays(make_cluster(data_mode=DataMode.SYNTH)).create("t", 10)
        assert not array.holds_data
        with pytest.raises(GlobalArrayError):
            array.gather()
        with pytest.raises(GlobalArrayError):
            array.ga_access(0, 0, 1)


class TestFetch:
    def test_fetch_returns_correct_data_single_segment(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("t", 100)
        array.scatter(np.arange(100, dtype=float))
        result = run_op(cluster, ga.fetch(3, array, 30, 40))
        np.testing.assert_array_equal(result["value"], np.arange(30, 40, dtype=float))

    def test_fetch_straddling_segments_reassembles(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("t", 100)
        array.scatter(np.arange(100, dtype=float))
        result = run_op(cluster, ga.fetch(0, array, 20, 60))
        np.testing.assert_array_equal(result["value"], np.arange(20, 60, dtype=float))

    def test_fetch_in_synth_mode_returns_none_but_costs_time(self):
        cluster = make_cluster(data_mode=DataMode.SYNTH)
        ga = GlobalArrays(cluster)
        array = ga.create("t", 100)
        result = run_op(cluster, ga.fetch(3, array, 0, 10))
        assert result["value"] is None
        assert result["time"] > 0

    def test_remote_fetch_slower_than_local(self):
        def timed_fetch(requester):
            cluster = make_cluster()
            ga = GlobalArrays(cluster)
            array = ga.create("t", 100)
            return run_op(cluster, ga.fetch(requester, array, 0, 25))["time"]

        local = timed_fetch(0)   # data on node 0
        remote = timed_fetch(3)
        assert remote > local > 0

    def test_fetch_updates_statistics(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("t", 100)
        run_op(cluster, ga.fetch(1, array, 0, 50))
        assert ga.gets == 1
        assert ga.bytes_fetched == 400.0


class TestAccumulate:
    def test_accumulate_adds_in_place(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("t", 100)
        array.scatter(np.ones(100))
        run_op(cluster, ga.accumulate(2, array, 10, 20, 2.0 * np.ones(10)))
        expected = np.ones(100)
        expected[10:20] += 2.0
        np.testing.assert_array_equal(array.gather(), expected)

    def test_accumulate_straddling_segments(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("t", 100)
        run_op(cluster, ga.accumulate(0, array, 20, 60, np.arange(40, dtype=float)))
        np.testing.assert_array_equal(array.gather()[20:60], np.arange(40, dtype=float))
        assert np.all(array.gather()[:20] == 0)
        assert np.all(array.gather()[60:] == 0)

    def test_concurrent_accumulates_to_same_range_are_atomic(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("t", 40)

        def writer(rank):
            yield from ga.accumulate(rank, array, 0, 40, np.full(40, 1.0))

        for rank in range(4):
            cluster.engine.process(writer(rank))
        cluster.run()
        np.testing.assert_array_equal(array.gather(), np.full(40, 4.0))

    def test_accumulate_shape_mismatch_rejected(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("t", 10)
        gen = ga.accumulate(0, array, 0, 5, np.zeros(6))
        # the error surfaces when the simulated process is driven,
        # wrapped by the kernel with the original as __cause__
        with pytest.raises(SimulationError) as exc_info:
            run_op(cluster, gen)
        assert isinstance(exc_info.value.__cause__, GlobalArrayError)

    def test_accumulate_without_data_rejected_in_real_mode(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("t", 10)
        with pytest.raises(SimulationError) as exc_info:
            run_op(cluster, ga.accumulate(0, array, 0, 5, None))
        assert isinstance(exc_info.value.__cause__, GlobalArrayError)

    def test_accumulate_synth_mode_accepts_none(self):
        cluster = make_cluster(data_mode=DataMode.SYNTH)
        ga = GlobalArrays(cluster)
        array = ga.create("t", 10)
        result = run_op(cluster, ga.accumulate(0, array, 0, 5, None))
        assert result["time"] > 0
        assert ga.accs == 1


class TestContention:
    def test_many_remote_fetches_queue_at_owner(self):
        """Handler FIFO: n simultaneous gets finish later than one."""

        def total_time(n_requesters):
            cluster = make_cluster(n_nodes=8)
            ga = GlobalArrays(cluster)
            array = ga.create("t", 80)  # 10 elems per node

            def reader(rank):
                yield from ga.fetch(rank, array, 0, 10)  # all hit node 0

            for rank in range(1, 1 + n_requesters):
                cluster.engine.process(reader(rank))
            return cluster.run()

        assert total_time(6) > total_time(1)

    def test_deterministic_timing(self):
        def one_run():
            cluster = make_cluster()
            ga = GlobalArrays(cluster)
            array = ga.create("t", 100)
            times = []

            def reader(rank):
                yield from ga.fetch(rank, array, 0, 50)
                times.append(cluster.engine.now)

            for rank in range(4):
                cluster.engine.process(reader(rank))
            cluster.run()
            return times

        assert one_run() == one_run()
