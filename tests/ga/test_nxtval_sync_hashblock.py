"""Tests for NXTVAL work stealing, barriers, and the hash-block wrappers."""

import numpy as np
import pytest

from repro.ga.hash_block import add_hash_block, get_hash_block
from repro.ga.nxtval import NxtvalServer
from repro.ga.runtime import GlobalArrays
from repro.ga.sync import Barrier
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.trace import TaskCategory
from repro.util.errors import SimulationError


def make_cluster(n_nodes=4):
    return Cluster(ClusterConfig(n_nodes=n_nodes, cores_per_node=2))


class TestNxtval:
    def test_tickets_are_unique_and_dense(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        nxtval = NxtvalServer(ga)
        tickets = []

        def rank(node_id):
            for _ in range(5):
                ticket = yield from nxtval.next(node_id)
                tickets.append(ticket)

        for node_id in range(4):
            cluster.engine.process(rank(node_id))
        cluster.run()
        assert sorted(tickets) == list(range(20))
        assert nxtval.total_requests == 20

    def test_contention_grows_with_rank_count(self):
        def drain_time(n_ranks):
            cluster = make_cluster(n_nodes=8)
            ga = GlobalArrays(cluster)
            nxtval = NxtvalServer(ga)

            def rank(node_id):
                for _ in range(10):
                    yield from nxtval.next(node_id)

            for i in range(n_ranks):
                cluster.engine.process(rank(i % 8))
            return cluster.run()

        # the single shared counter is a serial bottleneck
        assert drain_time(16) > drain_time(2)

    def test_reset_restarts_sequence(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        nxtval = NxtvalServer(ga)
        got = []

        def rank():
            got.append((yield from nxtval.next(1)))
            nxtval.reset()
            got.append((yield from nxtval.next(1)))

        cluster.engine.process(rank())
        cluster.run()
        assert got == [0, 0]


class TestBarrier:
    def test_all_parties_released_together(self):
        cluster = make_cluster()
        barrier = Barrier(cluster.engine, parties=3)
        release_times = []

        def rank(delay):
            yield cluster.engine.timeout(delay)
            yield from barrier.arrive()
            release_times.append(cluster.engine.now)

        for delay in (1.0, 5.0, 3.0):
            cluster.engine.process(rank(delay))
        cluster.run()
        assert release_times == [5.0, 5.0, 5.0]

    def test_cyclic_reuse(self):
        cluster = make_cluster()
        barrier = Barrier(cluster.engine, parties=2)
        generations = []

        def rank():
            for _ in range(3):
                generation = yield from barrier.arrive()
                generations.append(generation)

        cluster.engine.process(rank())
        cluster.engine.process(rank())
        cluster.run()
        assert sorted(generations) == [1, 1, 2, 2, 3, 3]

    def test_overhead_delays_release(self):
        cluster = make_cluster()
        barrier = Barrier(cluster.engine, parties=2, overhead=0.5)
        times = []

        def rank():
            yield from barrier.arrive()
            times.append(cluster.engine.now)

        cluster.engine.process(rank())
        cluster.engine.process(rank())
        cluster.run()
        assert times == [0.5, 0.5]

    def test_validation(self):
        with pytest.raises(SimulationError):
            Barrier(make_cluster().engine, parties=0)


class TestHashBlock:
    def test_get_hash_block_returns_data_and_traces_comm(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("v2", 100)
        array.scatter(np.arange(100, dtype=float))
        got = {}

        def rank():
            node = cluster.nodes[2]
            data = yield from get_hash_block(ga, node, 0, array, 10, 30)
            got["data"] = data

        cluster.engine.process(rank())
        cluster.run()
        np.testing.assert_array_equal(got["data"], np.arange(10, 30, dtype=float))
        spans = cluster.trace.filtered(category=TaskCategory.COMM)
        assert len(spans) == 1
        assert spans[0].duration > 0
        assert spans[0].meta["bytes"] == 160.0

    def test_add_hash_block_accumulates_and_traces_write(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("i2", 50)

        def rank():
            node = cluster.nodes[1]
            yield from add_hash_block(ga, node, 0, array, 5, 15, np.ones(10))

        cluster.engine.process(rank())
        cluster.run()
        assert np.all(array.gather()[5:15] == 1.0)
        spans = cluster.trace.filtered(category=TaskCategory.WRITE)
        assert len(spans) == 1
        assert spans[0].label.startswith("ADD_HASH_BLOCK")

    def test_blocking_semantics_no_overlap(self):
        """A rank doing get -> compute -> add never overlaps the phases."""
        cluster = make_cluster()
        ga = GlobalArrays(cluster)
        array = ga.create("t", 100)
        array.scatter(np.ones(100))
        marks = []

        def rank():
            node = cluster.nodes[3]
            marks.append(("get.start", cluster.engine.now))
            data = yield from get_hash_block(ga, node, 0, array, 0, 25)
            marks.append(("get.end", cluster.engine.now))
            yield cluster.engine.timeout(1.0)  # the GEMM
            yield from add_hash_block(ga, node, 0, array, 25, 50, data)
            marks.append(("add.end", cluster.engine.now))

        cluster.engine.process(rank())
        cluster.run()
        get_end = dict(marks)["get.end"]
        add_end = dict(marks)["add.end"]
        assert get_end > 0
        assert add_end >= get_end + 1.0
