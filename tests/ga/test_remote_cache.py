"""The per-node remote-block cache: epochs, invalidation, equality.

The cache (repro.ga.cache) must never serve stale bytes: every array
mutation logs a write epoch, and a cached block whose epoch predates an
overlapping write is evicted on lookup. These tests pin the
invalidation rules, the LRU bound, the conservative behavior past log
compaction, and — end to end — that a cached run stays bitwise-equal
to an uncached one under interleaved fetch/accumulate traffic.
"""

import numpy as np

from repro.ga.array import _WRITE_LOG_MAX
from repro.ga.cache import RemoteBlockCache, RemoteCachePolicy
from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.cost import MachineModel


def make_cluster(n_nodes=4, data_mode=DataMode.REAL):
    return Cluster(
        ClusterConfig(
            n_nodes=n_nodes,
            cores_per_node=2,
            machine=MachineModel(),
            data_mode=data_mode,
        )
    )


def run_op(cluster, op):
    result = {}

    def driver():
        result["value"] = yield from op

    cluster.engine.process(driver())
    cluster.run()
    return result


def make_array(tracked=True, total=100):
    """A standalone tracked array (no cluster needed for unit tests)."""
    ga = GlobalArrays(
        make_cluster(), remote_cache=RemoteCachePolicy() if tracked else None
    )
    return ga.create("t", total)


class TestWriteEpochs:
    def test_untracked_array_logs_nothing(self):
        array = make_array(tracked=False)
        array.record_write(0, 10)
        assert array.write_epoch == 0
        # epoch 0 with an empty log: nothing was ever modified
        assert not array.modified_since(0, 0, 100)

    def test_epoch_advances_per_write(self):
        array = make_array()
        assert array.write_epoch == 0
        array.record_write(0, 10)
        array.record_write(50, 60)
        assert array.write_epoch == 2

    def test_modified_since_sees_only_later_overlaps(self):
        array = make_array()
        array.record_write(0, 10)
        epoch = array.write_epoch
        assert not array.modified_since(epoch, 0, 10)  # write predates epoch
        array.record_write(5, 15)
        assert array.modified_since(epoch, 0, 10)  # overlap
        assert array.modified_since(epoch, 14, 20)  # touches [5,15)
        assert not array.modified_since(epoch, 15, 30)  # disjoint
        assert not array.modified_since(epoch, 0, 5)  # disjoint

    def test_compacted_history_counts_as_modified(self):
        array = make_array()
        epoch = array.write_epoch
        for _ in range(_WRITE_LOG_MAX + 1):
            array.record_write(0, 1)
        # the oldest half of the log was dropped; an epoch that predates
        # the surviving history must be treated as modified even for a
        # range no logged write overlaps
        assert array.modified_since(epoch, 99, 100)

    def test_mutating_ops_record_writes(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster, remote_cache=RemoteCachePolicy())
        array = ga.create("t", 100)
        before = array.write_epoch
        array.scatter(np.zeros(100))
        assert array.write_epoch == before + 1
        array.zero()
        assert array.write_epoch == before + 2
        run_op(cluster, ga.accumulate(0, array, 30, 40, np.ones(10)))
        assert array.write_epoch > before + 2


class TestRemoteBlockCache:
    def test_overlapping_write_invalidates(self):
        array = make_array()
        cache = RemoteBlockCache(RemoteCachePolicy())
        cache.insert(array, 25, 50, array.write_epoch, np.ones(25))
        array.record_write(40, 60)
        hit, _ = cache.lookup(array, 25, 50)
        assert not hit
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_disjoint_write_does_not_invalidate(self):
        array = make_array()
        cache = RemoteBlockCache(RemoteCachePolicy())
        block = np.ones(25)
        cache.insert(array, 25, 50, array.write_epoch, block)
        array.record_write(50, 60)
        array.record_write(0, 25)
        hit, data = cache.lookup(array, 25, 50)
        assert hit
        assert data is block
        assert cache.invalidations == 0

    def test_hit_refreshes_epoch(self):
        array = make_array()
        cache = RemoteBlockCache(RemoteCachePolicy())
        cache.insert(array, 0, 10, array.write_epoch, np.ones(10))
        # push enough disjoint writes to compact away the insert epoch;
        # periodic hits keep revalidating, so the entry stays live
        for _ in range(_WRITE_LOG_MAX):
            array.record_write(90, 100)
            hit, _ = cache.lookup(array, 0, 10)
            assert hit

    def test_lru_bound(self):
        array = make_array()
        cache = RemoteBlockCache(RemoteCachePolicy(max_blocks=2))
        cache.insert(array, 0, 10, 0, None)
        cache.insert(array, 10, 20, 0, None)
        cache.lookup(array, 0, 10)  # touch -> most recently used
        cache.insert(array, 20, 30, 0, None)  # evicts (10, 20)
        assert len(cache) == 2
        assert cache.lookup(array, 0, 10)[0]
        assert not cache.lookup(array, 10, 20)[0]
        assert cache.lookup(array, 20, 30)[0]

    def test_zero_capacity_disables_inserts(self):
        array = make_array()
        cache = RemoteBlockCache(RemoteCachePolicy(max_blocks=0))
        cache.insert(array, 0, 10, 0, None)
        assert len(cache) == 0


class TestCachedFetch:
    def test_repeat_fetch_hits_and_saves_wire_messages(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster, remote_cache=RemoteCachePolicy())
        array = ga.create("t", 100)
        array.scatter(np.arange(100, dtype=float))
        run_op(cluster, ga.fetch(3, array, 30, 40))
        wire_after_first = cluster.network.remote_messages
        result = run_op(cluster, ga.fetch(3, array, 30, 40))
        np.testing.assert_array_equal(result["value"], np.arange(30, 40, dtype=float))
        assert ga.cache_hits == 1
        assert cluster.network.remote_messages == wire_after_first

    def test_accumulate_between_fetches_invalidates(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster, remote_cache=RemoteCachePolicy())
        array = ga.create("t", 100)
        array.scatter(np.zeros(100))
        run_op(cluster, ga.fetch(3, array, 30, 40))
        run_op(cluster, ga.accumulate(0, array, 35, 45, np.ones(10)))
        result = run_op(cluster, ga.fetch(3, array, 30, 40))
        expected = np.zeros(10)
        expected[5:] = 1.0
        np.testing.assert_array_equal(result["value"], expected)
        assert ga.cache_hits == 0

    def test_local_only_fetch_skips_cache(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster, remote_cache=RemoteCachePolicy())
        array = ga.create("t", 100)
        array.scatter(np.zeros(100))
        # [0, 25) lives entirely on node 0: nothing to cache
        run_op(cluster, ga.fetch(0, array, 0, 25))
        run_op(cluster, ga.fetch(0, array, 0, 25))
        assert ga.cache_hits == 0
        assert ga.cache_misses == 0

    def test_hit_returns_a_copy(self):
        cluster = make_cluster()
        ga = GlobalArrays(cluster, remote_cache=RemoteCachePolicy())
        array = ga.create("t", 100)
        array.scatter(np.arange(100, dtype=float))
        run_op(cluster, ga.fetch(3, array, 30, 40))
        first = run_op(cluster, ga.fetch(3, array, 30, 40))["value"]
        first[:] = -1.0  # a caller scribbling on its block
        second = run_op(cluster, ga.fetch(3, array, 30, 40))["value"]
        np.testing.assert_array_equal(second, np.arange(30, 40, dtype=float))

    def test_synth_mode_hits_without_data(self):
        cluster = make_cluster(data_mode=DataMode.SYNTH)
        ga = GlobalArrays(cluster, remote_cache=RemoteCachePolicy())
        array = ga.create("t", 100)
        run_op(cluster, ga.fetch(3, array, 30, 40))
        result = run_op(cluster, ga.fetch(3, array, 30, 40))
        assert result["value"] is None
        assert ga.cache_hits == 1


class TestBitwiseEquality:
    def test_interleaved_traffic_bitwise_equal_with_cache(self):
        """A deterministic fetch/accumulate storm produces bit-identical
        arrays with the cache on and off (the chaos-harness guarantee at
        unit scale: timing moves, arithmetic does not)."""

        # the op sequences are fixed up front: the knob may reorder the
        # clients in virtual time, and draws taken mid-simulation would
        # change with that order and corrupt the comparison
        plans = {
            node: [
                (int(lo), int(lo + span))
                for lo, span in zip(
                    np.random.default_rng(100 + node).integers(0, 100, 20),
                    np.random.default_rng(200 + node).integers(1, 20, 20),
                )
            ]
            for node in range(4)
        }

        def storm(cache):
            cluster = make_cluster()
            ga = GlobalArrays(
                cluster, remote_cache=RemoteCachePolicy() if cache else None
            )
            array = ga.create("t", 120)
            array.scatter(np.zeros(120))
            array.enable_ordered_accumulation()

            def client(node):
                for step, (lo, hi) in enumerate(plans[node]):
                    if step % 3 == 2:
                        yield from ga.accumulate(
                            node,
                            array,
                            lo,
                            hi,
                            np.full(hi - lo, 0.125 * (node + 1)),
                            tag=(node, step),
                        )
                    else:
                        yield from ga.fetch(node, array, lo, hi)

            for node in range(cluster.n_nodes):
                cluster.engine.process(client(node))
            cluster.run()
            return array.gather(), cluster.network.remote_messages

        baseline, base_msgs = storm(cache=False)
        cached, cached_msgs = storm(cache=True)
        np.testing.assert_array_equal(baseline, cached)
        assert cached_msgs <= base_msgs
