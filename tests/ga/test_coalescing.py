"""The per-destination aggregation window (message coalescing).

Pins the Coalescer's merge mechanics — batch formation in submit
order, max_batch early flush, window-expiry flush, the single-item
passthrough that keeps a lone message byte-identical to a plain send —
and, end to end, that GA fetches and PaRSEC runs with coalescing on
produce the same bytes with fewer wire messages.
"""

import numpy as np

from repro.core.api import RunConfig
from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.cost import MachineModel
from repro.sim.network import BatchPayload, CoalescePolicy, Coalescer


def make_cluster(n_nodes=4, cores_per_node=2):
    return Cluster(
        ClusterConfig(
            n_nodes=n_nodes,
            cores_per_node=cores_per_node,
            machine=MachineModel(),
            data_mode=DataMode.REAL,
        )
    )


def drain(cluster, inbox_name):
    """Collect every message delivered to node 1's inbox."""
    received = []

    def sink():
        inbox = cluster.nodes[1].inbox(inbox_name)
        while True:
            message = yield inbox.get()
            received.append(message)

    cluster.engine.process(sink())
    cluster.run()
    return received


class TestCoalescer:
    def test_batch_preserves_submit_order(self):
        cluster = make_cluster()
        coalescer = Coalescer(cluster.network, 0, CoalescePolicy(), inbox="test")
        coalescer.submit(1, 64.0, "a")
        coalescer.submit(1, 64.0, "b")
        coalescer.submit(1, 64.0, "c")
        received = drain(cluster, "test")
        assert len(received) == 1
        payload = received[0].payload
        assert isinstance(payload, BatchPayload)
        assert payload.items == ["a", "b", "c"]
        assert payload.sizes == [64.0, 64.0, 64.0]
        assert received[0].size_bytes == 192.0
        assert coalescer.batches == 1
        assert coalescer.messages_saved == 2

    def test_max_batch_flushes_early(self):
        cluster = make_cluster()
        coalescer = Coalescer(
            cluster.network, 0, CoalescePolicy(max_batch=2), inbox="test"
        )
        coalescer.submit(1, 64.0, "a")
        before = cluster.network.remote_messages
        coalescer.submit(1, 64.0, "b")  # hits max_batch: flushes NOW
        assert cluster.network.remote_messages == before + 1
        coalescer.submit(1, 64.0, "c")  # a fresh window
        received = drain(cluster, "test")
        assert [len(m.payload) if isinstance(m.payload, BatchPayload) else 1
                for m in received] == [2, 1]

    def test_single_item_window_leaves_as_plain_send(self):
        cluster = make_cluster()
        coalescer = Coalescer(cluster.network, 0, CoalescePolicy(), inbox="test")
        coalescer.submit(1, 64.0, "lone", tag="my-tag")
        received = drain(cluster, "test")
        assert len(received) == 1
        assert received[0].payload == "lone"  # no BatchPayload wrapper
        assert received[0].size_bytes == 64.0
        assert received[0].tag == "my-tag"
        assert coalescer.batches == 0

    def test_separate_destinations_never_merge(self):
        cluster = make_cluster()
        coalescer = Coalescer(cluster.network, 0, CoalescePolicy(), inbox="test")
        coalescer.submit(1, 64.0, "to-1")
        coalescer.submit(2, 64.0, "to-2")
        cluster.run()
        assert coalescer.batches == 0
        assert cluster.network.remote_messages == 2

    def test_local_destination_bypasses_window(self):
        cluster = make_cluster()
        coalescer = Coalescer(cluster.network, 0, CoalescePolicy(), inbox="test")
        coalescer.submit(0, 64.0, "self")
        # sent directly (no window armed), never counted as wire traffic
        assert cluster.network.remote_messages == 0
        cluster.run()
        ok, item = cluster.nodes[0].inbox("test").try_get()
        assert ok and item.payload == "self"

    def test_max_batch_one_disables_batching(self):
        cluster = make_cluster()
        coalescer = Coalescer(
            cluster.network, 0, CoalescePolicy(max_batch=1), inbox="test"
        )
        coalescer.submit(1, 64.0, "a")
        coalescer.submit(1, 64.0, "b")
        assert cluster.network.remote_messages == 2
        assert coalescer.batches == 0

    def test_window_expiry_splits_batches_in_time(self):
        cluster = make_cluster()
        policy = CoalescePolicy(window_s=1.0e-6, max_batch=8)
        coalescer = Coalescer(cluster.network, 0, policy, inbox="test")

        def producer():
            coalescer.submit(1, 64.0, "early-1")
            coalescer.submit(1, 64.0, "early-2")
            yield cluster.engine.timeout(5.0e-6)  # past the window
            coalescer.submit(1, 64.0, "late")

        cluster.engine.process(producer())
        received = drain(cluster, "test")
        assert len(received) == 2
        assert isinstance(received[0].payload, BatchPayload)
        assert received[0].payload.items == ["early-1", "early-2"]
        assert received[1].payload == "late"


class TestCoalescedFetch:
    def test_fetch_correct_and_fewer_wire_messages(self):
        def fan_out(policy):
            cluster = make_cluster()
            ga = GlobalArrays(cluster, coalescing=policy)
            array = ga.create("t", 100)
            array.scatter(np.arange(100, dtype=float))
            results = {}

            def client(idx, lo, hi):
                # concurrent clients on node 0 fetching from the same
                # owner (node 1 holds [25, 50)): requests that land in
                # the same aggregation window merge
                block = yield from ga.fetch(0, array, lo, hi)
                results[idx] = (lo, block)

            for idx, (lo, hi) in enumerate([(25, 35), (35, 45), (40, 50)]):
                cluster.engine.process(client(idx, lo, hi))
            cluster.run()
            return results, cluster.network.remote_messages, ga

        base_results, base_msgs, _ = fan_out(None)
        co_results, co_msgs, ga = fan_out(CoalescePolicy())
        for idx, (lo, block) in co_results.items():
            np.testing.assert_array_equal(block, base_results[idx][1])
            np.testing.assert_array_equal(
                block, np.arange(lo, lo + len(block), dtype=float)
            )
        assert co_msgs < base_msgs
        assert ga.coalesced_batches > 0
        # the owner answers a batched request with one batched reply, so
        # the wire saves at least the request-side merges counted here
        assert ga.messages_saved >= 1
        assert base_msgs - co_msgs >= ga.messages_saved


class TestParsecCoalescing:
    def test_v5_bitwise_equal_with_fewer_remote_messages(self):
        from repro.core import api
        from repro.workloads import build_workload

        def run(policy):
            cluster = make_cluster(n_nodes=4, cores_per_node=4)
            ga = GlobalArrays(cluster, coalescing=policy)
            workload = build_workload("t2_7:tiny", cluster, ga, seed=7)
            workload.output.array.enable_ordered_accumulation()
            # the same policy drives both lanes: GA fetches (via ga) and
            # the PaRSEC dataflow (via the config)
            result = api.run(
                workload, runtime="parsec", config=RunConfig(coalescing=policy)
            )
            return (
                workload.output.array.gather(),
                cluster.network.remote_messages,
                result.execution_time,
            )

        base_out, base_msgs, _ = run(None)
        co_out, co_msgs, co_time = run(CoalescePolicy())
        np.testing.assert_array_equal(base_out, co_out)
        assert co_msgs < base_msgs
        assert co_time > 0


class TestRunConfigKnobs:
    def test_default_config_has_knobs_off(self):
        config = RunConfig()
        assert config.coalescing is None
        assert config.remote_cache is None
