"""Unit + property tests for the element-contiguous GA distribution."""

import pytest
from hypothesis import given, strategies as st

from repro.ga.distribution import Distribution, Segment
from repro.util.errors import GlobalArrayError


class TestBasics:
    def test_even_split(self):
        dist = Distribution(100, 4)
        assert [dist.node_range(n) for n in range(4)] == [
            (0, 25),
            (25, 50),
            (50, 75),
            (75, 100),
        ]

    def test_uneven_split_front_loads_remainder(self):
        dist = Distribution(10, 3)
        assert [dist.node_range(n) for n in range(3)] == [(0, 4), (4, 7), (7, 10)]

    def test_more_nodes_than_elements(self):
        dist = Distribution(2, 5)
        ranges = [dist.node_range(n) for n in range(5)]
        assert ranges[0] == (0, 1)
        assert ranges[1] == (1, 2)
        assert all(lo == hi for lo, hi in ranges[2:])

    def test_owner_of(self):
        dist = Distribution(10, 3)
        assert dist.owner_of(0) == 0
        assert dist.owner_of(3) == 0
        assert dist.owner_of(4) == 1
        assert dist.owner_of(9) == 2

    def test_owner_of_out_of_bounds(self):
        dist = Distribution(10, 3)
        with pytest.raises(GlobalArrayError):
            dist.owner_of(10)
        with pytest.raises(GlobalArrayError):
            dist.owner_of(-1)

    def test_validation(self):
        with pytest.raises(GlobalArrayError):
            Distribution(-1, 3)
        with pytest.raises(GlobalArrayError):
            Distribution(10, 0)

    def test_zero_length_array(self):
        dist = Distribution(0, 3)
        assert dist.segments(0, 0) == []
        assert dist.distribution() == []


class TestSegments:
    def test_range_within_one_node(self):
        dist = Distribution(100, 4)
        assert dist.segments(5, 20) == [Segment(0, 5, 20)]

    def test_range_straddling_two_nodes(self):
        dist = Distribution(100, 4)
        assert dist.segments(20, 30) == [Segment(0, 20, 25), Segment(1, 25, 30)]

    def test_range_straddling_three_nodes(self):
        dist = Distribution(100, 4)
        segs = dist.segments(20, 60)
        assert segs == [
            Segment(0, 20, 25),
            Segment(1, 25, 50),
            Segment(2, 50, 60),
        ]

    def test_empty_range(self):
        dist = Distribution(100, 4)
        assert dist.segments(30, 30) == []

    def test_out_of_bounds_rejected(self):
        dist = Distribution(100, 4)
        with pytest.raises(GlobalArrayError):
            dist.segments(-1, 10)
        with pytest.raises(GlobalArrayError):
            dist.segments(90, 101)
        with pytest.raises(GlobalArrayError):
            dist.segments(50, 40)

    def test_last_segment_owner_matches_paper_lookup(self):
        dist = Distribution(100, 4)
        assert dist.last_segment_owner(20, 30) == 1
        assert dist.last_segment_owner(0, 25) == 0
        assert dist.last_segment_owner(0, 26) == 1

    def test_last_segment_owner_empty_range_rejected(self):
        dist = Distribution(100, 4)
        with pytest.raises(GlobalArrayError):
            dist.last_segment_owner(5, 5)

    def test_distribution_skips_empty_nodes(self):
        dist = Distribution(2, 5)
        assert dist.distribution() == [Segment(0, 0, 1), Segment(1, 1, 2)]


@given(
    total=st.integers(min_value=0, max_value=5000),
    n_nodes=st.integers(min_value=1, max_value=64),
)
def test_node_ranges_partition_the_array(total, n_nodes):
    dist = Distribution(total, n_nodes)
    cursor = 0
    for node in range(n_nodes):
        lo, hi = dist.node_range(node)
        assert lo == cursor
        assert hi >= lo
        cursor = hi
    assert cursor == total


@given(
    total=st.integers(min_value=1, max_value=5000),
    n_nodes=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
def test_segments_exactly_tile_any_range(total, n_nodes, data):
    dist = Distribution(total, n_nodes)
    lo = data.draw(st.integers(min_value=0, max_value=total))
    hi = data.draw(st.integers(min_value=lo, max_value=total))
    segments = dist.segments(lo, hi)
    # contiguous, ordered, and covering [lo, hi)
    cursor = lo
    for seg in segments:
        assert seg.lo == cursor
        assert seg.hi > seg.lo
        assert dist.owner_of(seg.lo) == seg.node
        assert dist.owner_of(seg.hi - 1) == seg.node
        cursor = seg.hi
    assert cursor == hi
    # maximality: adjacent segments have different owners
    for left, right in zip(segments, segments[1:]):
        assert left.node != right.node


@given(
    total=st.integers(min_value=1, max_value=2000),
    n_nodes=st.integers(min_value=1, max_value=32),
    index=st.integers(min_value=0, max_value=10**9),
)
def test_owner_of_agrees_with_node_range(total, n_nodes, index):
    dist = Distribution(total, n_nodes)
    index = index % total
    owner = dist.owner_of(index)
    lo, hi = dist.node_range(owner)
    assert lo <= index < hi
