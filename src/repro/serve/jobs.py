"""Job specs: what the service runs, canonicalized and content-addressed.

A job names one of the repository's independent-cell experiments and
the parameters that fully determine its output. Because every cell is a
deterministic pure function of its parameters, a job's *result* is a
pure function of its *normalized spec* — which is what makes the
content-addressed result cache sound: the digest covers the workload
structure (kind, workload name, scale, skew — the inputs the structure
token is derived from), the run configuration (codes, node/core
geometry, stealing), and the seed, so two submissions with the same
digest are guaranteed the same bytes back. In particular two jobs that
differ only in ``workload`` (say ``t2_7`` vs ``rbgs`` at the same
scale/seed) always hash to different addresses and can never collide
in the cache.

Job kinds
---------
- ``point`` — one :func:`~repro.experiments.fig9.run_point` cell:
  a single code at a single core count.
- ``fig9``  — the Figure 9 grid: every requested code at every
  requested core count, one cell per ``(code, cores)``.
- ``chaos`` — the fault-injection recovery sweep, one cell per runner.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.experiments.sweep import CellError, SweepCell
from repro.util.errors import ConfigurationError

__all__ = [
    "JOB_KINDS",
    "JobSpec",
    "job_digest",
    "build_cells",
    "serialize_results",
]

_SCALES = ("tiny", "small", "paper", "full")
_CODES = ("original", "v1", "v2", "v3", "v4", "v5")

#: kind -> {param: default}. ``None`` defaults are filled per kind.
_PARAM_DEFAULTS: dict[str, dict[str, Any]] = {
    "point": {
        "code": "v5",
        "cores": 2,
        "scale": "tiny",
        "workload": "t2_7",
        "n_nodes": 4,
        "seed": 7,
        "stealing": False,
        "skew_factor": 1,
        "skew_period": 0,
    },
    "fig9": {
        "codes": list(_CODES),
        "core_counts": [1, 2],
        "scale": "tiny",
        "workload": "t2_7",
        "n_nodes": 4,
        "seed": 7,
        "stealing": False,
        "skew_factor": 1,
        "skew_period": 0,
    },
    "chaos": {
        "codes": ["original", "v1", "v2", "v3", "v4", "v5"],
        "scale": "tiny",
        "workload": "t2_7",
        "n_nodes": 4,
        "cores_per_node": 2,
        "seed": 7,
        "fault_seed": 2025,
        "stealing": False,
    },
}

JOB_KINDS = tuple(_PARAM_DEFAULTS)


@dataclass(frozen=True)
class JobSpec:
    """One normalized job: ``kind`` plus its full parameter set.

    Build through :meth:`normalize` so that two submissions meaning the
    same run always carry the same parameters — and therefore the same
    digest.

    ``priority`` is scheduling metadata, **not** part of the content
    address: it biases which queued job a free worker picks (higher
    first, with waiting jobs aging upward so nothing starves) but
    cannot change the job's bytes, so two submissions differing only in
    priority still share one digest, one cache entry, and one coalesced
    execution.
    """

    kind: str
    params: dict
    priority: int = 0

    @classmethod
    def normalize(cls, kind: str, params: dict | None = None) -> "JobSpec":
        """Validate and canonicalize a raw submission."""
        if kind not in _PARAM_DEFAULTS:
            raise ConfigurationError(
                f"unknown job kind {kind!r}: expected one of {JOB_KINDS}"
            )
        defaults = _PARAM_DEFAULTS[kind]
        params = dict(params or {})
        # scheduling metadata rides alongside the content parameters in
        # a raw submission but is split off before digesting
        priority = int(params.pop("priority", 0))
        unknown = sorted(set(params) - set(defaults))
        if unknown:
            raise ConfigurationError(
                f"unknown parameter(s) for {kind!r} job: {unknown} "
                f"(accepted: {sorted(defaults)})"
            )
        merged = {}
        for name, default in defaults.items():
            value = params.get(name, default)
            # canonicalize collection params so [1, 2] == (1, 2)
            if isinstance(default, list):
                value = [type(default[0])(v) for v in value]
            elif isinstance(default, bool):
                value = bool(value)
            elif isinstance(default, int):
                value = int(value)
            merged[name] = value
        spec = cls(kind=kind, params=merged, priority=priority)
        spec._validate()
        return spec

    def _validate(self) -> None:
        from repro.workloads import parse_workload_token

        p = self.params
        if p["scale"] not in _SCALES:
            raise ConfigurationError(
                f"unknown scale {p['scale']!r}: expected one of {_SCALES}"
            )
        # rejects unknown workload names / malformed tokens at submit
        # time, before a worker ever sees the job
        parse_workload_token(str(p["workload"]), scale=p["scale"])
        codes = p["codes"] if "codes" in p else [p["code"]]
        bad = sorted(set(codes) - set(_CODES))
        if bad:
            raise ConfigurationError(
                f"unknown code(s) {bad}: expected from {_CODES}"
            )
        if not codes:
            raise ConfigurationError("a job needs at least one code")
        if "core_counts" in p and not p["core_counts"]:
            raise ConfigurationError("a fig9 job needs at least one core count")
        for name in ("n_nodes", "cores", "cores_per_node"):
            if name in p and p[name] < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {p[name]}")

    def to_dict(self) -> dict:
        d = {"kind": self.kind, "params": dict(self.params)}
        if self.priority:
            # only when set, so journals of priority-less jobs keep
            # their pre-v2 byte layout
            d["priority"] = self.priority
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        params = dict(d.get("params") or {})
        if d.get("priority"):
            params["priority"] = d["priority"]
        return cls.normalize(d["kind"], params)

    def describe(self) -> str:
        p = self.params
        return f"{self.kind}[{p['workload']}:{p['scale']}] seed={p['seed']}"


def job_digest(spec: JobSpec) -> str:
    """The job's content address.

    sha256 over the canonical JSON of the normalized spec. The
    normalized parameters determine the workload structure token, the
    RunConfig, and the seed of every cell the job expands to, so equal
    digests imply byte-identical results. Scheduling metadata
    (``priority``) is deliberately excluded: it cannot change the
    result bytes, so it must not split the cache address.
    """
    canonical = json.dumps(
        {"kind": spec.kind, "params": dict(spec.params)},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# expanding a spec into sweep cells
# ----------------------------------------------------------------------
def build_cells(spec: JobSpec) -> list[SweepCell]:
    """Expand one job into its independent sweep cells.

    For PaRSEC codes the chain inspection is precomputed here in the
    daemon process and shipped to the workers (the same
    :func:`~repro.core.api.precompute_inspection` trick the batch
    sweeps use), so a grid job pays one chain walk per variant height.
    """
    from repro.core import api
    from repro.experiments.chaos import _chaos_cell
    from repro.experiments.fig9 import run_point

    p = spec.params
    if spec.kind == "point":
        cache = api.precompute_inspection(
            p["scale"], p["n_nodes"], codes=(p["code"],), seed=p["seed"],
            skew_factor=p["skew_factor"], skew_period=p["skew_period"],
            workload=p["workload"],
        )
        return [
            SweepCell(
                key=(p["code"], p["cores"]),
                fn=run_point,
                kwargs=dict(
                    code=p["code"],
                    cores_per_node=p["cores"],
                    scale=p["scale"],
                    n_nodes=p["n_nodes"],
                    seed=p["seed"],
                    inspection_cache=cache,
                    stealing=p["stealing"],
                    skew_factor=p["skew_factor"],
                    skew_period=p["skew_period"],
                    workload=p["workload"],
                ),
            )
        ]
    if spec.kind == "fig9":
        cache = api.precompute_inspection(
            p["scale"], p["n_nodes"], codes=tuple(p["codes"]), seed=p["seed"],
            skew_factor=p["skew_factor"], skew_period=p["skew_period"],
            workload=p["workload"],
        )
        return [
            SweepCell(
                key=(code, cores),
                fn=run_point,
                kwargs=dict(
                    code=code,
                    cores_per_node=cores,
                    scale=p["scale"],
                    n_nodes=p["n_nodes"],
                    seed=p["seed"],
                    inspection_cache=cache,
                    stealing=p["stealing"],
                    skew_factor=p["skew_factor"],
                    skew_period=p["skew_period"],
                    workload=p["workload"],
                ),
            )
            for code in p["codes"]
            for cores in p["core_counts"]
        ]
    if spec.kind == "chaos":
        parsec = [c for c in p["codes"] if c != "original"]
        cache = api.precompute_inspection(
            p["scale"], p["n_nodes"], codes=tuple(parsec), seed=p["seed"],
            workload=p["workload"],
        )
        return [
            SweepCell(
                key=(name,),
                fn=_chaos_cell,
                kwargs=dict(
                    name=name,
                    scale=p["scale"],
                    n_nodes=p["n_nodes"],
                    cores_per_node=p["cores_per_node"],
                    seed=p["seed"],
                    fault_seed=p["fault_seed"],
                    cache=cache,
                    stealing=p["stealing"],
                    workload=p["workload"],
                ),
            )
            for name in p["codes"]
        ]
    raise ConfigurationError(f"unknown job kind {spec.kind!r}")  # pragma: no cover


def _jsonable(value: Any) -> Any:
    """Coerce one cell's return value to plain JSON data."""
    from dataclasses import asdict, is_dataclass

    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def serialize_results(
    cells: list[SweepCell], results: dict[tuple, Any]
) -> tuple[dict, dict]:
    """Split a (possibly partial) sweep result into (values, errors).

    Both are JSON-ready mappings keyed by the cell label; ``errors``
    carries the explicit :class:`CellError` records of a degraded job.
    """
    values: dict[str, Any] = {}
    errors: dict[str, Any] = {}
    for cell in cells:
        value = results[cell.key]
        if isinstance(value, CellError):
            errors[cell.label()] = value.to_dict()
        else:
            values[cell.label()] = _jsonable(value)
    return values, errors
