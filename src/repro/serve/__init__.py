"""`repro serve`: the simulation-as-a-service layer.

Everything below ``repro.serve`` is *host-side* infrastructure — a
long-lived daemon that accepts run/sweep jobs over local HTTP and
executes them on the self-healing
:class:`~repro.experiments.sweep.SweepExecutor` pool. The simulated
machine stays bitwise deterministic; this package only decides *when*
and *whether* a simulation runs, never how it behaves:

- :mod:`repro.serve.jobs` — job specs, canonical normalization, and
  the content-address digest (workload structure x run configuration x
  seed) that keys the result cache;
- :mod:`repro.serve.journal` — the append-only JSONL event store that
  lets queued and completed jobs survive a daemon crash;
- :mod:`repro.serve.cache` — the content-addressed result cache
  (repeat queries are free);
- :mod:`repro.serve.breaker` — the circuit breaker shedding new
  submissions when the pool saturates or jobs keep failing;
- :mod:`repro.serve.scheduler` — the admission queue and the worker
  loop joining all of the above;
- :mod:`repro.serve.daemon` — the HTTP front end and boot-time journal
  replay;
- :mod:`repro.serve.client` — the thin stdlib client used by the
  ``submit``/``status``/``result`` CLI subcommands.
"""

from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.serve.daemon import ServeDaemon
from repro.serve.jobs import JOB_KINDS, JobSpec, job_digest
from repro.serve.journal import JOURNAL_SCHEMA_VERSION, Journal
from repro.serve.scheduler import JobScheduler, SubmissionRejected

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "ServeDaemon",
    "JOB_KINDS",
    "JobSpec",
    "job_digest",
    "JOURNAL_SCHEMA_VERSION",
    "Journal",
    "JobScheduler",
    "SubmissionRejected",
]
