"""Client for the ``repro serve`` daemon — stdlib ``urllib`` only.

Wraps the small JSON-over-HTTP protocol the daemon speaks so the CLI
subcommands (``repro submit``/``status``/``result``) and tests never
hand-roll requests. A 503 from the circuit breaker surfaces as
:class:`ServiceUnavailable` carrying the daemon's ``retry_after_s``
hint; every other error status raises :class:`ServiceError` with the
daemon's message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.util.errors import ReproError

__all__ = ["ServiceClient", "ServiceError", "ServiceUnavailable"]


class ServiceError(ReproError):
    """The daemon answered with an error status."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServiceUnavailable(ServiceError):
    """The breaker shed the request; honor ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message, status=503)
        self.retry_after_s = retry_after_s


class ServiceClient:
    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642,
        timeout_s: float = 10.0,
    ) -> None:
        self.base = f"http://{host}:{port}"
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: Optional[dict] = None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base + path, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.status, json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                body = {}
            message = body.get("error", f"HTTP {exc.code}")
            if exc.code == 503:
                raise ServiceUnavailable(
                    message, float(body.get("retry_after_s") or 1.0)
                ) from None
            raise ServiceError(message, status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach daemon at {self.base}: {exc.reason}"
            ) from None

    # ------------------------------------------------------------------
    def submit(self, kind: str, params: Optional[dict] = None) -> dict:
        """POST a job; returns ``{"job_id", "status", "cached"}``."""
        _, body = self._request(
            "POST", "/jobs", {"kind": kind, "params": params or {}}
        )
        return body

    def status(self, job_id: str) -> dict:
        _, body = self._request("GET", f"/jobs/{job_id}")
        return body

    def result(self, job_id: str) -> dict:
        """The job's result; a still-running job returns its 202 body
        (``status`` queued/running plus a ``retry_after_s`` hint)."""
        _, body = self._request("GET", f"/jobs/{job_id}/result")
        return body

    def events(self, job_id: str, since: int = 0):
        """Stream a job's progress events as they happen.

        Generator over the daemon's ``GET /jobs/<id>/events`` route:
        yields one dict per event (``started``, per-cell ``cell``
        completions, terminal ``finished``) and returns when the
        daemon closes the stream — i.e. when the job is final. The
        daemon's keepalive lines (sent through quiet long-poll slices)
        are filtered out. ``since`` resumes after the N-th event, so a
        reconnecting client never re-processes what it already saw.
        """
        req = urllib.request.Request(
            f"{self.base}/jobs/{job_id}/events?since={int(since)}",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                for line in resp:
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    if event.get("type") == "keepalive":
                        continue
                    yield event
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                body = {}
            raise ServiceError(
                body.get("error", f"HTTP {exc.code}"), status=exc.code
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach daemon at {self.base}: {exc.reason}"
            ) from None

    def watch(self, job_id: str, timeout_s: float = 300.0) -> dict:
        """Follow a job's event stream to completion, then fetch its
        result payload. Raises :class:`ServiceError` on timeout."""
        deadline = time.monotonic() + timeout_s
        seen = 0
        while True:
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still unfinished after {timeout_s}s"
                )
            try:
                for event in self.events(job_id, since=seen):
                    seen += 1
                    if event.get("type") == "finished":
                        return self.result(job_id)
            except TimeoutError:
                continue  # idle longer than our socket timeout; resume
            # stream closed: the job is final (or was final on arrival)
            return self.result(job_id)

    def wait(self, job_id: str, timeout_s: float = 120.0) -> dict:
        """Poll until the job reaches a final state; returns the result
        payload. Raises :class:`ServiceError` on timeout."""
        deadline = time.monotonic() + timeout_s
        while True:
            body = self.result(job_id)
            if body.get("status") not in ("queued", "running"):
                return body
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {body.get('status')} "
                    f"after {timeout_s}s"
                )
            time.sleep(min(float(body.get("retry_after_s") or 0.5),
                           max(deadline - time.monotonic(), 0.05)))

    def overview(self) -> dict:
        _, body = self._request("GET", "/jobs")
        return body

    def metrics(self) -> dict:
        _, body = self._request("GET", "/metrics")
        return body

    def health(self) -> bool:
        try:
            status, body = self._request("GET", "/healthz")
        except ServiceError:
            return False
        return status == 200 and bool(body.get("ok"))
