"""Admission queue and worker loop: where jobs meet the executor pool.

The scheduler is the control plane of the service — the same
listener/worker split TaskTorrent and DuctTeip use to keep admission
responsive while a pool churns: HTTP threads only ever touch the
in-memory job table under a lock (microseconds), while one worker
thread drains the queue and runs each job's cells on the self-healing
:class:`~repro.experiments.sweep.SweepExecutor`.

Robustness invariants:

- every state transition is journaled *before* it is acknowledged;
- a job whose cells all succeed is ``done`` and enters the
  content-addressed cache; a job with poisoned/timed-out cells is
  degraded to ``partial`` — explicit per-cell error records, healthy
  cells byte-identical to a clean run — and is *not* cached;
- submissions pass the circuit breaker, which sheds load with a
  retry-after hint when the queue saturates or jobs keep failing;
- a submission whose digest matches a job already queued or running is
  coalesced onto that job instead of duplicating the work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.sweep import RetryPolicy, SweepExecutor
from repro.obs.registry import NULL_METRICS, MetricsRegistry
from repro.serve.breaker import Admission, CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.jobs import JobSpec, build_cells, job_digest, serialize_results
from repro.serve.journal import Journal, RecoveredState
from repro.util.errors import ReproError

__all__ = ["JobRecord", "JobScheduler", "SubmissionRejected"]


class SubmissionRejected(ReproError):
    """The breaker shed this submission; retry after ``retry_after_s``."""

    def __init__(self, admission: Admission) -> None:
        super().__init__(
            f"submission rejected ({admission.reason}); "
            f"retry after {admission.retry_after_s}s"
        )
        self.reason = admission.reason
        self.retry_after_s = admission.retry_after_s


@dataclass
class JobRecord:
    """One job's live state in the scheduler's table."""

    job_id: str
    spec: JobSpec
    digest: str
    status: str  # queued | running | done | partial | failed
    cached: bool = False
    cells_total: int = 0
    cells_done: int = 0
    result: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)

    def to_status_dict(self) -> dict:
        d = {
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "status": self.status,
            "digest": self.digest,
            "cached": self.cached,
        }
        if self.cells_total:
            d["cells_total"] = self.cells_total
            d["cells_done"] = self.cells_done
        if self.errors:
            d["error_cells"] = sorted(self.errors)
        return d

    def to_result_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "status": self.status,
            "cached": self.cached,
            "result": self.result,
            "errors": self.errors,
        }


class JobScheduler:
    """Job table + FIFO queue + one worker thread over the executor."""

    def __init__(
        self,
        journal: Journal,
        cache: Optional[ResultCache] = None,
        breaker: Optional[CircuitBreaker] = None,
        metrics: Optional[MetricsRegistry] = None,
        pool_jobs: int = 2,
        cell_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.journal = journal
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.cache = cache if cache is not None else ResultCache(self.metrics)
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            metrics=self.metrics
        )
        self.pool_jobs = pool_jobs
        self.cell_timeout = cell_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.jobs: dict[str, JobRecord] = {}
        self._queue: list[str] = []
        self._pending_by_digest: dict[str, str] = {}
        self._running_id: Optional[str] = None
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._stop = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._worker, name="repro-serve-worker", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Graceful stop: mark the in-flight job for resumption.

        The journal gets a ``job_requeued`` line for a job caught
        mid-run, so the next boot re-executes it; queued jobs need no
        extra event (submitted-but-not-finished already replays as
        pending).
        """
        with self._wake:
            self._stop = True
            if self._running_id is not None:
                self.journal.append("job_requeued", job_id=self._running_id)
            self._wake.notify_all()

    def recover(self, state: RecoveredState) -> None:
        """Adopt a journal replay: results to the cache, pending to the
        queue, finished jobs served straight from their records."""
        with self._lock:
            for digest, payload in state.results.items():
                self.cache.put(digest, payload)
            for job_id, job in state.jobs.items():
                spec = JobSpec.from_dict(job["spec"])
                record = JobRecord(
                    job_id=job_id,
                    spec=spec,
                    digest=job["digest"],
                    status=job["status"],
                    cached=bool(job.get("cached", False)),
                    result=job.get("result", {}),
                    errors=job.get("errors", {}),
                )
                self.jobs[job_id] = record
                if record.status in ("queued", "running"):
                    record.status = "queued"
                    self._queue.append(job_id)
                    self._pending_by_digest.setdefault(record.digest, job_id)
            self._gauges()
            self._wake.notify_all()

    # ------------------------------------------------------------------
    # admission (called from HTTP threads)
    # ------------------------------------------------------------------
    def submit(self, kind: str, params: Optional[dict] = None) -> JobRecord:
        """Admit one submission; raises :class:`SubmissionRejected` when
        the breaker sheds it. Cache hits and coalesced duplicates are
        admitted unconditionally — they add no work."""
        spec = JobSpec.normalize(kind, params)
        digest = job_digest(spec)
        with self._lock:
            self.metrics.inc("serve.jobs.submitted", kind=kind)
            cached = self.cache.get(digest)
            if cached is not None:
                job_id = f"j{self.journal.next_seq():06d}"
                record = JobRecord(
                    job_id=job_id,
                    spec=spec,
                    digest=digest,
                    status="done",
                    cached=True,
                    result=cached.get("result", {}),
                    errors=cached.get("errors", {}),
                )
                self.jobs[job_id] = record
                self.journal.append(
                    "job_submitted", job_id=job_id, digest=digest,
                    spec=spec.to_dict(),
                )
                self.journal.append(
                    "job_finished", job_id=job_id, status="done",
                    result=record.result, errors=record.errors, cached=True,
                )
                self.metrics.inc("serve.jobs.completed", status="done")
                return record
            pending = self._pending_by_digest.get(digest)
            if pending is not None:
                return self.jobs[pending]  # coalesce identical work
            admission = self.breaker.admit(self._depth())
            if not admission.allowed:
                raise SubmissionRejected(admission)
            job_id = f"j{self.journal.next_seq():06d}"
            record = JobRecord(
                job_id=job_id, spec=spec, digest=digest, status="queued"
            )
            self.jobs[job_id] = record
            self.journal.append(
                "job_submitted", job_id=job_id, digest=digest,
                spec=spec.to_dict(),
            )
            self._queue.append(job_id)
            self._pending_by_digest[digest] = job_id
            self._gauges()
            self._wake.notify_all()
            return record

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self.jobs.get(job_id)

    def overview(self) -> dict:
        with self._lock:
            return {
                "queue_depth": self._depth(),
                "running": self._running_id,
                "jobs": [r.to_status_dict() for r in self.jobs.values()],
                "breaker": self.breaker.to_dict(),
                "cache": self.cache.stats(),
            }

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _depth(self) -> int:
        return len(self._queue) + (1 if self._running_id is not None else 0)

    def _gauges(self) -> None:
        self.metrics.gauge_set("serve.queue.depth", float(len(self._queue)))
        self.metrics.gauge_set(
            "serve.jobs.inflight", 1.0 if self._running_id else 0.0
        )

    def _on_progress(self, record: JobRecord, line: str) -> None:
        if " done in " in line:
            with self._lock:
                record.cells_done += 1

    def _worker(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._stop:
                    self._wake.wait()
                if self._stop:
                    return
                job_id = self._queue.pop(0)
                record = self.jobs[job_id]
                record.status = "running"
                self._running_id = job_id
                self._gauges()
            self.journal.append("job_started", job_id=job_id)
            try:
                self._execute(record)
            except Exception as exc:  # noqa: BLE001 - the loop must live
                self._finish(
                    record, "failed", {},
                    {"_job": {"kind": "exception", "message": str(exc),
                              "label": "_job", "attempts": 1}},
                )
            finally:
                with self._wake:
                    self._running_id = None
                    self._pending_by_digest.pop(record.digest, None)
                    self._gauges()

    def _execute(self, record: JobRecord) -> None:
        cells = build_cells(record.spec)
        with self._lock:
            record.cells_total = len(cells)
            record.cells_done = 0
        executor = SweepExecutor(
            jobs=min(self.pool_jobs, max(len(cells), 1)),
            progress=lambda line: self._on_progress(record, line),
            label=record.job_id,
            timeout=self.cell_timeout,
            retry=self.retry,
            on_error="record",
        )
        results, stats = executor.run(cells)
        values, errors = serialize_results(cells, results)
        if stats.retries:
            self.metrics.inc("serve.cells.retried", value=float(stats.retries))
        if stats.pool_kills:
            self.metrics.inc("serve.pool.kills", value=float(stats.pool_kills))
        poisoned = sum(1 for e in errors.values() if e["kind"] == "poisoned")
        if poisoned:
            self.metrics.inc("serve.cells.poisoned", value=float(poisoned))
        if not errors:
            status = "done"
        elif values:
            status = "partial"
        else:
            status = "failed"
        self._finish(record, status, values, errors)

    def _finish(
        self, record: JobRecord, status: str, values: dict, errors: dict
    ) -> None:
        self.journal.append(
            "job_finished", job_id=record.job_id, status=status,
            result=values, errors=errors, cached=False,
        )
        with self._lock:
            record.status = status
            record.result = values
            record.errors = errors
            if status == "done":
                self.cache.put(record.digest, {"result": values, "errors": {}})
                self.breaker.record_success()
            else:
                self.breaker.record_failure()
            self.metrics.inc("serve.jobs.completed", status=status)
