"""Admission queue and worker pool: where jobs meet the executor pool.

The scheduler is the control plane of the service — the same
listener/worker split TaskTorrent and DuctTeip use to keep admission
responsive while executors churn: HTTP threads only ever touch the
in-memory job table under a lock (microseconds), while ``workers``
worker threads drain the queue *concurrently*, each running its job's
cells on the self-healing
:class:`~repro.experiments.sweep.SweepExecutor`. The process-slot
budget (``pool_jobs``) is shared: each running job carves a fair share
of the slots, so N in-flight jobs never oversubscribe the host by more
than one slot per job (the minimum that keeps every job progressing).

Admission is FIFO with aging priorities: a free worker picks the
queued job with the highest *effective* priority — the submitted
``priority`` plus one point per ``aging_s`` seconds spent waiting — so
an urgent small job overtakes a huge sweep, but a low-priority job
left waiting ages its way to the front instead of starving.

Robustness invariants:

- every state transition is journaled *before* it is acknowledged;
- a job whose cells all succeed is ``done`` and enters the
  content-addressed cache; a job with poisoned/timed-out cells is
  degraded to ``partial`` — explicit per-cell error records, healthy
  cells byte-identical to a clean run — and is *not* cached;
- submissions pass the circuit breaker, which sheds load with a
  retry-after hint when the queue saturates or jobs keep failing;
- a submission whose digest matches a job already queued or running is
  coalesced onto that job instead of duplicating the work (a higher
  resubmitted priority promotes the pending job);
- per-cell completion is reported through the executor's structured
  ``on_cell_done`` callback — never by parsing progress lines — and
  recorded as a per-job event stream that the daemon's
  ``GET /jobs/<id>/events`` long-poll serves incrementally.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.sweep import RetryPolicy, SweepCell, SweepExecutor
from repro.obs.registry import NULL_METRICS, MetricsRegistry
from repro.serve.breaker import Admission, CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.jobs import JobSpec, build_cells, job_digest, serialize_results
from repro.serve.journal import Journal, RecoveredState
from repro.util.errors import ConfigurationError, ReproError

__all__ = ["JobRecord", "JobScheduler", "SubmissionRejected"]

_FINAL_STATES = ("done", "partial", "failed")


class SubmissionRejected(ReproError):
    """The breaker shed this submission; retry after ``retry_after_s``."""

    def __init__(self, admission: Admission) -> None:
        super().__init__(
            f"submission rejected ({admission.reason}); "
            f"retry after {admission.retry_after_s}s"
        )
        self.reason = admission.reason
        self.retry_after_s = admission.retry_after_s


class _SlotBudget:
    """Carves the shared ``pool_jobs`` process slots among running jobs.

    A job asks for a share and gets ``max(1, min(want, free))`` — the
    floor of one guarantees progress for every admitted job even when
    the budget is exhausted (a bounded oversubscription of at most one
    process per extra job, which the OS scheduler absorbs), while the
    ``free`` cap keeps concurrent jobs from stacking full-size pools.
    """

    def __init__(self, total: int) -> None:
        self.total = max(1, int(total))
        self._allocated = 0
        self._lock = threading.Lock()

    def acquire(self, want: int) -> int:
        with self._lock:
            free = max(self.total - self._allocated, 0)
            grant = max(1, min(max(want, 1), free))
            self._allocated += grant
            return grant

    def release(self, granted: int) -> None:
        with self._lock:
            self._allocated -= granted

    @property
    def allocated(self) -> int:
        with self._lock:
            return self._allocated


@dataclass
class JobRecord:
    """One job's live state in the scheduler's table."""

    job_id: str
    spec: JobSpec
    digest: str
    status: str  # queued | running | done | partial | failed
    cached: bool = False
    cells_total: int = 0
    cells_done: int = 0
    result: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)
    #: scheduling metadata: submitted priority, aged while queued
    priority: int = 0
    enqueued_at: float = 0.0
    enqueue_seq: int = 0
    #: structured progress stream served by ``GET /jobs/<id>/events``
    events: list = field(default_factory=list)

    def effective_priority(self, now: float, aging_s: float) -> float:
        """Submitted priority plus one point per ``aging_s`` waited."""
        if aging_s <= 0:
            return float(self.priority)
        return self.priority + max(now - self.enqueued_at, 0.0) / aging_s

    def to_status_dict(self) -> dict:
        d = {
            "job_id": self.job_id,
            "kind": self.spec.kind,
            "status": self.status,
            "digest": self.digest,
            "cached": self.cached,
        }
        if self.priority:
            d["priority"] = self.priority
        if self.cells_total:
            d["cells_total"] = self.cells_total
            d["cells_done"] = self.cells_done
        if self.errors:
            d["error_cells"] = sorted(self.errors)
        return d

    def to_result_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "status": self.status,
            "cached": self.cached,
            "result": self.result,
            "errors": self.errors,
        }


class JobScheduler:
    """Job table + aged-priority queue + N worker threads over the
    shared executor budget."""

    def __init__(
        self,
        journal: Journal,
        cache: Optional[ResultCache] = None,
        breaker: Optional[CircuitBreaker] = None,
        metrics: Optional[MetricsRegistry] = None,
        workers: int = 1,
        pool_jobs: int = 2,
        cell_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        aging_s: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.journal = journal
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.cache = cache if cache is not None else ResultCache(self.metrics)
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            metrics=self.metrics
        )
        self.workers = workers
        self.pool_jobs = pool_jobs
        self.cell_timeout = cell_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.aging_s = aging_s
        self.jobs: dict[str, JobRecord] = {}
        self._queue: list[str] = []
        self._pending_by_digest: dict[str, str] = {}
        self._running: set[str] = set()
        self._budget = _SlotBudget(pool_jobs)
        self._enqueue_seq = 0
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        #: notified on every per-job event append (long-poll waiters)
        self._events_cond = threading.Condition(self._lock)
        self._stop = False
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-serve-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Graceful stop: mark every in-flight job for resumption.

        The journal gets a ``job_requeued`` line for each job caught
        mid-run, so the next boot re-executes them; queued jobs need no
        extra event (submitted-but-not-finished already replays as
        pending).
        """
        with self._wake:
            self._stop = True
            for job_id in sorted(self._running):
                self.journal.append("job_requeued", job_id=job_id)
            self._wake.notify_all()
            self._events_cond.notify_all()

    def recover(self, state: RecoveredState) -> None:
        """Adopt a journal replay: results to the cache, pending to the
        queue, finished jobs served straight from their records."""
        with self._lock:
            for digest, payload in state.results.items():
                self.cache.put(digest, payload)
            for job_id, job in state.jobs.items():
                spec = JobSpec.from_dict(job["spec"])
                record = JobRecord(
                    job_id=job_id,
                    spec=spec,
                    digest=job["digest"],
                    status=job["status"],
                    cached=bool(job.get("cached", False)),
                    result=job.get("result", {}),
                    errors=job.get("errors", {}),
                    priority=spec.priority,
                )
                self.jobs[job_id] = record
                if record.status in ("queued", "running"):
                    record.status = "queued"
                    self._enqueue(record)
                    self._pending_by_digest.setdefault(record.digest, job_id)
            self._gauges()
            self._wake.notify_all()

    # ------------------------------------------------------------------
    # admission (called from HTTP threads)
    # ------------------------------------------------------------------
    def submit(self, kind: str, params: Optional[dict] = None) -> JobRecord:
        """Admit one submission; raises :class:`SubmissionRejected` when
        the breaker sheds it. Cache hits and coalesced duplicates are
        admitted unconditionally — they add no work."""
        spec = JobSpec.normalize(kind, params)
        digest = job_digest(spec)
        with self._lock:
            self.metrics.inc("serve.jobs.submitted", kind=kind)
            cached = self.cache.get(digest)
            if cached is not None:
                job_id = self.journal.reserve_id()
                record = JobRecord(
                    job_id=job_id,
                    spec=spec,
                    digest=digest,
                    status="done",
                    cached=True,
                    result=cached.get("result", {}),
                    errors=cached.get("errors", {}),
                    priority=spec.priority,
                )
                self.jobs[job_id] = record
                self.journal.append(
                    "job_submitted", job_id=job_id, digest=digest,
                    spec=spec.to_dict(),
                )
                # the payload is already durable under this digest —
                # re-appending it would grow the journal by the full
                # result size on every hit for zero information
                self.journal.append(
                    "job_finished", job_id=job_id, status="done", cached=True,
                )
                self.metrics.inc("serve.jobs.completed", status="done")
                self._push_event(
                    record,
                    {"type": "finished", "status": "done", "cached": True},
                )
                # hits grow the journal without ever reaching _finish,
                # so the size trigger must ride this append too
                self.journal.maybe_compact()
                return record
            pending = self._pending_by_digest.get(digest)
            if pending is not None:
                record = self.jobs[pending]  # coalesce identical work
                if spec.priority > record.priority:
                    record.priority = spec.priority  # promote, never demote
                return record
            admission = self.breaker.admit(self._depth())
            if not admission.allowed:
                raise SubmissionRejected(admission)
            job_id = self.journal.reserve_id()
            record = JobRecord(
                job_id=job_id, spec=spec, digest=digest, status="queued",
                priority=spec.priority,
            )
            self.jobs[job_id] = record
            self.journal.append(
                "job_submitted", job_id=job_id, digest=digest,
                spec=spec.to_dict(),
            )
            self._enqueue(record)
            self._pending_by_digest[digest] = job_id
            self._gauges()
            self._wake.notify_all()
            return record

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self.jobs.get(job_id)

    def overview(self) -> dict:
        with self._lock:
            return {
                "queue_depth": self._depth(),
                "running": sorted(self._running),
                "workers": self.workers,
                "jobs": [r.to_status_dict() for r in self.jobs.values()],
                "breaker": self.breaker.to_dict(),
                "cache": self.cache.stats(),
            }

    # ------------------------------------------------------------------
    # per-job event stream (long-polled by the daemon's /events route)
    # ------------------------------------------------------------------
    def _push_event(self, record: JobRecord, event: dict) -> None:
        with self._events_cond:
            event = {"seq": len(record.events) + 1, **event}
            record.events.append(event)
            self._events_cond.notify_all()

    def events_since(
        self, job_id: str, cursor: int, wait_s: float = 0.0
    ) -> tuple[list[dict], bool]:
        """Events past ``cursor`` for one job, long-poll style.

        Blocks up to ``wait_s`` for new events when none are pending.
        Returns ``(events, final)`` — ``final`` is True once the job
        has reached a terminal state *and* the caller has seen every
        event, i.e. the stream is complete and the connection can
        close. Unknown jobs return ``([], True)``.
        """
        deadline = time.monotonic() + max(wait_s, 0.0)
        with self._events_cond:
            while True:
                record = self.jobs.get(job_id)
                if record is None:
                    return [], True
                fresh = [dict(e) for e in record.events[cursor:]]
                final = record.status in _FINAL_STATES and not fresh
                if fresh or final or self._stop:
                    return fresh, final or self._stop
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], False
                self._events_cond.wait(remaining)

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _enqueue(self, record: JobRecord) -> None:
        self._enqueue_seq += 1
        record.enqueue_seq = self._enqueue_seq
        record.enqueued_at = time.monotonic()
        self._queue.append(record.job_id)

    def _pick_locked(self) -> str:
        """Pop the queued job with the highest effective priority.

        Ties (equal submitted priority) resolve FIFO because the
        longer-waiting job has aged strictly more; distinct priorities
        resolve by aged priority, so a big sweep cannot indefinitely
        shadow a later small job and vice versa.
        """
        now = time.monotonic()
        best = max(
            self._queue,
            key=lambda job_id: (
                self.jobs[job_id].effective_priority(now, self.aging_s),
                -self.jobs[job_id].enqueue_seq,
            ),
        )
        self._queue.remove(best)
        return best

    def _depth(self) -> int:
        return len(self._queue) + len(self._running)

    def _gauges(self) -> None:
        self.metrics.gauge_set("serve.queue.depth", float(len(self._queue)))
        self.metrics.gauge_set(
            "serve.jobs.inflight", float(len(self._running))
        )

    def _on_cell_done(
        self, record: JobRecord, cell: SweepCell, ok: bool, wall: float
    ) -> None:
        """Structured per-cell completion from the executor — exactly
        once per cell, retries and progress-format changes immaterial."""
        with self._lock:
            record.cells_done += 1
            self._push_event(
                record,
                {
                    "type": "cell",
                    "cell": cell.label(),
                    "ok": ok,
                    "wall_s": round(wall, 6),
                    "cells_done": record.cells_done,
                    "cells_total": record.cells_total,
                },
            )

    def _journal_or_abandon(self, event: str, **fields) -> bool:
        """Append unless a concurrent shutdown closed the journal.

        Graceful stop journals ``job_requeued`` for every in-flight job
        and may close the journal while a worker is still finishing; the
        worker's late transition is abandoned (False) instead of
        crashing the thread — replay re-runs the job, which the
        at-least-once semantics already absorb. A closed journal
        *outside* shutdown is still a hard error.
        """
        try:
            self.journal.append(event, **fields)
            return True
        except ValueError:
            if self._stop:
                return False
            raise

    def _worker(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._stop:
                    self._wake.wait()
                if self._stop:
                    return
                job_id = self._pick_locked()
                record = self.jobs[job_id]
                record.status = "running"
                self._running.add(job_id)
                self._gauges()
            if not self._journal_or_abandon("job_started", job_id=job_id):
                return
            self._push_event(record, {"type": "started"})
            try:
                self._execute(record)
            except Exception as exc:  # noqa: BLE001 - the loop must live
                self._finish(
                    record, "failed", {},
                    {"_job": {"kind": "exception", "message": str(exc),
                              "label": "_job", "attempts": 1}},
                )
            finally:
                with self._wake:
                    self._running.discard(job_id)
                    self._pending_by_digest.pop(record.digest, None)
                    self._gauges()

    def _slot_request(self) -> int:
        """How many process slots this job should ask the budget for:
        the full pool when it is alone, else a 1/workers fair share."""
        with self._lock:
            others = (len(self._running) - 1) + len(self._queue)
        if others <= 0:
            return self.pool_jobs
        return max(1, self.pool_jobs // self.workers)

    def _execute(self, record: JobRecord) -> None:
        cells = build_cells(record.spec)
        with self._lock:
            record.cells_total = len(cells)
            record.cells_done = 0
        slots = self._budget.acquire(self._slot_request())
        try:
            executor = SweepExecutor(
                jobs=min(slots, max(len(cells), 1)),
                label=record.job_id,
                timeout=self.cell_timeout,
                retry=self.retry,
                on_error="record",
                on_cell_done=lambda cell, ok, wall: self._on_cell_done(
                    record, cell, ok, wall
                ),
            )
            results, stats = executor.run(cells)
        finally:
            self._budget.release(slots)
        values, errors = serialize_results(cells, results)
        with self._lock:
            if stats.retries:
                self.metrics.inc(
                    "serve.cells.retried", value=float(stats.retries)
                )
            if stats.pool_kills:
                self.metrics.inc(
                    "serve.pool.kills", value=float(stats.pool_kills)
                )
            poisoned = sum(
                1 for e in errors.values() if e["kind"] == "poisoned"
            )
            if poisoned:
                self.metrics.inc(
                    "serve.cells.poisoned", value=float(poisoned)
                )
        if not errors:
            status = "done"
        elif values:
            status = "partial"
        else:
            status = "failed"
        self._finish(record, status, values, errors)

    def _finish(
        self, record: JobRecord, status: str, values: dict, errors: dict
    ) -> None:
        if not self._journal_or_abandon(
            "job_finished", job_id=record.job_id, status=status,
            result=values, errors=errors, cached=False,
        ):
            return  # shutdown already requeued this job for the next boot
        with self._lock:
            record.status = status
            record.result = values
            record.errors = errors
            if status == "done":
                self.cache.put(record.digest, {"result": values, "errors": {}})
                self.breaker.record_success()
            else:
                self.breaker.record_failure()
            self.metrics.inc("serve.jobs.completed", status=status)
            self._push_event(
                record, {"type": "finished", "status": status, "cached": False}
            )
        # size-triggered compaction rides on the append that grew the
        # file; it folds finished payloads into one snapshot line
        try:
            self.journal.maybe_compact()
        except ValueError:
            if not self._stop:  # closed journal is only OK mid-shutdown
                raise
