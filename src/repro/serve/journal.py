"""The append-only JSONL journal: jobs survive the daemon that ran them.

Every state transition the service cares about is one JSON line,
appended and fsynced before the transition is acknowledged anywhere
else. Replay is a pure fold over the lines, so a daemon that was
SIGKILLed mid-anything reboots into a consistent state: completed jobs
come back as cache entries, queued and in-flight jobs come back as
queued (at-least-once execution — results are never duplicated because
a ``job_finished`` line is the *only* thing that marks a job done).

Record schema (``schema`` = :data:`JOURNAL_SCHEMA_VERSION`)::

    {"schema": 1, "seq": <int>, "event": <type>, ...fields}

Event types and their fields:

- ``daemon_started``  — ``recovered_jobs``, ``recovered_results``
- ``job_submitted``   — ``job_id``, ``digest``, ``spec`` (normalized)
- ``job_started``     — ``job_id``
- ``job_finished``    — ``job_id``, ``status`` (``done``/``partial``/
  ``failed``), ``result`` (cell values), ``errors`` (per-cell error
  records), ``cached`` (true when served from the result cache)
- ``job_requeued``    — ``job_id`` (graceful shutdown marked it for
  resumption)
- ``daemon_stopped``  — ``clean`` (always true; a crash writes nothing)

The reader is tolerant: a torn final line (the daemon died mid-write)
or a corrupt line is skipped and counted, never fatal — losing one
unacknowledged event is the crash semantics the at-least-once replay
already absorbs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

__all__ = ["JOURNAL_SCHEMA_VERSION", "Journal", "RecoveredState", "rebuild"]

#: Bump when the record shape changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1


class Journal:
    """Append-only event store over one JSONL file.

    ``append`` assigns the next sequence number, writes the line, and
    flushes + fsyncs before returning — the journal is the source of
    truth, so nothing may be acknowledged before it is durable.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        existing = read_events(self.path) if self.path.exists() else []
        self._seq = max((e["seq"] for e in existing), default=0)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[object] = open(self.path, "a", encoding="utf-8")

    def next_seq(self) -> int:
        """The sequence number the next :meth:`append` will assign.

        Used to mint job ids (``j<seq>``) that match their
        ``job_submitted`` record and stay unique across restarts —
        replay restores the counter from the highest seq on disk.
        """
        return self._seq + 1

    def append(self, event: str, **fields) -> dict:
        """Durably append one event; returns the full record."""
        if self._fh is None:
            raise ValueError("journal is closed")
        self._seq += 1
        record = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "seq": self._seq,
            "event": event,
            **fields,
        }
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> list[dict]:
    """All intact events in the journal, in append order.

    Torn or corrupt lines are skipped (see the module docstring);
    events from a future schema raise so an old daemon never
    misinterprets a new journal.
    """
    events: list[dict] = []
    path = Path(path)
    if not path.exists():
        return events
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn write from a crash mid-append
        if not isinstance(record, dict) or "event" not in record:
            continue
        schema = record.get("schema", 0)
        if schema > JOURNAL_SCHEMA_VERSION:
            raise ValueError(
                f"journal {path} has schema {schema}; this daemon "
                f"understands up to {JOURNAL_SCHEMA_VERSION}"
            )
        events.append(record)
    return events


@dataclass
class RecoveredState:
    """What a journal replay reconstructs.

    ``jobs`` maps job id to its last-known record (``spec``,
    ``digest``, ``status``, and for finished jobs ``result``/
    ``errors``), in submission order. ``pending`` lists the job ids
    that must be re-executed — submitted or started but never finished
    (including explicitly requeued ones). ``results`` maps digests of
    cleanly finished (``done``) jobs to their result payloads for the
    cache.
    """

    jobs: dict[str, dict] = field(default_factory=dict)
    pending: list[str] = field(default_factory=list)
    results: dict[str, dict] = field(default_factory=dict)


def rebuild(events: list[dict]) -> RecoveredState:
    """Fold the journal into the state a rebooting daemon resumes from.

    At-least-once semantics: any job without a ``job_finished`` event
    is pending again, whether it was queued, running, or explicitly
    requeued at shutdown. Exactly-once *results*: a finished job is
    final — replay never re-runs it, and its digest entry repopulates
    the content-addressed cache (only ``done`` jobs: a ``partial`` or
    ``failed`` payload must not satisfy future submissions that might
    succeed).
    """
    state = RecoveredState()
    for record in events:
        event = record["event"]
        job_id = record.get("job_id")
        if event == "job_submitted":
            state.jobs[job_id] = {
                "job_id": job_id,
                "spec": record["spec"],
                "digest": record["digest"],
                "status": "queued",
            }
        elif event == "job_started":
            if job_id in state.jobs:
                state.jobs[job_id]["status"] = "running"
        elif event == "job_requeued":
            if job_id in state.jobs:
                state.jobs[job_id]["status"] = "queued"
        elif event == "job_finished":
            job = state.jobs.get(job_id)
            if job is None:
                continue
            job["status"] = record["status"]
            job["result"] = record.get("result", {})
            job["errors"] = record.get("errors", {})
            job["cached"] = bool(record.get("cached", False))
            if record["status"] == "done":
                state.results[job["digest"]] = {
                    "result": job["result"],
                    "errors": job["errors"],
                }
    state.pending = [
        job_id
        for job_id, job in state.jobs.items()
        if job["status"] in ("queued", "running")
    ]
    return state
