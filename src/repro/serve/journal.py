"""The append-only JSONL journal: jobs survive the daemon that ran them.

Every state transition the service cares about is one JSON line,
appended and fsynced before the transition is acknowledged anywhere
else. Replay is a pure fold over the lines, so a daemon that was
SIGKILLed mid-anything reboots into a consistent state: completed jobs
come back as cache entries, queued and in-flight jobs come back as
queued (at-least-once execution — results are never duplicated because
a ``job_finished`` line is the *only* thing that marks a job done).

The writer is thread-safe: HTTP submit threads and N scheduler workers
all append through one internal lock, so sequence numbers are strictly
increasing and job ids minted by :meth:`Journal.reserve_id` never
collide — neither between concurrent threads nor across restarts.

Record schema (``schema`` = :data:`JOURNAL_SCHEMA_VERSION`)::

    {"schema": 2, "seq": <int>, "event": <type>, ...fields}

Event types and their fields:

- ``daemon_started``  — ``recovered_jobs``, ``recovered_results``,
  ``corrupt_lines`` (torn/corrupt lines skipped during boot replay)
- ``job_submitted``   — ``job_id``, ``digest``, ``spec`` (normalized)
- ``job_started``     — ``job_id``
- ``job_finished``    — ``job_id``, ``status`` (``done``/``partial``/
  ``failed``), ``result`` (cell values), ``errors`` (per-cell error
  records), ``cached`` (true when served from the result cache).
  Cache-hit finishes **omit** ``result``/``errors`` entirely — the
  payload is already durable under the job's digest, so re-appending
  it on every hit would grow the journal by the full result size for
  zero information; replay re-attaches it from the digest entry.
- ``job_requeued``    — ``job_id`` (graceful shutdown marked it for
  resumption)
- ``snapshot``        — ``jobs``, ``specs``, ``results``,
  ``folded_events``: the complete fold of everything before it (schema
  v2; see *Compaction*). The fold is deduplicated: done jobs' payloads
  are stored once under their digest in ``results``, and each unique
  spec is stored once under its digest in ``specs`` (a digest hit ten
  times folds to ten ~100-byte job records sharing one spec entry);
  replay re-attaches both.
- ``daemon_stopped``  — ``clean`` (always true; a crash writes nothing)

The reader is tolerant: a torn final line (the daemon died mid-write)
or a corrupt line is skipped **and counted** (``read_events`` returns
a :class:`JournalEvents` list whose ``corrupt_lines`` attribute holds
the skip count), never fatal — losing one unacknowledged event is the
crash semantics the at-least-once replay already absorbs.

Compaction
----------
Without compaction the JSONL grows forever: every finished job appends
its full result payload, and long-lived daemons accrete unbounded
history. :meth:`Journal.compact` folds the whole file into a single
``snapshot`` record — the serialized :class:`RecoveredState` fold of
every line so far — and atomically replaces the file with that one
line; subsequent appends form the tail. Replaying ``snapshot + tail``
rebuilds a state identical to replaying the uncompacted journal (the
equivalence the tests pin down). Compaction runs when the live file
exceeds ``compact_bytes`` (see :meth:`maybe_compact`) and on clean
shutdown. Schema v1 journals (pre-snapshot) still replay unchanged; a
v1 daemon refuses a v2 journal rather than misinterpret it.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "Journal",
    "JournalEvents",
    "RecoveredState",
    "read_events",
    "rebuild",
]

#: Bump when the record shape changes incompatibly.
#: v2 added ``snapshot`` records and payload-suppressed cache-hit
#: ``job_finished`` lines; v1 journals replay unchanged.
JOURNAL_SCHEMA_VERSION = 2


class JournalEvents(list):
    """The intact events of a journal, in append order.

    A plain ``list`` of record dicts plus ``corrupt_lines``: how many
    torn or otherwise unparseable lines the reader skipped. The count
    is what the daemon reports in its ``daemon_started`` record and on
    ``/metrics`` — silent skipping hid real corruption before.
    """

    def __init__(
        self, events: Iterable[dict] = (), corrupt_lines: int = 0
    ) -> None:
        super().__init__(events)
        self.corrupt_lines = corrupt_lines


def _max_job_id(events: Iterable[dict]) -> int:
    """The highest ``j<N>``-style job id number mentioned anywhere —
    including inside snapshot records — used to seed the id counter."""
    best = 0
    for record in events:
        ids = [record["job_id"]] if "job_id" in record else []
        if record.get("event") == "snapshot":
            ids.extend(record.get("jobs", {}))
        for job_id in ids:
            if isinstance(job_id, str) and job_id[:1] == "j":
                digits = job_id[1:]
                if digits.isdigit():
                    best = max(best, int(digits))
    return best


class Journal:
    """Append-only event store over one JSONL file.

    ``append`` assigns the next sequence number, writes the line, and
    flushes + fsyncs before returning — the journal is the source of
    truth, so nothing may be acknowledged before it is durable. All
    mutation (``append``, ``reserve_id``, ``compact``) is serialized
    on one internal lock, so concurrent submit/finish paths can never
    duplicate a seq or a job id.

    ``compact_bytes`` arms size-triggered compaction: when the file
    grows past that many bytes, :meth:`maybe_compact` folds it into a
    snapshot. ``0`` (the default) disables the size trigger; explicit
    :meth:`compact` calls (clean shutdown) work regardless.
    """

    def __init__(
        self, path: Union[str, Path], compact_bytes: int = 0
    ) -> None:
        self.path = Path(path)
        self.compact_bytes = int(compact_bytes)
        self.compactions = 0
        self._lock = threading.Lock()
        existing = read_events(self.path) if self.path.exists() else []
        self._seq = max((e["seq"] for e in existing), default=0)
        #: id counter for :meth:`reserve_id`, seeded above both the seq
        #: high-water mark and every job id already on disk, so a
        #: restarted daemon can never re-mint an id — not even one that
        #: landed with a smaller seq than its own number because its
        #: submit thread raced others to the journal before a crash
        self._next_id = max(self._seq, _max_job_id(existing))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[object] = open(self.path, "a", encoding="utf-8")

    def next_seq(self) -> int:
        """The sequence number the next :meth:`append` will assign.

        Diagnostic only — under concurrency another thread may append
        first. Use :meth:`reserve_id` to mint job ids.
        """
        with self._lock:
            return self._seq + 1

    def reserve_id(self) -> str:
        """Atomically mint a unique job id (``j<counter>``).

        Safe to call from any thread: the counter shares the journal
        lock, starts above every seq already on disk, and only grows —
        so ids are unique across concurrent submissions *and* across
        daemon restarts. (Pre-v2 code minted ids from ``next_seq()``,
        which two submit threads could read identically.)
        """
        with self._lock:
            self._next_id += 1
            return f"j{self._next_id:06d}"

    def append(self, event: str, **fields) -> dict:
        """Durably append one event; returns the full record."""
        with self._lock:
            return self._append_locked(event, **fields)

    def _append_locked(self, event: str, **fields) -> dict:
        if self._fh is None:
            raise ValueError("journal is closed")
        self._seq += 1
        record = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "seq": self._seq,
            "event": event,
            **fields,
        }
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        return record

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Current on-disk size of the journal file."""
        try:
            return self.path.stat().st_size
        except OSError:  # pragma: no cover - racing an external unlink
            return 0

    def maybe_compact(self) -> bool:
        """Compact when the file has outgrown ``compact_bytes``.

        Returns True when a snapshot was written. A ``compact_bytes``
        of 0 disables the size trigger entirely.
        """
        if self.compact_bytes <= 0:
            return False
        if self.size_bytes() <= self.compact_bytes:
            return False
        self.compact()
        return True

    def compact(self) -> dict:
        """Fold the whole journal into one ``snapshot`` record.

        Reads every intact line, rebuilds the :class:`RecoveredState`
        fold, writes a single snapshot record carrying that state to a
        temporary file, fsyncs it, and atomically replaces the journal
        — a crash at any point leaves either the old file or the new
        one, both of which replay to the same state. Sequence numbers
        continue past the snapshot's, so the tail appended afterwards
        stays ordered. Returns the snapshot record.
        """
        with self._lock:
            if self._fh is None:
                raise ValueError("journal is closed")
            self._fh.flush()
            os.fsync(self._fh.fileno())
            events = read_events(self.path)
            state = rebuild(events)
            # dedup the fold: a done job's payload already lives under
            # its digest in ``results``, and every submission of the
            # same digest (the original plus all its cache hits)
            # carries one identical spec — store each exactly once
            # instead of once per job record
            specs: dict[str, dict] = {}
            jobs = {}
            for job_id, job in state.jobs.items():
                job = dict(job)
                digest = job.get("digest")
                if digest and "spec" in job:
                    specs.setdefault(digest, job.pop("spec"))
                if job.get("status") == "done" and digest in state.results:
                    job.pop("result", None)
                    job.pop("errors", None)
                jobs[job_id] = job
            self._seq += 1
            record = {
                "schema": JOURNAL_SCHEMA_VERSION,
                "seq": self._seq,
                "event": "snapshot",
                "jobs": jobs,
                "specs": specs,
                "results": state.results,
                "folded_events": len(events),
            }
            tmp = self.path.with_name(self.path.name + ".compact")
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            self._fh.close()
            os.replace(tmp, self.path)
            self._fh = open(self.path, "a", encoding="utf-8")
            self.compactions += 1
            return record

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> JournalEvents:
    """All intact events in the journal, in append order.

    Torn or corrupt lines are skipped and counted (the returned
    :class:`JournalEvents` carries ``corrupt_lines``); events from a
    future schema raise so an old daemon never misinterprets a new
    journal.
    """
    events = JournalEvents()
    path = Path(path)
    if not path.exists():
        return events
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            events.corrupt_lines += 1  # torn write from a crash mid-append
            continue
        if not isinstance(record, dict) or "event" not in record:
            events.corrupt_lines += 1
            continue
        schema = record.get("schema", 0)
        if schema > JOURNAL_SCHEMA_VERSION:
            raise ValueError(
                f"journal {path} has schema {schema}; this daemon "
                f"understands up to {JOURNAL_SCHEMA_VERSION}"
            )
        events.append(record)
    return events


@dataclass
class RecoveredState:
    """What a journal replay reconstructs.

    ``jobs`` maps job id to its last-known record (``spec``,
    ``digest``, ``status``, and for finished jobs ``result``/
    ``errors``), in submission order. ``pending`` lists the job ids
    that must be re-executed — submitted or started but never finished
    (including explicitly requeued ones). ``results`` maps digests of
    cleanly finished (``done``) jobs to their result payloads for the
    cache.
    """

    jobs: dict[str, dict] = field(default_factory=dict)
    pending: list[str] = field(default_factory=list)
    results: dict[str, dict] = field(default_factory=dict)


def rebuild(events: list[dict]) -> RecoveredState:
    """Fold the journal into the state a rebooting daemon resumes from.

    At-least-once semantics: any job without a ``job_finished`` event
    is pending again, whether it was queued, running, or explicitly
    requeued at shutdown. Exactly-once *results*: a finished job is
    final — replay never re-runs it, and its digest entry repopulates
    the content-addressed cache (only ``done`` jobs: a ``partial`` or
    ``failed`` payload must not satisfy future submissions that might
    succeed). A ``snapshot`` record replaces the running fold wholesale
    — it *is* the fold of everything before it — and the tail after it
    folds on top as usual.
    """
    state = RecoveredState()
    for record in events:
        event = record["event"]
        job_id = record.get("job_id")
        if event == "snapshot":
            state.results = {
                k: dict(v) for k, v in record["results"].items()
            }
            specs = record.get("specs", {})
            state.jobs = {}
            for k, v in record["jobs"].items():
                job = dict(v)
                digest = job.get("digest")
                if "spec" not in job and digest in specs:
                    job["spec"] = dict(specs[digest])
                if job.get("status") == "done" and "result" not in job:
                    # payload stripped at snapshot time; re-attach it
                    # from the digest entry (exactly the cache-hit
                    # suppression rule, applied to the fold)
                    payload = state.results.get(digest, {})
                    job["result"] = payload.get("result", {})
                    job["errors"] = payload.get("errors", {})
                state.jobs[k] = job
        elif event == "job_submitted":
            state.jobs[job_id] = {
                "job_id": job_id,
                "spec": record["spec"],
                "digest": record["digest"],
                "status": "queued",
            }
        elif event == "job_started":
            if job_id in state.jobs:
                state.jobs[job_id]["status"] = "running"
        elif event == "job_requeued":
            if job_id in state.jobs:
                state.jobs[job_id]["status"] = "queued"
        elif event == "job_finished":
            job = state.jobs.get(job_id)
            if job is None:
                continue
            job["status"] = record["status"]
            job["cached"] = bool(record.get("cached", False))
            if "result" in record or not job["cached"]:
                job["result"] = record.get("result", {})
                job["errors"] = record.get("errors", {})
            else:
                # v2 cache-hit finish: the payload was suppressed at
                # write time; re-attach it from the digest entry the
                # original (non-cached) finish populated
                payload = state.results.get(job["digest"], {})
                job["result"] = payload.get("result", {})
                job["errors"] = payload.get("errors", {})
            if record["status"] == "done":
                state.results[job["digest"]] = {
                    "result": job["result"],
                    "errors": job["errors"],
                }
    state.pending = [
        job_id
        for job_id, job in state.jobs.items()
        if job["status"] in ("queued", "running")
    ]
    return state
