"""The ``repro serve`` daemon: a local HTTP front end over the scheduler.

Stdlib only — a ``ThreadingHTTPServer`` on localhost. HTTP threads are
the *listener* plane: they parse, consult the scheduler under its lock,
and answer; all simulation work happens on the scheduler's worker pool
(``workers`` concurrent jobs over the shared ``pool_jobs`` slot
budget).

Routes::

    POST /jobs              {"kind": ..., "params": {...}}
        202 {"job_id", "status", "cached"}     admitted (or cache hit)
        503 {"error", "reason", "retry_after_s"}   breaker shed it
        400 {"error"}                          malformed spec
    GET  /jobs              overview: queue, breaker, cache, job table,
                            the ids currently running (a list — N jobs
                            run simultaneously)
    GET  /jobs/<id>         one job's status
    GET  /jobs/<id>/result  200 result | 202 {"status", "retry_after_s"}
    GET  /jobs/<id>/events  long-poll progress stream: one JSON line
                            per event (started / per-cell completion /
                            finished), ``?since=N`` resumes after the
                            N-th event; the connection closes when the
                            job is final, so a client just reads lines
                            to EOF instead of polling on a timer
    GET  /metrics           MetricsRegistry snapshot + service gauges
    GET  /healthz           {"ok": true}

Boot replays the journal (see :mod:`repro.serve.journal`): finished
jobs repopulate the content-addressed cache and are served without
re-running; submitted-or-started-but-unfinished jobs are requeued, so
a SIGKILL loses no job and duplicates no result. Torn/corrupt lines
skipped during that replay are *counted* and reported — in the
``daemon_started`` record (``corrupt_lines=``) and on ``/metrics`` —
instead of vanishing silently. A clean shutdown compacts the journal
into one snapshot line before the final ``daemon_stopped`` marker.
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.experiments.sweep import RetryPolicy
from repro.obs.registry import MetricsRegistry
from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.journal import Journal, read_events, rebuild
from repro.serve.scheduler import JobScheduler, SubmissionRejected
from repro.util.errors import ConfigurationError, ReproError

__all__ = ["ServeDaemon"]

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_-]+)(/result|/events)?$")

#: polling hint returned with 202 "not finished yet" responses
_POLL_HINT_S = 0.5

#: long-poll slice for the /events route; between slices the handler
#: emits a keepalive line so idle streams keep defeating client
#: read timeouts
_EVENT_WAIT_S = 5.0


class _Handler(BaseHTTPRequestHandler):
    daemon: "ServeDaemon"  # injected via the server instance

    # ------------------------------------------------------------------
    def _send(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # requests are not worth a stderr line each

    # ------------------------------------------------------------------
    def _stream_events(self, job_id: str, since: int) -> None:
        """Serve ``/jobs/<id>/events``: newline-delimited JSON, one
        record per scheduler event, connection close marks the end.

        HTTP/1.0 semantics: no Content-Length, the body is everything
        until close — which is exactly what an unbounded-in-advance
        stream needs. Each line is flushed as it happens, so a client
        sees per-cell completions live instead of polling ``status``
        every half second.
        """
        daemon = self.daemon
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        cursor = max(since, 0)
        try:
            while True:
                events, final = daemon.scheduler.events_since(
                    job_id, cursor, wait_s=_EVENT_WAIT_S
                )
                for event in events:
                    self.wfile.write(
                        (json.dumps(event, sort_keys=True) + "\n").encode()
                    )
                cursor += len(events)
                if not events and not final:
                    # quiet long-poll slice: keep the stream alive
                    self.wfile.write(b'{"type": "keepalive"}\n')
                self.wfile.flush()
                if final:
                    return
        except (BrokenPipeError, ConnectionResetError):
            return  # the client hung up; nothing to clean up

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        daemon = self.daemon
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            self._send(200, {"ok": True})
            return
        if parsed.path == "/metrics":
            self._send(200, daemon.metrics_view())
            return
        if parsed.path == "/jobs":
            self._send(200, daemon.scheduler.overview())
            return
        match = _JOB_PATH.match(parsed.path)
        if match is None:
            self._send(404, {"error": f"no such route: {self.path}"})
            return
        job_id, sub = match.group(1), match.group(2) or ""
        record = daemon.scheduler.get(job_id)
        if record is None:
            self._send(404, {"error": f"unknown job {job_id}"})
            return
        if sub == "/events":
            query = parse_qs(parsed.query)
            try:
                since = int(query.get("since", ["0"])[0])
            except ValueError:
                self._send(400, {"error": "since must be an integer"})
                return
            self._stream_events(job_id, since)
            return
        if not sub:
            self._send(200, record.to_status_dict())
            return
        if record.status in ("queued", "running"):
            self._send(
                202,
                {"job_id": job_id, "status": record.status,
                 "retry_after_s": _POLL_HINT_S},
            )
            return
        self._send(200, record.to_result_dict())

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        daemon = self.daemon
        if self.path != "/jobs":
            self._send(404, {"error": f"no such route: {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            kind = payload.get("kind")
            if not isinstance(kind, str):
                raise ConfigurationError("submission needs a 'kind' string")
            params = dict(payload.get("params") or {})
            if "priority" in payload:
                params.setdefault("priority", payload["priority"])
            record = daemon.scheduler.submit(kind, params)
        except SubmissionRejected as exc:
            self._send(
                503,
                {"error": str(exc), "reason": exc.reason,
                 "retry_after_s": exc.retry_after_s},
            )
        except (ConfigurationError, json.JSONDecodeError, ReproError) as exc:
            self._send(400, {"error": str(exc)})
        else:
            self._send(
                202,
                {"job_id": record.job_id, "status": record.status,
                 "cached": record.cached},
            )

    @property
    def daemon(self) -> "ServeDaemon":
        return self.server.daemon  # type: ignore[attr-defined]


class ServeDaemon:
    """Journal + cache + breaker + scheduler + HTTP server, assembled.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after :meth:`start`). The daemon is restart-transparent: point a
    new instance at the same journal and it resumes where the old one
    — cleanly stopped or SIGKILLed — left off. ``workers`` jobs run
    simultaneously over the shared ``pool_jobs`` process-slot budget;
    ``compact_bytes`` arms size-triggered journal compaction (clean
    shutdown always compacts).
    """

    def __init__(
        self,
        journal_path,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        pool_jobs: int = 2,
        cell_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        breaker_config: Optional[BreakerConfig] = None,
        compact_bytes: int = 0,
        aging_s: float = 30.0,
    ) -> None:
        self.metrics = MetricsRegistry(enabled=True, clock=time.monotonic)
        events = read_events(journal_path)
        recovered = rebuild(events)
        self.corrupt_lines = events.corrupt_lines
        self.journal = Journal(journal_path, compact_bytes=compact_bytes)
        self.cache = ResultCache(self.metrics)
        self.breaker = CircuitBreaker(breaker_config, metrics=self.metrics)
        self.scheduler = JobScheduler(
            journal=self.journal,
            cache=self.cache,
            breaker=self.breaker,
            metrics=self.metrics,
            workers=workers,
            pool_jobs=pool_jobs,
            cell_timeout=cell_timeout,
            retry=retry,
            aging_s=aging_s,
        )
        self.scheduler.recover(recovered)
        self.journal.append(
            "daemon_started",
            recovered_jobs=len(recovered.pending),
            recovered_results=len(recovered.results),
            corrupt_lines=self.corrupt_lines,
        )
        self.metrics.gauge_set(
            "serve.journal.corrupt_lines", float(self.corrupt_lines)
        )
        self.recovered = recovered
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.daemon = self  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the workers; the HTTP loop still needs serve_forever()
        (or use start_in_thread() for in-process embedding)."""
        self.scheduler.start()

    def start_in_thread(self) -> None:
        import threading

        self.start()
        thread = threading.Thread(
            target=self._server.serve_forever, name="repro-serve-http",
            kwargs={"poll_interval": 0.1}, daemon=True,
        )
        thread.start()

    def serve_forever(self) -> None:
        self._server.serve_forever(poll_interval=0.2)

    def stop(self) -> None:
        """Graceful shutdown: journal the in-flight jobs for resumption,
        compact the journal into a snapshot, append the clean-stop
        marker, flush and close the journal, close the socket."""
        if self._stopped:
            return
        self._stopped = True
        self.scheduler.stop()
        try:
            self.journal.compact()
        except Exception:  # pragma: no cover - compaction must not
            pass  # block shutdown; the uncompacted journal replays fine
        self.journal.append("daemon_stopped", clean=True)
        self.journal.close()
        try:
            self._server.shutdown()
        except Exception:  # pragma: no cover - shutdown race
            pass
        self._server.server_close()

    # ------------------------------------------------------------------
    def metrics_view(self) -> dict:
        """The /metrics payload: registry snapshot + live service state."""
        overview = self.scheduler.overview()
        return {
            "metrics": self.metrics.snapshot(),
            "queue_depth": overview["queue_depth"],
            "running": overview["running"],
            "workers": overview["workers"],
            "breaker": overview["breaker"],
            "cache": overview["cache"],
            "journal": {
                "corrupt_lines": self.corrupt_lines,
                "size_bytes": self.journal.size_bytes(),
                "compactions": self.journal.compactions,
            },
        }
