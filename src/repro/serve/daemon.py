"""The ``repro serve`` daemon: a local HTTP front end over the scheduler.

Stdlib only — a ``ThreadingHTTPServer`` on localhost. HTTP threads are
the *listener* plane: they parse, consult the scheduler under its lock,
and answer; all simulation work happens on the scheduler's worker pool.

Routes::

    POST /jobs              {"kind": ..., "params": {...}}
        202 {"job_id", "status", "cached"}     admitted (or cache hit)
        503 {"error", "reason", "retry_after_s"}   breaker shed it
        400 {"error"}                          malformed spec
    GET  /jobs              overview: queue, breaker, cache, job table
    GET  /jobs/<id>         one job's status
    GET  /jobs/<id>/result  200 result | 202 {"status", "retry_after_s"}
    GET  /metrics           MetricsRegistry snapshot + service gauges
    GET  /healthz           {"ok": true}

Boot replays the journal (see :mod:`repro.serve.journal`): finished
jobs repopulate the content-addressed cache and are served without
re-running; submitted-or-started-but-unfinished jobs are requeued, so
a SIGKILL loses no job and duplicates no result.
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.experiments.sweep import RetryPolicy
from repro.obs.registry import MetricsRegistry
from repro.serve.breaker import BreakerConfig, CircuitBreaker
from repro.serve.cache import ResultCache
from repro.serve.journal import Journal, read_events, rebuild
from repro.serve.scheduler import JobScheduler, SubmissionRejected
from repro.util.errors import ConfigurationError, ReproError

__all__ = ["ServeDaemon"]

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_-]+)(/result)?$")

#: polling hint returned with 202 "not finished yet" responses
_POLL_HINT_S = 0.5


class _Handler(BaseHTTPRequestHandler):
    daemon: "ServeDaemon"  # injected via the server instance

    # ------------------------------------------------------------------
    def _send(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # requests are not worth a stderr line each

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        daemon = self.server.daemon  # type: ignore[attr-defined]
        if self.path == "/healthz":
            self._send(200, {"ok": True})
            return
        if self.path == "/metrics":
            self._send(200, daemon.metrics_view())
            return
        if self.path == "/jobs":
            self._send(200, daemon.scheduler.overview())
            return
        match = _JOB_PATH.match(self.path)
        if match is None:
            self._send(404, {"error": f"no such route: {self.path}"})
            return
        job_id, want_result = match.group(1), bool(match.group(2))
        record = daemon.scheduler.get(job_id)
        if record is None:
            self._send(404, {"error": f"unknown job {job_id}"})
            return
        if not want_result:
            self._send(200, record.to_status_dict())
            return
        if record.status in ("queued", "running"):
            self._send(
                202,
                {"job_id": job_id, "status": record.status,
                 "retry_after_s": _POLL_HINT_S},
            )
            return
        self._send(200, record.to_result_dict())

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        daemon = self.server.daemon  # type: ignore[attr-defined]
        if self.path != "/jobs":
            self._send(404, {"error": f"no such route: {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            kind = payload.get("kind")
            if not isinstance(kind, str):
                raise ConfigurationError("submission needs a 'kind' string")
            record = daemon.scheduler.submit(kind, payload.get("params"))
        except SubmissionRejected as exc:
            self._send(
                503,
                {"error": str(exc), "reason": exc.reason,
                 "retry_after_s": exc.retry_after_s},
            )
        except (ConfigurationError, json.JSONDecodeError, ReproError) as exc:
            self._send(400, {"error": str(exc)})
        else:
            self._send(
                202,
                {"job_id": record.job_id, "status": record.status,
                 "cached": record.cached},
            )


class ServeDaemon:
    """Journal + cache + breaker + scheduler + HTTP server, assembled.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after :meth:`start`). The daemon is restart-transparent: point a
    new instance at the same journal and it resumes where the old one
    — cleanly stopped or SIGKILLed — left off.
    """

    def __init__(
        self,
        journal_path,
        host: str = "127.0.0.1",
        port: int = 0,
        pool_jobs: int = 2,
        cell_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        breaker_config: Optional[BreakerConfig] = None,
    ) -> None:
        self.metrics = MetricsRegistry(enabled=True, clock=time.monotonic)
        recovered = rebuild(read_events(journal_path))
        self.journal = Journal(journal_path)
        self.cache = ResultCache(self.metrics)
        self.breaker = CircuitBreaker(breaker_config, metrics=self.metrics)
        self.scheduler = JobScheduler(
            journal=self.journal,
            cache=self.cache,
            breaker=self.breaker,
            metrics=self.metrics,
            pool_jobs=pool_jobs,
            cell_timeout=cell_timeout,
            retry=retry,
        )
        self.scheduler.recover(recovered)
        self.journal.append(
            "daemon_started",
            recovered_jobs=len(recovered.pending),
            recovered_results=len(recovered.results),
        )
        self.recovered = recovered
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.daemon = self  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker; the HTTP loop still needs serve_forever()
        (or use start_in_thread() for in-process embedding)."""
        self.scheduler.start()

    def start_in_thread(self) -> None:
        import threading

        self.start()
        thread = threading.Thread(
            target=self._server.serve_forever, name="repro-serve-http",
            kwargs={"poll_interval": 0.1}, daemon=True,
        )
        thread.start()

    def serve_forever(self) -> None:
        self._server.serve_forever(poll_interval=0.2)

    def stop(self) -> None:
        """Graceful shutdown: journal the in-flight job for resumption,
        mark the stop, flush and close the journal, close the socket."""
        if self._stopped:
            return
        self._stopped = True
        self.scheduler.stop()
        self.journal.append("daemon_stopped", clean=True)
        self.journal.close()
        try:
            self._server.shutdown()
        except Exception:  # pragma: no cover - shutdown race
            pass
        self._server.server_close()

    # ------------------------------------------------------------------
    def metrics_view(self) -> dict:
        """The /metrics payload: registry snapshot + live service state."""
        overview = self.scheduler.overview()
        return {
            "metrics": self.metrics.snapshot(),
            "queue_depth": overview["queue_depth"],
            "running": overview["running"],
            "breaker": overview["breaker"],
            "cache": overview["cache"],
        }
