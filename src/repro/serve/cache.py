"""Content-addressed result cache: repeated queries are free.

Keyed by :func:`~repro.serve.jobs.job_digest` — a sha256 over the
normalized job spec, which fully determines the workload structure
token, the run configuration, and the seed of every cell. Because the
simulations are bitwise deterministic, a digest hit *is* the result;
no staleness, no invalidation story needed. Only cleanly finished
(``done``) jobs are cached: a partial result must never satisfy a
future submission that might complete.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.obs.registry import NULL_METRICS, MetricsRegistry

__all__ = ["ResultCache"]


class ResultCache:
    """In-memory digest -> result-payload map with hit/miss metrics.

    Persistence comes from the journal, not from here: on boot the
    daemon replays ``job_finished`` events into :meth:`put`, so the
    cache is exactly as durable as the journal that feeds it.

    Thread-safe: with N scheduler workers finishing jobs while HTTP
    threads probe for hits, the entry map and the hit/miss counters
    mutate under one internal lock.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._entries: dict[str, dict] = {}
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.hits = 0
        self.misses = 0

    def get(self, digest: str) -> Optional[dict]:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                self.metrics.inc("serve.cache.misses")
                return None
            self.hits += 1
            self.metrics.inc("serve.cache.hits")
            return entry

    def put(self, digest: str, payload: dict) -> None:
        with self._lock:
            self._entries[digest] = payload
            self.metrics.gauge_set(
                "serve.cache.entries", float(len(self._entries))
            )

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {"entries": len(self._entries), "hits": self.hits,
                    "misses": self.misses}
