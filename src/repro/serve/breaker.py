"""The circuit breaker: shed load instead of drowning in it.

Classic three-state breaker guarding the admission path of the service:

- **closed** — submissions flow. Job failures (poisoned cells, failed
  sweeps) are counted in a sliding window; too many trip the breaker.
- **open** — submissions are rejected immediately with a
  ``retry_after_s`` hint; after ``cooldown_s`` the breaker half-opens.
- **half-open** — one probe submission is admitted. Success closes the
  breaker and clears the failure window; failure re-opens it (the
  cooldown restarts).

Queue saturation is handled by the same ``admit`` gate but does not
change the breaker state: a full queue is back-pressure (shed and
retry), not evidence the backend is sick.

The clock is injected so tests never sleep.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.registry import NULL_METRICS, MetricsRegistry
from repro.util.errors import ConfigurationError

__all__ = ["BreakerConfig", "CircuitBreaker", "Admission"]

#: gauge encoding of the state, for the /metrics view
_STATE_GAUGE = {"closed": 0.0, "half-open": 1.0, "open": 2.0}


@dataclass(frozen=True)
class BreakerConfig:
    """Trip thresholds and recovery pacing."""

    #: submissions (beyond the running job) the queue may hold
    max_queue_depth: int = 16
    #: job failures within ``window_s`` that trip the breaker
    failure_threshold: int = 3
    window_s: float = 60.0
    #: open duration before one probe is allowed through
    cooldown_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s <= 0 or self.window_s <= 0:
            raise ConfigurationError("cooldown_s and window_s must be > 0")


@dataclass(frozen=True)
class Admission:
    """One admission decision. ``retry_after_s`` is set on rejection."""

    allowed: bool
    reason: str = "ok"
    retry_after_s: Optional[float] = None


class CircuitBreaker:
    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.clock = clock
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.state = "closed"
        #: serializes state transitions: HTTP threads admit while N
        #: scheduler workers record successes/failures concurrently
        self._lock = threading.Lock()
        self._failures: deque[float] = deque()
        self._opened_at = 0.0
        self._probe_inflight = False
        self.rejections = 0
        self._set_gauge()

    # ------------------------------------------------------------------
    def _set_gauge(self) -> None:
        self.metrics.gauge_set("serve.breaker.state", _STATE_GAUGE[self.state])

    def _reject(self, reason: str, retry_after_s: float) -> Admission:
        self.rejections += 1
        self.metrics.inc("serve.breaker.rejections", reason=reason)
        return Admission(False, reason, round(max(retry_after_s, 0.1), 3))

    def _prune(self, now: float) -> None:
        horizon = now - self.config.window_s
        while self._failures and self._failures[0] < horizon:
            self._failures.popleft()

    # ------------------------------------------------------------------
    def admit(self, queue_depth: int) -> Admission:
        """Gate one submission given the current queue depth."""
        with self._lock:
            return self._admit_locked(queue_depth)

    def _admit_locked(self, queue_depth: int) -> Admission:
        now = self.clock()
        if self.state == "open":
            elapsed = now - self._opened_at
            if elapsed < self.config.cooldown_s:
                return self._reject("open", self.config.cooldown_s - elapsed)
            self.state = "half-open"
            self._probe_inflight = False
            self._set_gauge()
        if self.state == "half-open":
            if self._probe_inflight:
                return self._reject("half-open", self.config.cooldown_s)
            self._probe_inflight = True
            return Admission(True, "probe")
        if queue_depth >= self.config.max_queue_depth:
            # back-pressure, not sickness: state stays closed
            return self._reject("saturated", self.config.cooldown_s)
        return Admission(True)

    def record_success(self) -> None:
        """A job finished cleanly."""
        with self._lock:
            if self.state == "half-open":
                self.state = "closed"
                self._failures.clear()
                self._probe_inflight = False
                self._set_gauge()

    def record_failure(self) -> None:
        """A job failed, was degraded to partial, or poisoned a cell."""
        with self._lock:
            self._record_failure_locked()

    def _record_failure_locked(self) -> None:
        now = self.clock()
        if self.state == "half-open":
            # the probe failed: back to open, cooldown restarts
            self.state = "open"
            self._opened_at = now
            self._probe_inflight = False
            self._set_gauge()
            return
        self._failures.append(now)
        self._prune(now)
        if (
            self.state == "closed"
            and len(self._failures) >= self.config.failure_threshold
        ):
            self.state = "open"
            self._opened_at = now
            self._set_gauge()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            return self._to_dict_locked()

    def _to_dict_locked(self) -> dict:
        now = self.clock()
        self._prune(now)
        d = {
            "state": self.state,
            "recent_failures": len(self._failures),
            "rejections": self.rejections,
        }
        if self.state == "open":
            d["retry_after_s"] = round(
                max(self.config.cooldown_s - (now - self._opened_at), 0.0), 3
            )
        return d
