"""repro — "PaRSEC in Practice" (CLUSTER 2015), reproduced in Python.

A reproduction of Danalis, Jagode, Bosilca, Dongarra: "PaRSEC in
Practice: Optimizing a Legacy Chemistry Application through Distributed
Task-Based Execution" (IEEE CLUSTER 2015). See README.md for a guide,
DESIGN.md for the system inventory, EXPERIMENTS.md for measured-vs-paper
results.

Top-level convenience imports cover the common entry points; the
subpackages are the real API surface:

- :mod:`repro.sim` — the discrete-event machine
- :mod:`repro.ga` — the Global Arrays substrate
- :mod:`repro.tce` — the CCSD workload generators
- :mod:`repro.legacy` — the original execution model
- :mod:`repro.parsec` — the PTG runtime (and the contrasted DTD model)
- :mod:`repro.core` — the CCSD-over-PaRSEC port and its five variants
- :mod:`repro.analysis` — trace metrics and rendering
- :mod:`repro.obs` — metrics registry and structured run reports
- :mod:`repro.experiments` — the paper's experiments

The one-call entry point is :func:`repro.run`::

    import repro
    result = repro.run("tiny", runtime="parsec", variant=repro.V5)
    print(result.summary())
    print(result.report.to_json_line())
"""

from repro.core.api import RunConfig, StealPolicy, run
from repro.core.executor import run_ptg
from repro.core.variants import PAPER_VARIANTS, V1, V2, V3, V4, V5, variant_by_name
from repro.ga.runtime import GlobalArrays
from repro.legacy.runtime import LegacyRuntime
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.cost import MachineModel
from repro.obs import MetricsRegistry, RunReport, RunResult
from repro.tce.molecules import beta_carotene, small_system, system_for_scale, tiny_system
from repro.tce.t2_7 import build_t2_7

__version__ = "1.0.0"

__all__ = [
    "run",
    "RunConfig",
    "StealPolicy",
    "run_ptg",
    "MetricsRegistry",
    "RunReport",
    "RunResult",
    "PAPER_VARIANTS",
    "V1",
    "V2",
    "V3",
    "V4",
    "V5",
    "variant_by_name",
    "GlobalArrays",
    "LegacyRuntime",
    "Cluster",
    "ClusterConfig",
    "DataMode",
    "MachineModel",
    "beta_carotene",
    "small_system",
    "system_for_scale",
    "tiny_system",
    "build_t2_7",
    "__version__",
]
