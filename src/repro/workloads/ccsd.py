"""A full CCSD iteration as one workload: seven barrier-separated PTGs.

Section III-A: the TCE splits one CCSD iteration into "more than 60
sub-kernels" over "seven different levels" with "an explicit
synchronization step between those levels". The t2_7 scenario the rest
of the reproduction grew around is exactly one of those sub-kernels;
this workload restores the surrounding iteration.

Each level *merges* the chains of its (heterogeneous) terms into one
:class:`~repro.tce.subroutine.Subroutine`, so a single PTG carries
cross-subroutine dependencies: ring and ladder terms share operand
tensors through the builder's pool (their READ tasks contend for the
same GA owners), every term accumulates into the shared ``i2``
residual (their WRITE tasks serialize on the same block mutexes), and
the chain priorities interleave across terms. Levels execute under a
barrier, matching the legacy application's synchronization structure —
and the scope the paper gives for task stealing ("only within each
level").
"""

from __future__ import annotations

import dataclasses

from repro.tce.cc_iteration import DEFAULT_ITERATION_TERMS, CcsdIteration
from repro.tce.molecules import system_for_scale
from repro.tce.subroutine import Subroutine
from repro.tce.terms import TermBuilder, TermSpec

__all__ = ["CcsdWorkload", "build_ccsd_workload"]


def _merge_level(level_index: int, members: list[Subroutine]) -> Subroutine:
    """One level's terms fused into a single subroutine.

    Chain ids are renumbered densely across the member terms (the PTG's
    L1 domain and the legacy NXTVAL ticket sequence both need a dense
    range); each chain keeps its live block references, so GEMMs from
    different terms resolve to their own operand arrays through the
    per-GEMM array names the inspector records.
    """
    chains = []
    for sub in members:
        chains.extend(sub.chains)
    chains = [
        dataclasses.replace(chain, chain_id=i) for i, chain in enumerate(chains)
    ]
    inputs = []
    seen = set()
    for sub in members:
        for tensor in sub.inputs:
            if id(tensor) not in seen:
                seen.add(id(tensor))
                inputs.append(tensor)
    member_tokens = tuple(sub.structure_token for sub in members)
    return Subroutine(
        name=f"ccsd_L{level_index}",
        chains=chains,
        inputs=inputs,
        output=members[0].output,
        level=level_index,
        structure_token=(
            ("ccsd-level", level_index) + member_tokens
            if all(tok is not None for tok in member_tokens)
            else None
        ),
    )


class CcsdWorkload:
    """Tensors + per-level chain IR for one CCSD iteration."""

    def __init__(
        self,
        cluster,
        ga,
        space,
        seed: int = 7,
        symmetry_filter: bool = True,
        skew_factor: int = 1,
        skew_period: int = 0,
        terms: tuple[TermSpec, ...] = DEFAULT_ITERATION_TERMS,
    ) -> None:
        self.cluster = cluster
        self.ga = ga
        self.space = space
        self.seed = seed
        self.workload_id = "ccsd"
        self.builder = TermBuilder(
            ga,
            space,
            seed=seed,
            symmetry_filter=symmetry_filter,
            skew_factor=skew_factor,
            skew_period=skew_period,
        )
        self.subroutines = [self.builder.build(spec) for spec in terms]
        self.iteration = CcsdIteration(
            builder=self.builder, subroutines=self.subroutines
        )
        self.i2 = self.builder.i2
        self._levels = [
            _merge_level(index, members)
            for index, members in enumerate(self.iteration.levels())
            if members
        ]

    # -- Workload protocol ----------------------------------------------
    @property
    def name(self) -> str:
        return "ccsd_iteration"

    @property
    def output(self):
        return self.i2

    def levels(self) -> list[Subroutine]:
        return list(self._levels)

    def reference_values(self):
        from repro.tce.reference import compute_iteration_reference

        return compute_iteration_reference(self.subroutines)

    def describe(self) -> str:
        return self.iteration.describe()


def build_ccsd_workload(
    cluster,
    ga,
    scale: str,
    seed: int = 7,
    skew_factor: int = 1,
    skew_period: int = 0,
) -> CcsdWorkload:
    """Registry builder: a CCSD iteration at a named system scale."""
    system = system_for_scale(scale)
    return CcsdWorkload(
        cluster,
        ga,
        system.orbital_space(),
        seed=seed,
        skew_factor=skew_factor,
        skew_period=skew_period,
    )
