"""The workload SDK: a general scenario interface over the chain IR.

See :mod:`repro.workloads.base` for the protocol and
:mod:`repro.workloads.registry` for the string-addressable registry
(``repro.run(workload="rbgs:128x128")``). Built-ins: ``t2_7`` (the
paper's sub-kernel), ``ccsd`` (a full seven-level iteration), and
``rbgs`` (a red-black Gauss-Seidel tile stencil).
"""

from repro.workloads.base import Workload
from repro.workloads.ccsd import CcsdWorkload
from repro.workloads.rbgs import GridTensor, RbgsWorkload
from repro.workloads.registry import (
    WorkloadSpec,
    build_workload,
    canonical_token,
    parse_workload_token,
    register_workload,
    workload_names,
    workload_spec,
)

__all__ = [
    "Workload",
    "WorkloadSpec",
    "CcsdWorkload",
    "RbgsWorkload",
    "GridTensor",
    "build_workload",
    "canonical_token",
    "parse_workload_token",
    "register_workload",
    "workload_names",
    "workload_spec",
]
