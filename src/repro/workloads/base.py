"""The Workload protocol — what every registered scenario must provide.

The original system hard-wired one scenario (the ``icsd_t2_7``
subroutine) through the facade, the experiments, and the service. The
workload SDK replaces that monopoly with a small structural contract:
anything that can lower itself to barrier-separated lists of
:class:`~repro.tce.subroutine.Subroutine` chain IR runs on *all seven
runtimes* (legacy, the five PTG variants, DTD), under chaos fault
injection, and inside ``-j N`` sweeps — for free, because every layer
above the IR is workload-agnostic.

A workload owns:

- a **canonical token** (``workload_id``, e.g. ``"rbgs:tiny"``) and a
  short ``name`` used in reports;
- the **cluster** and **GA runtime** its tensors live on;
- ``levels()`` — the chain/DAG generator: one
  :class:`~repro.tce.subroutine.Subroutine` per barrier-separated work
  level, each carrying a stable ``structure_token`` (the inspection
  cache identity) and chains whose GEMM cost model and GA data layout
  are resolved through live block references;
- the **output tensor** (``output``) whose flat contents are the
  run's result, and
- ``reference_values()`` — an independent dense-NumPy result for
  equivalence checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:
    import numpy as np

    from repro.tce.subroutine import Subroutine

__all__ = ["Workload"]


@runtime_checkable
class Workload(Protocol):
    """Structural protocol every registered workload satisfies.

    Implementations are plain classes (no inheritance required);
    :class:`~repro.tce.t2_7.T27Workload` is the canonical single-level
    example, :class:`~repro.workloads.ccsd.CcsdWorkload` the
    multi-level one.
    """

    #: canonical registry token, e.g. ``"t2_7:small"``
    workload_id: str
    #: the simulated machine the workload's tensors are distributed on
    cluster: object
    #: the GA runtime that allocated the tensors
    ga: object
    #: seed all tensor fills derive from
    seed: int

    @property
    def name(self) -> str:
        """Short label for reports (e.g. ``"icsd_t2_7"``, ``"rbgs"``)."""
        ...

    @property
    def output(self):
        """The output tensor (has ``flat_values()`` and ``.array``)."""
        ...

    def levels(self) -> "list[Subroutine]":
        """Barrier-separated work levels, in execution order.

        Single-phase workloads return one subroutine; runtimes place an
        explicit synchronization (and its overhead charge) between
        consecutive levels, exactly as the legacy application does.
        """
        ...

    def reference_values(self) -> "np.ndarray":
        """Independent dense result for the output array (REAL mode)."""
        ...

    def describe(self) -> str:
        """One-line structure summary for logs and ``repro info``."""
        ...
