"""Red-Black Gauss-Seidel smoother as a two-wave task workload.

Following "Exploiting Task-Based Parallelism for the Red-Black
Gauss-Seidel Method on 2D Grids" (PAPERS.md): the grid is tiled, tiles
are colored checkerboard-style, and each colored smoother sweep is a
*task wave* — every tile update is one task whose inputs are the tile
itself plus its four von-Neumann neighbors (the halo exchange), and
the two waves are barrier-separated because black updates read the
red-updated values (that read-after-write is what makes it
Gauss-Seidel rather than Jacobi).

The lowering reuses the chain IR unchanged: a tile update is a chain
of rank-1 GEMMs — each ``C(1, ty*tx) += w(1,1)^T @ src-tile(1, ty*tx)``
scales one stencil source by its coefficient and accumulates — followed
by one active identity SORT_4 writing the smoothed tile into ``u_next``.
Boundary tiles clip missing neighbors, so chains have 3-5 GEMMs (the
chain-length diversity the segmenting variants care about). Halo
exchange happens exactly where the paper's READ tasks live: each
source-tile READ is placed on the GA owner node of that neighbor's
block, and the data crosses the network as a task dependency.

Red wave (level 0): ``u_next(red) = w_c*u(red) + w_n*Σ u(neighbors)``.
Black wave (level 1): neighbors (all red) come from ``u_next``; the
center still comes from ``u``. After both waves ``u_next`` holds the
complete smoothed grid.
"""

from __future__ import annotations

import numpy as np

from repro.tce.subroutine import BlockRef, ChainSpec, GemmOp, SortWrite, Subroutine
from repro.tce.terms import SORT_VARIANTS
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

__all__ = ["GridTensor", "RbgsWorkload", "build_rbgs_workload", "RBGS_PRESETS"]

#: damped-Jacobi-within-tile / Gauss-Seidel-across-colors smoother
#: coefficients: center weight and the uniform 4-neighbor weight
W_CENTER = 0.2
W_NEIGHBOR = 0.2

#: stencil sources in a fixed order: center, north, south, west, east
STENCIL_OFFSETS = ((0, 0), (-1, 0), (1, 0), (0, -1), (0, 1))

#: preset grid shapes: (grid_y, grid_x, tile) — chosen so "tiny" REAL
#: runs are test-cheap and "paper"/"full" stress the sweep like t2_7
RBGS_PRESETS: dict[str, tuple[int, int, int]] = {
    "tiny": (6, 6, 4),
    "small": (12, 12, 6),
    "paper": (32, 32, 8),
    "full": (48, 48, 8),
}


class GridTensor:
    """A 2D grid of (ty, tx) tiles stored flat in one Global Array.

    Duck-types the :class:`~repro.tce.tensor.BlockTensor` surface the
    chain IR touches (``block_range``/``block_shape``/``.array``), with
    blocks keyed ``(iy, ix)`` laid out row-major — so the GA's
    element-contiguous node distribution gives each node a contiguous
    band of tile rows, and halo exchanges between bands cross node
    memories.
    """

    def __init__(self, name: str, grid_y: int, grid_x: int, tile: int, array) -> None:
        self.name = name
        self.grid_y = grid_y
        self.grid_x = grid_x
        self.tile = tile
        self.array = array

    @classmethod
    def create(cls, ga_runtime, name: str, grid_y: int, grid_x: int, tile: int):
        total = grid_y * grid_x * tile * tile
        return cls(name, grid_y, grid_x, tile, ga_runtime.create(name, total))

    # -- BlockTensor surface -------------------------------------------
    @property
    def total(self) -> int:
        return self.grid_y * self.grid_x * self.tile * self.tile

    def block_range(self, key: tuple[int, ...]) -> tuple[int, int]:
        iy, ix = key
        if not (0 <= iy < self.grid_y and 0 <= ix < self.grid_x):
            raise ConfigurationError(f"tile {key} outside {self.grid_y}x{self.grid_x} grid")
        size = self.tile * self.tile
        lo = (iy * self.grid_x + ix) * size
        return lo, lo + size

    def block_shape(self, key: tuple[int, ...]) -> tuple[int, ...]:
        return (self.tile, self.tile)

    def block_size(self, key: tuple[int, ...]) -> int:
        return self.tile * self.tile

    # -- data conveniences ---------------------------------------------
    def fill_random(self, rng: RngStream, scale: float = 1.0) -> None:
        if not self.array.holds_data:
            return
        self.array.scatter(scale * rng.standard_normal(self.total))

    def flat_values(self) -> np.ndarray:
        return self.array.gather()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GridTensor({self.name!r}, {self.grid_y}x{self.grid_x} tiles "
            f"of {self.tile}x{self.tile})"
        )


class _WeightTensor:
    """Five 1x1 coefficient blocks (one per stencil source), in a GA."""

    def __init__(self, name: str, array) -> None:
        self.name = name
        self.array = array

    @classmethod
    def create(cls, ga_runtime, name: str, weights: tuple[float, ...]):
        tensor = cls(name, ga_runtime.create(name, len(weights)))
        if tensor.array.holds_data:
            tensor.array.scatter(np.array(weights, dtype=float))
        return tensor

    def block_range(self, key: tuple[int, ...]) -> tuple[int, int]:
        return key[0], key[0] + 1

    def block_shape(self, key: tuple[int, ...]) -> tuple[int, ...]:
        return (1, 1)

    def flat_values(self) -> np.ndarray:
        return self.array.gather()


def parse_grid(params: str) -> tuple[int, int, int]:
    """``"tiny"`` | ``"GYxGX"`` | ``"GYxGXxTILE"`` → (gy, gx, tile)."""
    preset = RBGS_PRESETS.get(params)
    if preset is not None:
        return preset
    parts = params.lower().split("x")
    if len(parts) not in (2, 3) or not all(p.isdigit() and int(p) > 0 for p in parts):
        raise ConfigurationError(
            f"bad rbgs grid {params!r}: expected a scale name "
            f"({sorted(RBGS_PRESETS)}), 'GYxGX', or 'GYxGXxTILE'"
        )
    gy, gx = int(parts[0]), int(parts[1])
    tile = int(parts[2]) if len(parts) == 3 else 4
    return gy, gx, tile


class RbgsWorkload:
    """Grid tensors + two-wave chain IR for one red-black sweep."""

    def __init__(
        self,
        cluster,
        ga,
        grid_y: int,
        grid_x: int,
        tile: int,
        seed: int = 7,
        skew_factor: int = 1,
        skew_period: int = 0,
    ) -> None:
        if grid_y < 2 or grid_x < 2:
            raise ConfigurationError(
                f"rbgs grid must be at least 2x2 tiles, got {grid_y}x{grid_x}"
            )
        if skew_factor < 1:
            raise ConfigurationError(f"skew_factor must be >= 1, got {skew_factor}")
        if skew_period < 0:
            raise ConfigurationError(f"skew_period must be >= 0, got {skew_period}")
        self.cluster = cluster
        self.ga = ga
        self.seed = seed
        self.grid_y, self.grid_x, self.tile = grid_y, grid_x, tile
        self.skew_factor = skew_factor
        self.skew_period = skew_period
        self.workload_id = f"rbgs:{grid_y}x{grid_x}x{tile}"
        self.u = GridTensor.create(ga, "rbgs_u", grid_y, grid_x, tile)
        self.u.fill_random(RngStream(seed, "rbgs-u"))
        self.u_next = GridTensor.create(ga, "rbgs_u_next", grid_y, grid_x, tile)
        self.weights = _WeightTensor.create(
            ga, "rbgs_w", (W_CENTER,) + (W_NEIGHBOR,) * 4
        )
        self._levels = [self._build_wave(color) for color in (0, 1)]

    # -- chain generation ----------------------------------------------
    def _build_wave(self, color: int) -> Subroutine:
        """One colored sweep as a subroutine (level == color)."""
        chains: list[ChainSpec] = []
        chain_id = 0
        for iy in range(self.grid_y):
            for ix in range(self.grid_x):
                if (iy + ix) % 2 != color:
                    continue
                gemms: list[GemmOp] = []
                for w_index, (dy, dx) in enumerate(STENCIL_OFFSETS):
                    jy, jx = iy + dy, ix + dx
                    if not (0 <= jy < self.grid_y and 0 <= jx < self.grid_x):
                        continue  # Dirichlet boundary: missing halo clips
                    center = dy == 0 and dx == 0
                    # black neighbors are all red: Gauss-Seidel reads the
                    # red-updated values; the center always reads u
                    src = self.u if (color == 0 or center) else self.u_next
                    gemms.append(
                        GemmOp(
                            position=len(gemms),
                            a=BlockRef.of(self.weights, (w_index,)),
                            b=BlockRef.of(src, (jy, jx)),
                            m=1,
                            n=self.tile * self.tile,
                            k=1,
                        )
                    )
                gemms = self._apply_skew(chain_id, gemms)
                target = BlockRef.of(self.u_next, (iy, ix))
                sort_writes = tuple(
                    SortWrite(
                        sort_index=index,
                        guard=index == 0,
                        perm=perm,
                        sign=sign,
                        target=target,
                    )
                    for index, (perm, sign) in enumerate(SORT_VARIANTS)
                )
                chains.append(
                    ChainSpec(
                        chain_id=chain_id,
                        key=(iy, ix, color, 0),
                        tile_shape=(1, 1, self.tile, self.tile),
                        gemms=tuple(gemms),
                        sort_writes=sort_writes,
                        level=color,
                    )
                )
                chain_id += 1
        return Subroutine(
            name=f"rbgs_{'red' if color == 0 else 'black'}",
            chains=chains,
            inputs=[self.weights, self.u, self.u_next],
            output=self.u_next,
            level=color,
            structure_token=(
                "rbgs",
                self.grid_y,
                self.grid_x,
                self.tile,
                self.seed,
                self.skew_factor,
                self.skew_period,
                color,
            ),
        )

    def _apply_skew(self, chain_id: int, gemms: list[GemmOp]) -> list[GemmOp]:
        """Same imbalance knob as TermBuilder: selected chains repeat."""
        if (
            self.skew_factor <= 1
            or self.skew_period <= 0
            or chain_id % self.skew_period != 0
        ):
            return gemms
        stretched: list[GemmOp] = []
        for _ in range(self.skew_factor):
            for gemm in gemms:
                stretched.append(
                    GemmOp(
                        position=len(stretched),
                        a=gemm.a,
                        b=gemm.b,
                        m=gemm.m,
                        n=gemm.n,
                        k=gemm.k,
                    )
                )
        return stretched

    # -- Workload protocol ----------------------------------------------
    @property
    def name(self) -> str:
        return "rbgs"

    @property
    def output(self):
        return self.u_next

    def levels(self) -> list[Subroutine]:
        return list(self._levels)

    def reference_values(self) -> np.ndarray:
        """Dense NumPy smoother over the gathered grid (REAL mode)."""
        size = self.tile * self.tile
        u = self.u.flat_values()
        w = self.weights.flat_values()
        out = np.zeros(self.u_next.total)
        repeat = max(1, self.skew_factor)
        for color in (0, 1):
            src = u if color == 0 else out
            chain_id = 0
            for iy in range(self.grid_y):
                for ix in range(self.grid_x):
                    if (iy + ix) % 2 != color:
                        continue
                    acc = np.zeros(size)
                    for w_index, (dy, dx) in enumerate(STENCIL_OFFSETS):
                        jy, jx = iy + dy, ix + dx
                        if not (0 <= jy < self.grid_y and 0 <= jx < self.grid_x):
                            continue
                        center = dy == 0 and dx == 0
                        grid = u if (color == 0 or center) else src
                        lo = (jy * self.grid_x + jx) * size
                        acc += w[w_index] * grid[lo : lo + size]
                    skewed = (
                        self.skew_period > 0
                        and self.skew_factor > 1
                        and chain_id % self.skew_period == 0
                    )
                    lo = (iy * self.grid_x + ix) * size
                    out[lo : lo + size] += acc * (repeat if skewed else 1)
                    chain_id += 1
        return out

    def describe(self) -> str:
        red, black = self._levels
        return (
            f"rbgs: {self.grid_y}x{self.grid_x} tiles of "
            f"{self.tile}x{self.tile}, 2 colored waves "
            f"({red.n_chains} red + {black.n_chains} black chains, "
            f"{red.n_gemms + black.n_gemms} stencil GEMMs)"
        )


def build_rbgs_workload(
    cluster,
    ga,
    params: str,
    seed: int = 7,
    skew_factor: int = 1,
    skew_period: int = 0,
) -> RbgsWorkload:
    """Registry builder: grid shape from a preset or ``GYxGX[xT]``."""
    grid_y, grid_x, tile = parse_grid(params)
    return RbgsWorkload(
        cluster,
        ga,
        grid_y,
        grid_x,
        tile,
        seed=seed,
        skew_factor=skew_factor,
        skew_period=skew_period,
    )
