"""String-addressable workload registry and token grammar.

A workload token is ``"<name>"`` or ``"<name>:<params>"``:

- ``"t2_7:small"`` — the paper's sub-kernel at a named system scale;
- ``"ccsd:tiny"`` — a full CCSD iteration (seven barrier levels);
- ``"rbgs:128x128"`` — the red-black stencil on an explicit tile grid
  (presets like ``"rbgs:tiny"`` also work).

Bare legacy scale names (``"tiny"``, ``"small"``, ``"paper"``,
``"full"``) remain accepted everywhere a token is, resolving to
``"t2_7:<scale>"`` — the deprecation shim that keeps the original
``repro.run("small")`` API working. New code should spell the workload
explicitly.

Adding a workload is one :func:`register_workload` call with a builder
``(cluster, ga, params, *, seed, skew_factor, skew_period) -> Workload``
— see ``README.md`` ("Workloads") for the walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.tce.molecules import SCALE_PRESETS
from repro.util.errors import ConfigurationError

__all__ = [
    "WorkloadSpec",
    "register_workload",
    "workload_names",
    "workload_spec",
    "parse_workload_token",
    "canonical_token",
    "build_workload",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """One registry entry: a name, a builder, and its default params."""

    name: str
    summary: str
    builder: Callable
    default_params: str = "small"


_REGISTRY: dict[str, WorkloadSpec] = {}

#: legacy scale-string shim: a bare scale name is a t2_7 token
_LEGACY_SCALES = tuple(SCALE_PRESETS)


def register_workload(spec: WorkloadSpec) -> None:
    """Register (or replace) a workload under its name."""
    _REGISTRY[spec.name] = spec


def workload_names() -> tuple[str, ...]:
    """All registered workload names, sorted."""
    return tuple(sorted(_REGISTRY))


def workload_spec(name: str) -> WorkloadSpec:
    """The spec registered under ``name`` (ConfigurationError if none)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}: registered workloads are "
            f"{list(workload_names())} (a bare scale name "
            f"{sorted(_LEGACY_SCALES)} is also accepted as shorthand "
            f"for 't2_7:<scale>')"
        ) from None


def parse_workload_token(
    token: str, scale: Optional[str] = None
) -> tuple[str, str]:
    """Resolve a token to ``(name, params)``, validating the name.

    ``scale`` supplies the params when the token has none (the
    experiments' ``--workload rbgs --scale tiny`` composition); an
    explicit ``name:params`` token wins over it. Bare legacy scale
    names resolve through the t2_7 shim.
    """
    token = token.strip()
    if ":" in token:
        name, params = token.split(":", 1)
        name, params = name.strip(), params.strip()
        if not params:
            raise ConfigurationError(f"workload token {token!r} has empty params")
    elif token in _LEGACY_SCALES and token not in _REGISTRY:
        name, params = "t2_7", token
    else:
        name, params = token, ""
    spec = workload_spec(name)
    return name, params or scale or spec.default_params


def canonical_token(token: str, scale: Optional[str] = None) -> str:
    """The fully-qualified ``name:params`` form of any accepted token."""
    name, params = parse_workload_token(token, scale=scale)
    return f"{name}:{params}"


def build_workload(
    token: str,
    cluster,
    ga=None,
    *,
    scale: Optional[str] = None,
    seed: int = 7,
    skew_factor: int = 1,
    skew_period: int = 0,
):
    """Instantiate the workload a token names, on the given cluster.

    ``ga`` defaults to a fresh :class:`~repro.ga.runtime.GlobalArrays`
    on the cluster. The instance's ``workload_id`` is set to the
    canonical token so cache keys and reports agree on one spelling.
    """
    name, params = parse_workload_token(token, scale=scale)
    if ga is None:
        from repro.ga.runtime import GlobalArrays

        ga = GlobalArrays(cluster)
    spec = _REGISTRY[name]
    workload = spec.builder(
        cluster,
        ga,
        params,
        seed=seed,
        skew_factor=skew_factor,
        skew_period=skew_period,
    )
    workload.workload_id = f"{name}:{params}"
    return workload


# ----------------------------------------------------------------------
# built-in workloads
# ----------------------------------------------------------------------
def _build_t2_7(cluster, ga, params, *, seed=7, skew_factor=1, skew_period=0):
    from repro.tce.molecules import system_for_scale
    from repro.tce.t2_7 import build_t2_7

    system = system_for_scale(params)
    return build_t2_7(
        cluster,
        ga,
        system.orbital_space(),
        seed=seed,
        skew_factor=skew_factor,
        skew_period=skew_period,
    )


def _build_ccsd(cluster, ga, params, *, seed=7, skew_factor=1, skew_period=0):
    from repro.workloads.ccsd import build_ccsd_workload

    return build_ccsd_workload(
        cluster, ga, params, seed=seed, skew_factor=skew_factor, skew_period=skew_period
    )


def _build_rbgs(cluster, ga, params, *, seed=7, skew_factor=1, skew_period=0):
    from repro.workloads.rbgs import build_rbgs_workload

    return build_rbgs_workload(
        cluster, ga, params, seed=seed, skew_factor=skew_factor, skew_period=skew_period
    )


register_workload(
    WorkloadSpec(
        name="t2_7",
        summary="the paper's icsd_t2_7 sub-kernel (one level); params: scale name",
        builder=_build_t2_7,
    )
)
register_workload(
    WorkloadSpec(
        name="ccsd",
        summary="full CCSD iteration, 14 terms over 7 barrier levels; params: scale name",
        builder=_build_ccsd,
    )
)
register_workload(
    WorkloadSpec(
        name="rbgs",
        summary="red-black Gauss-Seidel tile stencil, 2 colored waves; "
        "params: scale name, GYxGX, or GYxGXxTILE",
        builder=_build_rbgs,
    )
)
