"""Command-line driver: ``python -m repro <experiment> [options]``.

Subcommands regenerate the paper's artifacts without pytest:

- ``fig9``        the Figure 9 sweep + shape checks
- ``traces``      Figures 10/11 and 12/13 with ASCII Gantt charts
- ``equivalence`` the Section IV-A 14-digit agreement check
- ``ablations``   the design-decision sweeps
- ``chaos``       fault-injection sweep: bitwise recovery check
- ``report``      run any runtime/variant, emit a structured RunReport
- ``perf``        fig9-style sweep vs a committed BENCH baseline
- ``info``        workload/scale/machine summary

The simulation service adds five more:

- ``serve``       long-lived daemon executing submitted jobs (journaled,
  crash-recoverable, ``--workers N`` jobs concurrently; see README
  "Simulation service")
- ``submit``      send a job to a running daemon (``--priority`` biases
  which queued job a free worker picks first)
- ``status``      one job's status, or the daemon overview
- ``result``      fetch (optionally wait for) a job's result
- ``watch``       stream a job's progress events (one JSON line per
  started/cell/finished event) until it completes

Exit codes are uniform across subcommands: ``0`` for success (including
informational runs at non-paper scales), ``1`` when a declared check
fails (shape checks at paper scale, equivalence digits, chaos recovery,
perf regressions) or a service request cannot be satisfied, ``2`` for
usage/configuration errors (argparse rejections and invalid sweep
configuration such as an unknown scale), and ``130`` when interrupted
with Ctrl-C (the conventional 128+SIGINT; a ``serve`` daemon flushes
its journal before exiting, so interrupted work resumes on restart).

The sweep subcommands (``fig9``, ``perf``, ``chaos``) accept
``--jobs/-j N`` to fan their independent grid cells out over worker
processes; per-cell progress goes to stderr and results are merged
deterministically, so the output is byte-identical at any job count.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

#: the run completed and every evaluated check passed (or the run was
#: informational at its scale)
EXIT_OK = 0
#: the run completed but a declared check failed
EXIT_CHECK_FAILED = 1
#: invalid usage/configuration (argparse uses the same code)
EXIT_USAGE = 2
#: interrupted by Ctrl-C (the shell convention: 128 + SIGINT)
EXIT_INTERRUPTED = 130

#: default port of the ``repro serve`` daemon
DEFAULT_SERVE_PORT = 8642


def _add_scale(parser: argparse.ArgumentParser, default: str = "paper") -> None:
    parser.add_argument(
        "--scale",
        default=default,
        choices=["tiny", "small", "paper", "full"],
        help=f"workload scale preset (default: {default})",
    )


def _add_workload(parser: argparse.ArgumentParser, default: str = "t2_7") -> None:
    parser.add_argument(
        "--workload",
        default=default,
        metavar="NAME[:PARAMS]",
        help=(
            "registered workload name or full 'name:params' token "
            f"(default: {default}; an explicit token overrides --scale; "
            "see `python -m repro info` for the registry)"
        ),
    )


def _workload_name(token: str) -> str:
    """The registry name part of a workload token."""
    return token.split(":", 1)[0].strip()


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help=(
            "worker processes for the sweep (default: 1 = serial; 0 = one "
            "per CPU). Results are byte-identical at any job count."
        ),
    )


def _progress():
    from repro.experiments.sweep import default_progress

    return default_progress


def cmd_fig9(args: argparse.Namespace) -> int:
    from repro.experiments.fig9 import fig9_shape_checks, run_fig9

    result = run_fig9(
        scale=args.scale,
        jobs=args.jobs,
        progress=_progress(),
        stealing=args.stealing,
        skew_factor=args.skew_factor,
        skew_period=args.skew_period,
        workload=args.workload,
    )
    print(result.table())
    print()
    print(result.chart())
    print()
    print(result.summary_table())
    print()
    failed = 0
    for check in fig9_shape_checks(result):
        status = "SKIP" if check.skipped else ("PASS" if check.passed else "FAIL")
        failed += not check.passed
        print(f"[{status}] {check.name}: {check.detail}")
    if result.sweep_stats is not None:
        print(f"\n{result.sweep_stats.summary()}")
    if args.stealing or args.skew_factor > 1:
        print(
            "\nnote: the shape checks describe the paper's static, "
            "unskewed configuration; with --stealing/--skew-factor they "
            "are informational only."
        )
        return EXIT_OK
    if _workload_name(args.workload) != "t2_7":
        print(
            "\nnote: the shape checks are paper claims about the t2_7 "
            f"sub-kernel; for --workload {args.workload} they are "
            "informational only."
        )
        return EXIT_OK
    if args.scale not in ("paper", "full"):
        print(
            "\nnote: the shape checks describe the paper-scale workload; at "
            f"--scale {args.scale} they are informational only."
        )
        return EXIT_OK
    return EXIT_CHECK_FAILED if failed else EXIT_OK


def cmd_traces(args: argparse.Namespace) -> int:
    from repro.experiments.traces import comm_vs_gemm_share, run_fig10_11, run_fig12_13

    n_nodes = 8 if args.scale in ("tiny", "small") else 32
    v4, v2 = run_fig10_11(scale=args.scale, n_nodes=n_nodes)
    original = run_fig12_13(scale=args.scale, n_nodes=n_nodes)
    for experiment, figure in ((v4, "Figure 10"), (v2, "Figure 11")):
        print(f"=== {figure}: {experiment.name}")
        print(
            f"time={experiment.execution_time:.4f}s  "
            f"startup idle={100 * experiment.startup_idle:.1f}%"
        )
        print(experiment.gantt(width=args.width, max_rows=args.rows))
        print()
    print(f"=== Figure 12/13: {original.name}")
    print(
        f"time={original.execution_time:.4f}s  overlap={100 * original.overlap:.0f}%  "
        f"comm share={100 * original.comm_fraction:.1f}%  "
        f"comm/GEMM={comm_vs_gemm_share(original):.2f}x"
    )
    print(original.gantt(width=args.width, max_rows=args.rows))
    return EXIT_OK


def cmd_equivalence(args: argparse.Namespace) -> int:
    from repro.experiments.equivalence import run_equivalence

    result = run_equivalence(scale=args.scale, n_nodes=8, workload=args.workload)
    for name, energy in sorted(result.energies.items()):
        print(f"{name:10s} {energy:+.15e}")
    digits = result.agrees_to_digits()
    print(f"agreement: {digits:.1f} digits (paper claims 14)")
    return EXIT_OK if digits >= 13 else EXIT_CHECK_FAILED


def cmd_ablations(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.experiments.ablations import (
        compare_load_balancing,
        compare_scheduler_policies,
        compare_work_stealing,
        run_comm_ablation,
        sweep_priority_offsets,
        sweep_segment_height,
        sweep_write_organization,
    )

    if args.comm:
        comm_scale = "tiny" if args.scale in ("paper", "full") else args.scale
        result = run_comm_ablation(workloads=args.workloads, scale=comm_scale)
        table = result.table()
        print(table)
        if args.out:
            Path(args.out).write_text(table + "\n")
            print(f"table written to {args.out}")
        if not result.all_equal:
            print("FAIL: a knobs-on run diverged from the baseline output")
            return EXIT_CHECK_FAILED
        print("output equality: all knob combinations bitwise-equal to baseline")
        for workload in args.workloads:
            savings = result.message_savings(workload)
            verdict = "ok"
            if savings < args.min_message_savings:
                verdict = f"FAIL (< {args.min_message_savings:.0%})"
            print(f"{workload}: {savings:.1%} fewer wire messages [{verdict}]")
        if any(
            result.message_savings(w) < args.min_message_savings
            for w in args.workloads
        ):
            return EXIT_CHECK_FAILED
        return EXIT_OK

    print(
        format_table(
            ["read offset", "time (s)"],
            [[f"+{k}", f"{v:.3f}"] for k, v in sorted(sweep_priority_offsets(scale=args.scale).items())],
            title="READ priority offset (v4, 7 cores/node)",
        ),
        end="\n\n",
    )
    print(
        format_table(
            ["chain height", "time (s)"],
            [[k, f"{v:.3f}"] for k, v in sweep_segment_height(scale=args.scale).items()],
            title="GEMM chain segment height (15 cores/node)",
        ),
        end="\n\n",
    )
    grid = sweep_write_organization(scale=args.scale)
    print(
        format_table(
            ["mutex op cost", "single WRITE (v5)", "parallel WRITEs"],
            [
                [k, f"{v['single-write (v5)']:.3f}", f"{v['parallel-write']:.3f}"]
                for k, v in grid.items()
            ],
            title="WRITE organization vs mutex cost (15 cores/node)",
        ),
        end="\n\n",
    )
    print(
        format_table(
            ["strategy", "time (s)"],
            [[k, f"{v:.3f}"] for k, v in compare_load_balancing(scale=args.scale).items()],
            title="Load balancing (7 cores/node)",
        ),
        end="\n\n",
    )
    print(
        format_table(
            ["policy", "time (s)"],
            [[k, f"{v:.3f}"] for k, v in compare_scheduler_policies(scale=args.scale).items()],
            title="Scheduler policy (v4, 7 cores/node)",
        ),
        end="\n\n",
    )
    steal_scale = "tiny" if args.scale in ("paper", "full") else args.scale
    steal_grid = compare_work_stealing(scale=steal_scale)
    print(
        format_table(
            ["nodes", "static (s)", "stealing (s)", "speedup", "chains moved"],
            [
                [
                    k,
                    f"{row['static']:.6f}",
                    f"{row['stealing']:.6f}",
                    f"{row['speedup']:.2f}x",
                    f"{int(row['chains_migrated'])}",
                ]
                for k, row in steal_grid.items()
            ],
            title=(
                "Inter-node work stealing vs static placement "
                f"(skewed {steal_scale} workload, v5, compute-bound machine)"
            ),
        )
    )
    return EXIT_OK


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.experiments.chaos import run_chaos

    result = run_chaos(
        scale=args.scale,
        n_nodes=args.nodes,
        cores_per_node=args.cores,
        fault_seed=args.fault_seed,
        jobs=args.jobs,
        progress=_progress(),
        stealing=args.stealing,
        codes=args.codes,
        workload=args.workload,
    )
    print(f"fault plan: {result.plan_description}\n")
    rows = []
    for o in result.outcomes:
        nonzero = {k: v for k, v in o.counters.items() if v and k != "recovery_overhead_s"}
        rows.append(
            [
                o.name,
                "PASS" if o.bitwise_match else "FAIL",
                "PASS" if o.deterministic else "FAIL",
                "yes" if o.faults_recovered else "NO",
                f"{o.end_time_clean:.4f}",
                f"{o.end_time_faulted:.4f}",
                " ".join(f"{k}={v}" for k, v in sorted(nonzero.items())),
            ]
        )
    print(
        format_table(
            ["runner", "bitwise", "determ.", "faults", "clean (s)", "faulted (s)", "recovery counters"],
            rows,
            title="Chaos sweep: recovery under injected faults",
        )
    )
    print()
    if result.sweep_stats is not None:
        print(result.sweep_stats.summary())
    print("ALL OK" if result.all_ok else "FAILURES DETECTED")
    return EXIT_OK if result.all_ok else EXIT_CHECK_FAILED


def cmd_report(args: argparse.Namespace) -> int:
    """Run the selected runtimes and emit structured RunReports."""
    from repro.analysis.run_report import render_run_report
    from repro.core.api import RunConfig, run
    from repro.obs.report import write_jsonl
    from repro.sim.cluster import DataMode

    # REAL data end to end at the small scales (enables the output
    # checksum); costs-only SYNTH where REAL tensors would not fit
    data_mode = DataMode.REAL if args.scale in ("tiny", "small") else DataMode.SYNTH
    config = RunConfig(
        n_nodes=args.nodes,
        cores_per_node=args.cores,
        data_mode=data_mode,
        trace=not args.no_trace,
        metrics=True,
        seed=args.seed,
    )
    runtimes = ["legacy", "v5"] if args.runtime == "both" else [args.runtime]
    token = (
        args.workload
        if ":" in args.workload
        else f"{args.workload}:{args.scale}"
    )
    reports = []
    for runtime in runtimes:
        result = run(token, runtime=runtime, config=config)
        if result.report is None:
            print(f"error: {runtime} run produced no report", file=sys.stderr)
            return EXIT_CHECK_FAILED
        reports.append(result.report)
        print(render_run_report(result.report))
        print()
    if args.out:
        path = write_jsonl(reports, args.out)
        print(f"wrote {len(reports)} report(s) to {path}")
    else:
        for report in reports:
            print(report.to_json_line())
    return EXIT_OK


def cmd_perf(args: argparse.Namespace) -> int:
    """Run the perf sweep, write a BENCH baseline, gate on regressions."""
    from repro.analysis.report import format_table
    from repro.experiments.perf import (
        PerfBaseline,
        baseline_path,
        diff_baselines,
        run_perf,
    )
    from repro.util.errors import ConfigurationError

    try:
        new = run_perf(
            scale=args.scale,
            jobs=args.jobs,
            progress=_progress(),
            stealing=args.stealing,
            workload=args.workload,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    suffix = "_stealing" if args.stealing else ""
    tag = (
        ""
        if args.workload == "t2_7"
        else args.workload.replace(":", "_").replace("/", "_") + "_"
    )
    out = args.out or f"BENCH_fig9_{tag}{args.scale}{suffix}.json"
    written = new.write(out)
    print(f"wrote {written}")
    print(
        format_table(
            ["code"] + [f"{c} cores" for c in new.core_counts],
            [
                [code] + [f"{new.times[code][c]:.6f}" for c in new.core_counts]
                for code in sorted(new.times)
            ],
            title=(
                f"fig9 perf sweep: scale={new.scale}, {new.n_nodes} nodes "
                "(virtual seconds)"
            ),
        )
    )
    if new.sweep_stats is not None:
        print(f"\n{new.sweep_stats.summary()}")
    if args.stealing:
        # stealing sweeps are a different experiment: their cells are
        # not comparable to the committed static baselines, and gating
        # on them would flag phantom regressions (or phantom wins)
        print(
            "\nstealing sweep: not comparable to the static baselines; "
            "skipping the regression gate"
        )
        return EXIT_OK
    baseline_file = args.baseline or baseline_path(
        args.scale, workload=args.workload
    )
    if args.update_baseline:
        committed = new.write(baseline_path(args.scale, workload=args.workload))
        print(f"updated committed baseline {committed}")
        return EXIT_OK
    import os

    if not os.path.exists(baseline_file):
        print(
            f"\nno committed baseline at {baseline_file}; skipping the "
            "regression gate (use --update-baseline to create one)"
        )
        return EXIT_OK
    try:
        old = PerfBaseline.read(baseline_file)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CHECK_FAILED
    diff = diff_baselines(old, new, threshold=args.threshold)
    print(f"\nbaseline: {baseline_file} (threshold {100 * args.threshold:.0f}%)")
    for cell in diff.missing:
        print(f"WARNING {cell.describe()}")
    if diff.regressions:
        for regression in diff.regressions:
            print(f"REGRESSION {regression.describe()}")
        return EXIT_CHECK_FAILED
    if diff.missing:
        print(
            "no regressions in the cells both sweeps cover — but "
            f"{len(diff.missing)} baseline cell(s) went missing (see above)"
        )
    else:
        print("no regressions")
    return EXIT_OK


def _parse_params(pairs: list[str]) -> dict:
    """``key=value`` pairs to a params dict; values parse as JSON when
    they can (so ``cores=4``, ``stealing=true``, ``codes=["v5"]`` all
    work) and fall back to plain strings (``scale=tiny``)."""
    import json

    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"error: --param expects key=value, got {pair!r}"
            )
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the daemon until SIGTERM/SIGINT; exit through os._exit so a
    wedged worker pool cannot hang the interpreter's atexit joins (the
    journal is fsynced per event — nothing is lost)."""
    import os
    import signal

    from repro.experiments.sweep import RetryPolicy
    from repro.serve.daemon import ServeDaemon

    daemon = ServeDaemon(
        journal_path=args.journal,
        host=args.host,
        port=args.port,
        workers=args.workers,
        pool_jobs=args.jobs,
        cell_timeout=args.cell_timeout,
        retry=RetryPolicy(retries=args.retries),
        compact_bytes=args.compact_bytes,
    )

    def _on_sigterm(signum, frame):
        raise SystemExit(EXIT_OK)

    signal.signal(signal.SIGTERM, _on_sigterm)
    daemon.start()
    recovered = daemon.recovered
    if recovered.jobs:
        print(
            f"journal replay: {len(recovered.jobs)} job(s), "
            f"{len(recovered.pending)} requeued, "
            f"{len(recovered.results)} cached result(s)",
            file=sys.stderr,
        )
    if daemon.corrupt_lines:
        print(
            f"journal replay skipped {daemon.corrupt_lines} corrupt "
            f"line(s)",
            file=sys.stderr,
        )
    print(f"serving on {daemon.host}:{daemon.port}", flush=True)
    rc = EXIT_OK
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        rc = EXIT_INTERRUPTED
    except SystemExit as exc:
        rc = int(exc.code or 0)
    finally:
        daemon.stop()
        print("daemon stopped; journal flushed", file=sys.stderr)
        sys.stdout.flush()
        sys.stderr.flush()
        os._exit(rc)
    return rc  # pragma: no cover - os._exit above


def _client(args: argparse.Namespace):
    from repro.serve.client import ServiceClient

    return ServiceClient(host=args.host, port=args.port)


def cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ServiceError, ServiceUnavailable

    client = _client(args)
    params = _parse_params(args.param)
    if args.priority:
        params["priority"] = args.priority
    try:
        body = client.submit(args.kind, params)
        if args.wait:
            body = client.wait(body["job_id"], timeout_s=args.timeout)
    except ServiceUnavailable as exc:
        print(
            f"rejected: {exc} (retry after {exc.retry_after_s}s)",
            file=sys.stderr,
        )
        return EXIT_CHECK_FAILED
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE if exc.status == 400 else EXIT_CHECK_FAILED
    print(json.dumps(body, indent=2, sort_keys=True))
    return EXIT_OK


def cmd_status(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ServiceError

    client = _client(args)
    try:
        body = client.status(args.job_id) if args.job_id else client.overview()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CHECK_FAILED
    print(json.dumps(body, indent=2, sort_keys=True))
    return EXIT_OK


def cmd_result(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ServiceError

    client = _client(args)
    try:
        if args.wait:
            body = client.wait(args.job_id, timeout_s=args.timeout)
        else:
            body = client.result(args.job_id)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CHECK_FAILED
    print(json.dumps(body, indent=2, sort_keys=True))
    if body.get("status") in ("queued", "running"):
        return EXIT_CHECK_FAILED  # asked for a result that isn't ready
    return EXIT_OK


def cmd_watch(args: argparse.Namespace) -> int:
    """Stream one job's progress events to stdout as JSON lines."""
    import json

    from repro.serve.client import ServiceError

    client = _client(args)
    final_status = None
    try:
        for event in client.events(args.job_id, since=args.since):
            print(json.dumps(event, sort_keys=True), flush=True)
            if event.get("type") == "finished":
                final_status = event.get("status")
        if final_status is None:
            # stream closed without a visible finish (e.g. watching a
            # job recovered from a journal replay): ask once
            final_status = client.status(args.job_id).get("status")
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CHECK_FAILED
    return EXIT_OK if final_status == "done" else EXIT_CHECK_FAILED


def cmd_info(args: argparse.Namespace) -> int:
    from repro.experiments.calibration import PAPER_MACHINE, make_cluster, make_workload
    from repro.tce.molecules import SCALE_PRESETS
    from repro.workloads import canonical_token, workload_names, workload_spec

    print("scale presets:")
    for name, system in SCALE_PRESETS.items():
        print(
            f"  {name:6s} {system.name}: nocc={system.nocc} nvirt={system.nvirt} "
            f"tile={system.tile_size} ({system.n_basis} basis functions)"
        )
    print("\nregistered workloads (use --workload name[:params]):")
    for name in workload_names():
        print(f"  {name:6s} {workload_spec(name).summary}")
    cluster = make_cluster(1, n_nodes=4)
    workload = make_workload(cluster, scale=args.scale, workload=args.workload)
    token = canonical_token(args.workload, scale=args.scale)
    print(f"\nworkload {token}: {workload.describe()}")
    print(f"\ncalibrated machine: {PAPER_MACHINE}")
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'PaRSEC in Practice' (CLUSTER 2015) experiments.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p = subparsers.add_parser("fig9", help="Figure 9 sweep + shape checks")
    _add_scale(p)
    _add_workload(p)
    _add_jobs(p)
    p.add_argument(
        "--stealing",
        action="store_true",
        help="run the PaRSEC codes with inter-node work stealing",
    )
    p.add_argument(
        "--skew-factor",
        type=int,
        default=1,
        help="imbalance knob: repeat selected chains this many times",
    )
    p.add_argument(
        "--skew-period",
        type=int,
        default=0,
        help="skew chains whose id is a multiple of this (0 = no skew)",
    )
    p.set_defaults(func=cmd_fig9)

    p = subparsers.add_parser("traces", help="Figures 10-13 ASCII traces")
    _add_scale(p, default="small")
    p.add_argument("--width", type=int, default=100)
    p.add_argument("--rows", type=int, default=7)
    p.set_defaults(func=cmd_traces)

    p = subparsers.add_parser("equivalence", help="14-digit agreement check")
    _add_scale(p, default="small")
    _add_workload(p)
    p.set_defaults(func=cmd_equivalence)

    p = subparsers.add_parser("ablations", help="design-decision sweeps")
    _add_scale(p)
    p.add_argument(
        "--comm",
        action="store_true",
        help="run only the one-sided comm knob matrix "
        "(coalescing × remote-block cache) with bitwise equality checks",
    )
    p.add_argument(
        "--workloads",
        nargs="+",
        default=["t2_7", "ccsd", "rbgs"],
        choices=["t2_7", "ccsd", "rbgs"],
        help="workloads for the --comm matrix (default: all three)",
    )
    p.add_argument(
        "--out",
        default=None,
        help="also write the --comm table to this file (CI artifact)",
    )
    p.add_argument(
        "--min-message-savings",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="fail unless every --comm workload cuts wire messages by "
        "at least this fraction with both knobs on (e.g. 0.20)",
    )
    p.set_defaults(func=cmd_ablations)

    p = subparsers.add_parser("chaos", help="fault-injection recovery sweep")
    _add_scale(p, default="tiny")
    _add_workload(p)
    p.add_argument("--nodes", type=int, default=4, help="nodes in the allocation")
    p.add_argument("--cores", type=int, default=2, help="compute cores per node")
    p.add_argument(
        "--fault-seed", type=int, default=2025, help="master seed of the fault plan"
    )
    p.add_argument(
        "--stealing",
        action="store_true",
        help=(
            "run the PaRSEC variants with inter-node work stealing under "
            "the fault plan (the legacy runtime ignores it)"
        ),
    )
    p.add_argument(
        "--codes",
        nargs="+",
        default=None,
        metavar="CODE",
        help="restrict the sweep to these runners (default: all six)",
    )
    _add_jobs(p)
    p.set_defaults(func=cmd_chaos)

    p = subparsers.add_parser(
        "report", help="run a runtime/variant, emit a structured RunReport"
    )
    _add_scale(p, default="tiny")
    _add_workload(p)
    p.add_argument(
        "--runtime",
        default="both",
        choices=["both", "legacy", "original", "parsec", "dtd", "v1", "v2", "v3", "v4", "v5"],
        help="what to run (default: both = legacy + PaRSEC v5)",
    )
    p.add_argument("--nodes", type=int, default=4, help="nodes in the allocation")
    p.add_argument("--cores", type=int, default=2, help="compute cores per node")
    p.add_argument("--seed", type=int, default=7, help="workload data seed")
    p.add_argument("--out", default=None, help="write reports to this JSONL file")
    p.add_argument(
        "--no-trace", action="store_true", help="skip tracing (no trace stats)"
    )
    p.set_defaults(func=cmd_report)

    p = subparsers.add_parser(
        "perf", help="fig9-style perf sweep vs committed BENCH baseline"
    )
    _add_scale(p, default="tiny")
    _add_workload(p)
    p.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="regression threshold as a fraction (default: 0.20 = 20%%)",
    )
    p.add_argument(
        "--baseline", default=None, help="baseline JSON to compare against"
    )
    p.add_argument(
        "--out", default=None, help="where to write the fresh BENCH JSON"
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the committed baseline with this sweep",
    )
    p.add_argument(
        "--stealing",
        action="store_true",
        help=(
            "sweep with inter-node work stealing; writes a _stealing "
            "BENCH file and skips the (static) regression gate"
        ),
    )
    _add_jobs(p)
    p.set_defaults(func=cmd_perf)

    p = subparsers.add_parser("info", help="workload and machine summary")
    _add_scale(p, default="paper")
    _add_workload(p)
    p.set_defaults(func=cmd_info)

    def _add_endpoint(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--host", default="127.0.0.1", help="daemon host")
        sub.add_argument(
            "--port", type=int, default=DEFAULT_SERVE_PORT, help="daemon port"
        )

    p = subparsers.add_parser(
        "serve", help="run the simulation service daemon"
    )
    _add_endpoint(p)
    p.add_argument(
        "--journal",
        default="serve_journal.jsonl",
        help="append-only JSONL event store (jobs survive restarts)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="jobs executed simultaneously (default: 1)",
    )
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=2,
        help=(
            "shared process-slot budget for all running jobs' sweeps "
            "(default: 2; each job carves a fair share)"
        ),
    )
    p.add_argument(
        "--compact-bytes",
        type=int,
        default=262144,
        help=(
            "compact the journal into a snapshot once it exceeds this "
            "many bytes (0 disables the size trigger; clean shutdown "
            "always compacts)"
        ),
    )
    p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="wall-clock deadline per cell attempt in seconds",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry budget per cell (timeouts and killed workers)",
    )
    p.set_defaults(func=cmd_serve)

    p = subparsers.add_parser("submit", help="submit a job to the daemon")
    _add_endpoint(p)
    p.add_argument(
        "kind", choices=["point", "fig9", "chaos"], help="job kind"
    )
    p.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "job parameter; values parse as JSON when possible "
            '(e.g. --param cores=4 --param codes=\'["v5"]\')'
        ),
    )
    p.add_argument(
        "--priority",
        type=int,
        default=0,
        help=(
            "scheduling priority (higher runs first; queued jobs age "
            "upward so nothing starves). Not part of the job's digest."
        ),
    )
    p.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    p.add_argument(
        "--timeout", type=float, default=300.0, help="--wait limit in seconds"
    )
    p.set_defaults(func=cmd_submit)

    p = subparsers.add_parser(
        "status", help="job status (or daemon overview without a job id)"
    )
    _add_endpoint(p)
    p.add_argument("job_id", nargs="?", default=None, help="job to inspect")
    p.set_defaults(func=cmd_status)

    p = subparsers.add_parser("result", help="fetch a job's result")
    _add_endpoint(p)
    p.add_argument("job_id", help="job to fetch")
    p.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    p.add_argument(
        "--timeout", type=float, default=300.0, help="--wait limit in seconds"
    )
    p.set_defaults(func=cmd_result)

    p = subparsers.add_parser(
        "watch", help="stream a job's progress events until it finishes"
    )
    _add_endpoint(p)
    p.add_argument("job_id", help="job to follow")
    p.add_argument(
        "--since",
        type=int,
        default=0,
        help="resume after the N-th event (skip what you already saw)",
    )
    p.set_defaults(func=cmd_watch)

    args = parser.parse_args(argv)
    from repro.util.errors import ConfigurationError

    try:
        return args.func(args)
    except ConfigurationError as exc:
        # unknown workload/runtime/scale names are usage errors, the
        # same class argparse reports — map them to the same exit code
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except KeyboardInterrupt:
        # conventional 128 + SIGINT; partial output may already be on
        # stdout, the marker goes to stderr
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":
    sys.exit(main())
