"""GET_HASH_BLOCK / ADD_HASH_BLOCK — the TCE data-movement calls.

These are the calls the generated Fortran inserts around every GEMM
chain: a blocking fetch of the A/B operand tiles before the chain, and
an atomic accumulate of the sorted C tile after it. They wrap the
one-sided :class:`~repro.ga.runtime.GlobalArrays` ops and trace
themselves, which is how the Figure 12/13 trace reproduction shows
communication "interleaved with computation, however ... not
overlapped".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.trace import TaskCategory

__all__ = ["get_hash_block", "add_hash_block"]


def get_hash_block(ga, node, thread: int, array, lo: int, hi: int, label: str = ""):
    """Generator helper: blocking tile fetch, traced as communication.

    Returns the fetched data (REAL mode) or None (SYNTH mode). The
    recorded span covers the full blocking time — request, queueing at
    the owner, transport, and the local landing cost — because that is
    what the calling rank experiences.
    """
    t_start = ga.engine.now
    hits_before = ga.cache_hits
    data = yield from ga.fetch(node.node_id, array, lo, hi)
    meta = {"bytes": array.nbytes(lo, hi)}
    if ga.remote_cache is not None:
        # knobs-on only, so default-path traces stay byte-identical
        meta["cached"] = ga.cache_hits > hits_before
    node.trace.record(
        node.node_id,
        thread,
        TaskCategory.COMM,
        label or f"GET_HASH_BLOCK:{array.name}",
        t_start,
        ga.engine.now,
        meta,
    )
    return data


def add_hash_block(
    ga,
    node,
    thread: int,
    array,
    lo: int,
    hi: int,
    data: Optional[np.ndarray],
    label: str = "",
    tag=None,
):
    """Generator helper: blocking atomic accumulate, traced as a write.

    ``tag`` identifies the logical contribution for the array's
    ordered-accumulation mode (bitwise-reproducible runs)."""
    t_start = ga.engine.now
    yield from ga.accumulate(node.node_id, array, lo, hi, data, tag=tag)
    node.trace.record(
        node.node_id,
        thread,
        TaskCategory.WRITE,
        label or f"ADD_HASH_BLOCK:{array.name}",
        t_start,
        ga.engine.now,
        {"bytes": array.nbytes(lo, hi)},
    )
