"""NXTVAL: the shared-counter work-stealing primitive.

The original TCE code load-balances by having every rank atomically
fetch-and-increment one global counter per unit of work ("NXTVAL",
Section IV-D). The counter lives on a single home node; every increment
is a remote read-modify-write serialized by that node's counter server.
With 32·c ranks each paying a round trip plus queueing at one server,
the overhead grows with scale — the paper's argument for replacing it
with static round-robin distribution in the PaRSEC version.
"""

from __future__ import annotations

import itertools
from collections import deque

from repro.sim.engine import SimEvent

__all__ = ["NxtvalServer"]

_REQ_BYTES = 32.0
_REPLY_BYTES = 32.0

_instance_ids = itertools.count()


class NxtvalServer:
    """Fetch-and-increment counter served FIFO at a home node.

    Each server instance owns a distinct inbox: the original code uses
    a fresh shared counter per work level, and concurrent counters must
    not steal each other's requests.
    """

    def __init__(self, ga_runtime, home_node: int = 0) -> None:
        self.ga = ga_runtime
        self.engine = ga_runtime.engine
        self.machine = ga_runtime.machine
        self.metrics = ga_runtime.cluster.metrics
        self.home_node = home_node
        self.inbox_name = f"ga.nxtval#{next(_instance_ids)}"
        self._counter = 0
        #: tickets handed back by crash recovery, served before fresh
        #: counter values so orphaned work units are re-claimed
        self._reissued: deque[int] = deque()
        self.total_requests = 0
        self.tickets_reissued = 0
        self.engine.process(
            self._serve(ga_runtime.cluster.nodes[home_node]),
            name=f"nxtval.server:{self.inbox_name}",
        )

    def reset(self) -> None:
        """Restart the ticket sequence (the original code does this per level)."""
        self._counter = 0
        self._reissued.clear()

    def reissue(self, ticket: int) -> None:
        """Hand a ticket back to the pool (crash recovery).

        A rank that died after claiming ``ticket`` but before completing
        (committing) the corresponding work unit returns it here; the
        server serves reissued tickets before fresh counter values, so a
        survivor picks the orphan up on its next NXTVAL call.
        """
        self._reissued.append(ticket)
        self.tickets_reissued += 1
        if self.metrics.enabled:
            self.metrics.inc("nxtval.reissued")

    @property
    def value(self) -> int:
        """Next ticket that would be handed out."""
        return self._counter

    def next(self, requester: int):
        """Generator helper: atomically fetch-and-increment; returns the ticket.

        Charges the caller-side issue overhead, then blocks for the
        round trip and the (possibly queued) service at the home node.
        """
        self.total_requests += 1
        if self.metrics.enabled:
            self.metrics.inc("nxtval.requests")
        yield self.engine.timeout(self.machine.nxtval_issue_s)
        reply: SimEvent = self.engine.event()
        self.ga.cluster.network.send(
            requester,
            self.home_node,
            _REQ_BYTES,
            reply,
            inbox=self.inbox_name,
            tag="nxtval",
        )
        ticket = yield reply
        return ticket

    def _serve(self, node):
        inbox = node.inbox(self.inbox_name)
        while True:
            message = yield inbox.get()
            yield self.engine.timeout(self.machine.nxtval_service_s)
            if self._reissued:
                ticket = self._reissued.popleft()
            else:
                ticket = self._counter
                self._counter += 1
            self.ga.cluster.network.send(
                node.node_id,
                message.src,
                _REPLY_BYTES,
                ticket,
                tag="nxtval.reply",
                on_deliver=lambda msg, ev=message.payload: ev.succeed(msg.payload),
            )
