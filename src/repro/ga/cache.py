"""Per-node software cache of fetched remote blocks (opt-in).

The PGAS-compiler line of work gets large wins from caching remote
blocks of irregular accesses close to the reader. This module is the
simulated equivalent: a bounded per-node map from ``(array, lo, hi)``
to the bytes a previous :meth:`~repro.ga.runtime.GlobalArrays.fetch`
brought over the wire. A hit skips the request/reply round trip and the
owner-side service entirely; only the requester's local memory landing
cost remains.

Invalidation is by *write epochs*: every :class:`GlobalArray` mutation
(accumulate, scatter, zero) logs its range against a monotonic counter
(:meth:`GlobalArray.record_write`). An entry remembers the epoch its
bytes were valid at; a lookup revalidates by asking the array whether
any later write overlapped the block's range (`modified_since`), and
evicts on overlap. Epochs older than the array's compacted log history
count as modified, so stale reads are impossible by construction — the
cache can only ever under-perform, never return old data.

Everything here is host-side bookkeeping: no simulated time passes in
``lookup``/``insert``, and SYNTH-mode entries carry ``None`` payloads
so REAL and SYNTH runs hit and miss identically.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ga.array import GlobalArray

__all__ = ["RemoteBlockCache", "RemoteCachePolicy"]


@dataclass(frozen=True)
class RemoteCachePolicy:
    """Knobs for the per-node remote-block cache."""

    #: capacity in cached blocks per node (LRU eviction beyond it)
    max_blocks: int = 64


class RemoteBlockCache:
    """Bounded LRU of ``(array handle, lo, hi)`` -> fetched block."""

    def __init__(self, policy: RemoteCachePolicy) -> None:
        self.policy = policy
        # key -> [epoch, data]; insertion/move order is the LRU order
        self._entries: OrderedDict[tuple[int, int, int], list] = OrderedDict()
        # statistics
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, array: GlobalArray, lo: int, hi: int
    ) -> tuple[bool, Optional[np.ndarray]]:
        """``(hit, data)`` for the exact block ``[lo, hi)``.

        Revalidates against the array's write log: an entry that any
        later write overlapped is evicted and reported as a miss. On a
        hit the entry's epoch advances to "now" (the check just proved
        no overlapping write happened in between) and the entry moves
        to most-recently-used.
        """
        key = (array.handle, lo, hi)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return False, None
        if array.modified_since(entry[0], lo, hi):
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return False, None
        entry[0] = array.write_epoch
        self._entries.move_to_end(key)
        self.hits += 1
        return True, entry[1]

    def insert(
        self,
        array: GlobalArray,
        lo: int,
        hi: int,
        epoch: int,
        data: Optional[np.ndarray],
    ) -> None:
        """Remember a fetched block, evicting LRU past capacity.

        ``epoch`` must be the array's write epoch captured *before* the
        fetch was issued: the owner read the data no earlier than that,
        so claiming the older epoch can only cause a false invalidation
        later — never a stale hit.
        """
        if self.policy.max_blocks <= 0:
            return
        key = (array.handle, lo, hi)
        self._entries[key] = [epoch, data]
        self._entries.move_to_end(key)
        while len(self._entries) > self.policy.max_blocks:
            self._entries.popitem(last=False)
