"""Barrier synchronization (GA_Sync).

The TCE-generated CC code splits its work into seven levels "with an
explicit synchronization step between those levels" — so chains are
only stealable within a level. :class:`Barrier` is cyclic: the same
object synchronizes every level in turn.
"""

from __future__ import annotations

from repro.sim.engine import Engine, SimEvent
from repro.util.errors import SimulationError

__all__ = ["Barrier"]


class Barrier:
    """Cyclic barrier for a fixed set of ``parties`` simulated threads."""

    def __init__(self, engine: Engine, parties: int, overhead: float = 0.0) -> None:
        if parties < 1:
            raise SimulationError(f"barrier needs >= 1 party, got {parties}")
        self.engine = engine
        self.parties = parties
        self.overhead = overhead
        self._waiting: list[SimEvent] = []
        self.generation = 0

    @property
    def arrived(self) -> int:
        """Parties already waiting at the current generation."""
        return len(self._waiting)

    def withdraw(self, n: int = 1) -> None:
        """Permanently remove ``n`` parties (a rank died).

        Takes effect immediately: if everyone still alive is already
        waiting, the current generation releases now instead of hanging
        on arrivals that can never come.
        """
        if n < 0 or n >= self.parties:
            raise SimulationError(
                f"cannot withdraw {n} of {self.parties} barrier parties"
            )
        self.parties -= n
        if self._waiting and len(self._waiting) >= self.parties:
            waiting, self._waiting = self._waiting, []
            self.generation += 1
            for waiter in waiting:
                waiter.succeed(self.generation)

    def arrive(self):
        """Generator helper: block until all parties have arrived.

        Each arrival pays the per-rank barrier overhead first (the
        GA_Sync software cost), so a barrier is never free even when
        everyone shows up simultaneously.
        """
        if self.overhead > 0:
            yield self.engine.timeout(self.overhead)
        event = self.engine.event()
        self._waiting.append(event)
        if len(self._waiting) == self.parties:
            waiting, self._waiting = self._waiting, []
            self.generation += 1
            for waiter in waiting:
                waiter.succeed(self.generation)
        elif len(self._waiting) > self.parties:  # pragma: no cover - defensive
            raise SimulationError("more arrivals than barrier parties")
        generation = yield event
        return generation
