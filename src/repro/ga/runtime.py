"""The Global Arrays runtime: per-node handlers and one-sided ops.

Every node runs a single *GA handler* process (the stand-in for the
library's progress engine). One-sided ``get``/``acc`` requests travel
over the simulated network to the owner's handler, which serializes
them FIFO, pays a per-request software overhead, moves the touched
bytes through the owner's shared memory bandwidth, and replies. The
caller blocks until all segment replies (a range may straddle owners)
have arrived — the semantics ``GET_HASH_BLOCK``/``ADD_HASH_BLOCK``
expose to the TCE code.

This is deliberately the *contended* path: when 32·c legacy ranks all
issue blocking gets, the FIFO handlers and the shared bandwidth produce
the saturation the paper's Figure 9 shows for the original code.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.ga.array import GlobalArray
from repro.ga.cache import RemoteBlockCache, RemoteCachePolicy
from repro.ga.distribution import Distribution, Segment
from repro.sim.cluster import Cluster, DataMode
from repro.sim.engine import SimEvent, all_of
from repro.sim.network import BatchPayload, CoalescePolicy, Coalescer
from repro.sim.timeline import KIND_COMM
from repro.util.errors import GlobalArrayError

__all__ = ["GlobalArrays"]

#: Size of a request header / ack message on the wire.
_CTRL_BYTES = 64.0


class _Request:
    """One segment-granular request sitting in a handler inbox."""

    __slots__ = ("kind", "array", "segment", "data", "requester", "reply_event", "tag")

    def __init__(
        self,
        kind: str,
        array: GlobalArray,
        segment: Segment,
        data: Optional[np.ndarray],
        requester: int,
        reply_event: SimEvent,
        tag=None,
    ) -> None:
        self.kind = kind
        self.array = array
        self.segment = segment
        self.data = data
        self.requester = requester
        self.reply_event = reply_event
        self.tag = tag


class GlobalArrays:
    """Factory for distributed arrays plus the one-sided operation API.

    All data-moving methods are *generator helpers*: call them from a
    simulated process with ``yield from``. They return the fetched NumPy
    data (REAL mode) or ``None`` (SYNTH mode).
    """

    INBOX = "ga.req"

    def __init__(
        self,
        cluster: Cluster,
        coalescing: Optional[CoalescePolicy] = None,
        remote_cache: Optional[RemoteCachePolicy] = None,
    ) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.machine = cluster.machine
        self.metrics = cluster.metrics
        self._handles = itertools.count(1)
        self._arrays: dict[str, GlobalArray] = {}
        for node in cluster.nodes:
            self.engine.process(self._handler(node), name=f"ga.handler{node.node_id}")
        # comm-optimization knobs (both default off — the knobs-off
        # paths below are byte-identical to a build without them)
        self.coalescing = coalescing
        self.remote_cache = remote_cache
        self._coalescers: Optional[list[Coalescer]] = None
        if coalescing is not None:
            self._coalescers = [
                Coalescer(
                    cluster.network,
                    node.node_id,
                    coalescing,
                    inbox=self.INBOX,
                    batch_tag="get.batch",
                )
                for node in cluster.nodes
            ]
        self._caches: Optional[list[RemoteBlockCache]] = None
        if remote_cache is not None:
            self._caches = [RemoteBlockCache(remote_cache) for _ in cluster.nodes]
        # statistics
        self.gets = 0
        self.accs = 0
        self.bytes_fetched = 0.0
        self.bytes_accumulated = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_bytes_saved = 0.0

    @property
    def coalesced_batches(self) -> int:
        """Wire messages that carried more than one GA request."""
        if self._coalescers is None:
            return 0
        return sum(c.batches for c in self._coalescers)

    @property
    def messages_saved(self) -> int:
        """Request messages that merged into another wire message."""
        if self._coalescers is None:
            return 0
        return sum(c.messages_saved for c in self._coalescers)

    # ------------------------------------------------------------------
    # array lifecycle
    # ------------------------------------------------------------------
    def create(self, name: str, total: int) -> GlobalArray:
        """Collectively create a distributed array of ``total`` float64s."""
        if name in self._arrays:
            raise GlobalArrayError(f"array name {name!r} already in use")
        array = GlobalArray(
            handle=next(self._handles),
            name=name,
            total=total,
            distribution=Distribution(total, self.cluster.n_nodes),
            data_mode=self.cluster.data_mode,
        )
        if self._caches is not None:
            # cache validation needs the array's write-epoch log
            array.track_writes = True
        self._arrays[name] = array
        return array

    def lookup(self, name: str) -> GlobalArray:
        """Find an existing array by name."""
        try:
            return self._arrays[name]
        except KeyError:
            raise GlobalArrayError(f"no array named {name!r}") from None

    # ------------------------------------------------------------------
    # one-sided operations (generator helpers)
    # ------------------------------------------------------------------
    def fetch(self, requester: int, array: GlobalArray, lo: int, hi: int):
        """Blocking one-sided get of ``[lo, hi)``; returns the data.

        Issues one request per owner segment, waits for every reply,
        then pays the requester-side cost of landing the bytes in local
        memory. Returns a contiguous float64 array (REAL) or None.

        With the remote-block cache enabled a range that touches remote
        memory may be served from the requester's cache (no wire
        traffic, only the local landing cost); with coalescing enabled
        the per-segment requests leave through the node's aggregation
        window instead of as individual sends.
        """
        array._check_live()
        segments = array.distribution.segments(lo, hi)
        self.gets += 1
        nbytes = array.nbytes(lo, hi)
        cache = None
        epoch = 0
        if self._caches is not None and any(s.node != requester for s in segments):
            # purely-local ranges skip the cache: they never hit the
            # wire, so there is nothing to save
            cache = self._caches[requester]
            epoch = array.write_epoch
            hit, data = cache.lookup(array, lo, hi)
            if hit:
                self.cache_hits += 1
                self.cache_bytes_saved += nbytes
                if self.metrics.enabled:
                    self.metrics.inc("ga.gets")
                    self.metrics.inc("ga.cache.hits")
                    self.metrics.inc("ga.cache.bytes_saved", nbytes)
                # same flush point a real owner-side read would have
                array.flush_accumulations()
                if nbytes > 0:
                    yield self.cluster.nodes[requester].membw.transfer(nbytes)
                return None if data is None else data.copy()
            self.cache_misses += 1
            if self.metrics.enabled:
                self.metrics.inc("ga.cache.misses")
        self.bytes_fetched += nbytes
        if self.metrics.enabled:
            self.metrics.inc("ga.gets")
            self.metrics.inc("ga.get_bytes", nbytes)
            self.metrics.observe("ga.request_bytes", nbytes, op="get")
        coalescer = (
            self._coalescers[requester] if self._coalescers is not None else None
        )
        events = []
        for segment in segments:
            event = self.engine.event()
            request = _Request("get", array, segment, None, requester, event)
            if coalescer is not None:
                coalescer.submit(
                    segment.node, _CTRL_BYTES, request, tag=f"get:{array.name}"
                )
            else:
                self.cluster.network.send(
                    requester,
                    segment.node,
                    _CTRL_BYTES,
                    request,
                    inbox=self.INBOX,
                    tag=f"get:{array.name}",
                )
            events.append(event)
        replies = yield all_of(self.engine, events)
        if nbytes > 0:
            # land the received bytes in the requester's memory
            yield self.cluster.nodes[requester].membw.transfer(nbytes)
        if self.cluster.data_mode is not DataMode.REAL:
            if cache is not None:
                cache.insert(array, lo, hi, epoch, None)
            return None
        out = np.empty(hi - lo)
        for segment, chunk in zip(segments, replies):
            out[segment.lo - lo : segment.hi - lo] = chunk
        if cache is not None:
            cache.insert(array, lo, hi, epoch, out.copy())
        return out

    def accumulate(
        self,
        requester: int,
        array: GlobalArray,
        lo: int,
        hi: int,
        data: Optional[np.ndarray],
        tag=None,
    ):
        """Blocking one-sided accumulate: ``array[lo:hi] += data``.

        Atomic per element — the owner's FIFO handler serializes
        concurrent accumulates into the same node. Waits for all acks.
        ``tag`` (an identity for this logical contribution) is forwarded
        to the array for ordered-accumulation mode.
        """
        array._check_live()
        if self.cluster.data_mode is DataMode.REAL:
            if data is None:
                raise GlobalArrayError("REAL-mode accumulate requires data")
            if data.shape != (hi - lo,):
                raise GlobalArrayError(
                    f"accumulate data shape {data.shape} != ({hi - lo},)"
                )
        segments = array.distribution.segments(lo, hi)
        self.accs += 1
        nbytes = array.nbytes(lo, hi)
        self.bytes_accumulated += nbytes
        if self.metrics.enabled:
            self.metrics.inc("ga.accs")
            self.metrics.inc("ga.acc_bytes", nbytes)
            self.metrics.observe("ga.request_bytes", nbytes, op="acc")
        if nbytes > 0:
            # read the outgoing buffer from requester memory
            yield self.cluster.nodes[requester].membw.transfer(nbytes)
        events = []
        for segment in segments:
            event = self.engine.event()
            chunk = None
            if data is not None:
                chunk = data[segment.lo - lo : segment.hi - lo]
            request = _Request("acc", array, segment, chunk, requester, event, tag=tag)
            self.cluster.network.send(
                requester,
                segment.node,
                _CTRL_BYTES + 8.0 * segment.size,
                request,
                inbox=self.INBOX,
                tag=f"acc:{array.name}",
            )
            events.append(event)
        yield all_of(self.engine, events)

    # ------------------------------------------------------------------
    # the per-node handler process
    # ------------------------------------------------------------------
    def _handler(self, node):
        inbox = node.inbox(self.INBOX)
        # one reusable timeline channel per handler (serial FIFO server,
        # at most one service timeout outstanding)
        timer = self.engine.timeline.timer(KIND_COMM, node=node.node_id)
        while True:
            message = yield inbox.get()
            if isinstance(message.payload, BatchPayload):
                # a coalesced request batch: serve each segment request
                # FIFO (full per-request overhead and memory traffic —
                # coalescing saves wire messages, not owner work), then
                # answer with ONE combined reply message
                replies: list[tuple[SimEvent, object]] = []
                reply_bytes = 0.0
                for request in message.payload:
                    seg = request.segment
                    seg_bytes = 8.0 * seg.size
                    yield timer.after(
                        self.machine.ga_request_overhead_s
                        + seg_bytes / self.machine.ga_service_bytes_per_s
                    )
                    if seg_bytes > 0:
                        yield node.membw.transfer(seg_bytes)
                    replies.append(
                        (request.reply_event, request.array.read_segment(seg))
                    )
                    reply_bytes += seg_bytes
                self.cluster.network.send(
                    node.node_id,
                    message.src,
                    reply_bytes,
                    replies,
                    tag="get.reply.batch",
                    on_deliver=lambda msg: [
                        ev.succeed(chunk) for ev, chunk in msg.payload
                    ],
                )
                continue
            request: _Request = message.payload
            segment = request.segment
            seg_bytes = 8.0 * segment.size
            # FIFO service: fixed software overhead plus the effective
            # one-sided serving rate of the GA path (well below NIC line
            # rate — see MachineModel.ga_service_bytes_per_s). This
            # single server per node is the contention point that caps
            # the original code's scaling in the Figure 9 reproduction.
            yield timer.after(
                self.machine.ga_request_overhead_s
                + seg_bytes / self.machine.ga_service_bytes_per_s
            )
            if request.kind == "get":
                if seg_bytes > 0:
                    yield node.membw.transfer(seg_bytes)  # read from owner memory
                payload = request.array.read_segment(segment)
                self.cluster.network.send(
                    node.node_id,
                    request.requester,
                    seg_bytes,
                    payload,
                    tag=f"get.reply:{request.array.name}",
                    on_deliver=lambda msg, ev=request.reply_event: ev.succeed(
                        msg.payload
                    ),
                )
            elif request.kind == "acc":
                if seg_bytes > 0:
                    # read target, read incoming, write target
                    yield node.membw.transfer(3.0 * seg_bytes)
                request.array.accumulate_segment(segment, request.data, tag=request.tag)
                self.cluster.network.send(
                    node.node_id,
                    request.requester,
                    _CTRL_BYTES,
                    None,
                    tag=f"acc.ack:{request.array.name}",
                    on_deliver=lambda msg, ev=request.reply_event: ev.succeed(None),
                )
            else:  # pragma: no cover - defensive
                raise GlobalArrayError(f"unknown GA request kind {request.kind!r}")
