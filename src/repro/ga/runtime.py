"""The Global Arrays runtime: per-node handlers and one-sided ops.

Every node runs a single *GA handler* process (the stand-in for the
library's progress engine). One-sided ``get``/``acc`` requests travel
over the simulated network to the owner's handler, which serializes
them FIFO, pays a per-request software overhead, moves the touched
bytes through the owner's shared memory bandwidth, and replies. The
caller blocks until all segment replies (a range may straddle owners)
have arrived — the semantics ``GET_HASH_BLOCK``/``ADD_HASH_BLOCK``
expose to the TCE code.

This is deliberately the *contended* path: when 32·c legacy ranks all
issue blocking gets, the FIFO handlers and the shared bandwidth produce
the saturation the paper's Figure 9 shows for the original code.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.ga.array import GlobalArray
from repro.ga.distribution import Distribution, Segment
from repro.sim.cluster import Cluster, DataMode
from repro.sim.engine import SimEvent, all_of
from repro.sim.timeline import KIND_COMM
from repro.util.errors import GlobalArrayError

__all__ = ["GlobalArrays"]

#: Size of a request header / ack message on the wire.
_CTRL_BYTES = 64.0


class _Request:
    """One segment-granular request sitting in a handler inbox."""

    __slots__ = ("kind", "array", "segment", "data", "requester", "reply_event", "tag")

    def __init__(
        self,
        kind: str,
        array: GlobalArray,
        segment: Segment,
        data: Optional[np.ndarray],
        requester: int,
        reply_event: SimEvent,
        tag=None,
    ) -> None:
        self.kind = kind
        self.array = array
        self.segment = segment
        self.data = data
        self.requester = requester
        self.reply_event = reply_event
        self.tag = tag


class GlobalArrays:
    """Factory for distributed arrays plus the one-sided operation API.

    All data-moving methods are *generator helpers*: call them from a
    simulated process with ``yield from``. They return the fetched NumPy
    data (REAL mode) or ``None`` (SYNTH mode).
    """

    INBOX = "ga.req"

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.machine = cluster.machine
        self.metrics = cluster.metrics
        self._handles = itertools.count(1)
        self._arrays: dict[str, GlobalArray] = {}
        for node in cluster.nodes:
            self.engine.process(self._handler(node), name=f"ga.handler{node.node_id}")
        # statistics
        self.gets = 0
        self.accs = 0
        self.bytes_fetched = 0.0
        self.bytes_accumulated = 0.0

    # ------------------------------------------------------------------
    # array lifecycle
    # ------------------------------------------------------------------
    def create(self, name: str, total: int) -> GlobalArray:
        """Collectively create a distributed array of ``total`` float64s."""
        if name in self._arrays:
            raise GlobalArrayError(f"array name {name!r} already in use")
        array = GlobalArray(
            handle=next(self._handles),
            name=name,
            total=total,
            distribution=Distribution(total, self.cluster.n_nodes),
            data_mode=self.cluster.data_mode,
        )
        self._arrays[name] = array
        return array

    def lookup(self, name: str) -> GlobalArray:
        """Find an existing array by name."""
        try:
            return self._arrays[name]
        except KeyError:
            raise GlobalArrayError(f"no array named {name!r}") from None

    # ------------------------------------------------------------------
    # one-sided operations (generator helpers)
    # ------------------------------------------------------------------
    def fetch(self, requester: int, array: GlobalArray, lo: int, hi: int):
        """Blocking one-sided get of ``[lo, hi)``; returns the data.

        Issues one request per owner segment, waits for every reply,
        then pays the requester-side cost of landing the bytes in local
        memory. Returns a contiguous float64 array (REAL) or None.
        """
        array._check_live()
        segments = array.distribution.segments(lo, hi)
        self.gets += 1
        nbytes = array.nbytes(lo, hi)
        self.bytes_fetched += nbytes
        if self.metrics.enabled:
            self.metrics.inc("ga.gets")
            self.metrics.inc("ga.get_bytes", nbytes)
            self.metrics.observe("ga.request_bytes", nbytes, op="get")
        events = []
        for segment in segments:
            event = self.engine.event()
            request = _Request("get", array, segment, None, requester, event)
            self.cluster.network.send(
                requester,
                segment.node,
                _CTRL_BYTES,
                request,
                inbox=self.INBOX,
                tag=f"get:{array.name}",
            )
            events.append(event)
        replies = yield all_of(self.engine, events)
        if nbytes > 0:
            # land the received bytes in the requester's memory
            yield self.cluster.nodes[requester].membw.transfer(nbytes)
        if self.cluster.data_mode is not DataMode.REAL:
            return None
        out = np.empty(hi - lo)
        for segment, chunk in zip(segments, replies):
            out[segment.lo - lo : segment.hi - lo] = chunk
        return out

    def accumulate(
        self,
        requester: int,
        array: GlobalArray,
        lo: int,
        hi: int,
        data: Optional[np.ndarray],
        tag=None,
    ):
        """Blocking one-sided accumulate: ``array[lo:hi] += data``.

        Atomic per element — the owner's FIFO handler serializes
        concurrent accumulates into the same node. Waits for all acks.
        ``tag`` (an identity for this logical contribution) is forwarded
        to the array for ordered-accumulation mode.
        """
        array._check_live()
        if self.cluster.data_mode is DataMode.REAL:
            if data is None:
                raise GlobalArrayError("REAL-mode accumulate requires data")
            if data.shape != (hi - lo,):
                raise GlobalArrayError(
                    f"accumulate data shape {data.shape} != ({hi - lo},)"
                )
        segments = array.distribution.segments(lo, hi)
        self.accs += 1
        nbytes = array.nbytes(lo, hi)
        self.bytes_accumulated += nbytes
        if self.metrics.enabled:
            self.metrics.inc("ga.accs")
            self.metrics.inc("ga.acc_bytes", nbytes)
            self.metrics.observe("ga.request_bytes", nbytes, op="acc")
        if nbytes > 0:
            # read the outgoing buffer from requester memory
            yield self.cluster.nodes[requester].membw.transfer(nbytes)
        events = []
        for segment in segments:
            event = self.engine.event()
            chunk = None
            if data is not None:
                chunk = data[segment.lo - lo : segment.hi - lo]
            request = _Request("acc", array, segment, chunk, requester, event, tag=tag)
            self.cluster.network.send(
                requester,
                segment.node,
                _CTRL_BYTES + 8.0 * segment.size,
                request,
                inbox=self.INBOX,
                tag=f"acc:{array.name}",
            )
            events.append(event)
        yield all_of(self.engine, events)

    # ------------------------------------------------------------------
    # the per-node handler process
    # ------------------------------------------------------------------
    def _handler(self, node):
        inbox = node.inbox(self.INBOX)
        # one reusable timeline channel per handler (serial FIFO server,
        # at most one service timeout outstanding)
        timer = self.engine.timeline.timer(KIND_COMM, node=node.node_id)
        while True:
            message = yield inbox.get()
            request: _Request = message.payload
            segment = request.segment
            seg_bytes = 8.0 * segment.size
            # FIFO service: fixed software overhead plus the effective
            # one-sided serving rate of the GA path (well below NIC line
            # rate — see MachineModel.ga_service_bytes_per_s). This
            # single server per node is the contention point that caps
            # the original code's scaling in the Figure 9 reproduction.
            yield timer.after(
                self.machine.ga_request_overhead_s
                + seg_bytes / self.machine.ga_service_bytes_per_s
            )
            if request.kind == "get":
                if seg_bytes > 0:
                    yield node.membw.transfer(seg_bytes)  # read from owner memory
                payload = request.array.read_segment(segment)
                self.cluster.network.send(
                    node.node_id,
                    request.requester,
                    seg_bytes,
                    payload,
                    tag=f"get.reply:{request.array.name}",
                    on_deliver=lambda msg, ev=request.reply_event: ev.succeed(
                        msg.payload
                    ),
                )
            elif request.kind == "acc":
                if seg_bytes > 0:
                    # read target, read incoming, write target
                    yield node.membw.transfer(3.0 * seg_bytes)
                request.array.accumulate_segment(segment, request.data, tag=request.tag)
                self.cluster.network.send(
                    node.node_id,
                    request.requester,
                    _CTRL_BYTES,
                    None,
                    tag=f"acc.ack:{request.array.name}",
                    on_deliver=lambda msg, ev=request.reply_event: ev.succeed(None),
                )
            else:  # pragma: no cover - defensive
                raise GlobalArrayError(f"unknown GA request kind {request.kind!r}")
