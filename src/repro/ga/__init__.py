"""Simulated Global Arrays (GA) toolkit.

NWChem's TCE-generated Coupled Cluster code is written against the
Global Arrays "shared-memory interface for distributed-memory
computers". This package reproduces the parts the paper exercises:

- element-contiguous **distribution** of a flat array across node
  memories (:mod:`repro.ga.distribution`), including the segment-owner
  queries the PaRSEC inspection phase performs (``ga_distribution()``,
  ``ga_access()``, ``find_last_segment_owner``);
- **one-sided get/accumulate** served by a per-node handler process
  (:mod:`repro.ga.handler`) — remote requests pay NIC transport, a
  service-time overhead, and the owner's memory bandwidth, which is
  where the original code's GA contention comes from;
- ``GET_HASH_BLOCK``/``ADD_HASH_BLOCK`` wrappers that trace themselves
  the way the paper's Figure 12/13 traces show them
  (:mod:`repro.ga.hash_block`);
- the **NXTVAL** shared-counter work-stealing primitive
  (:mod:`repro.ga.nxtval`) whose single-server contention the paper
  blames for the original code's scaling limits;
- **barriers** for the seven-level synchronization of the legacy code
  (:mod:`repro.ga.sync`).

Real NumPy data flows through all of it when the cluster runs in
``DataMode.REAL``; in ``DataMode.SYNTH`` the same messages and costs
occur but payloads are shape-only.
"""

from repro.ga.distribution import Distribution, Segment
from repro.ga.array import GlobalArray
from repro.ga.cache import RemoteBlockCache, RemoteCachePolicy
from repro.ga.runtime import GlobalArrays
from repro.ga.nxtval import NxtvalServer
from repro.ga.sync import Barrier
from repro.ga.hash_block import get_hash_block, add_hash_block

__all__ = [
    "Distribution",
    "Segment",
    "GlobalArray",
    "GlobalArrays",
    "NxtvalServer",
    "Barrier",
    "RemoteBlockCache",
    "RemoteCachePolicy",
    "get_hash_block",
    "add_hash_block",
]
