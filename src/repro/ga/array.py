"""The GlobalArray object: distributed storage with local-access views.

In ``DataMode.REAL`` each node's segment is a real NumPy array living in
that node's (simulated) memory; ``ga_access`` hands out views exactly
like the real library does — local data only. In ``DataMode.SYNTH`` no
storage is allocated and data-returning calls yield ``None``; every
simulated cost stays identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ga.distribution import Distribution, Segment
from repro.sim.cluster import DataMode
from repro.util.errors import GlobalArrayError

__all__ = ["GlobalArray"]

#: Write-log compaction threshold: past this many entries the oldest
#: half is dropped and the base epoch advances, so cache validation
#: treats anything older than the surviving history as stale.
_WRITE_LOG_MAX = 1024


class GlobalArray:
    """A one-dimensional distributed array of float64.

    Created through :meth:`repro.ga.runtime.GlobalArrays.create`; do not
    instantiate directly. Element ranges use half-open ``[lo, hi)``
    indexing throughout.
    """

    def __init__(
        self,
        handle: int,
        name: str,
        total: int,
        distribution: Distribution,
        data_mode: DataMode,
    ) -> None:
        self.handle = handle
        self.name = name
        self.total = total
        self.distribution = distribution
        self.data_mode = data_mode
        self._destroyed = False
        # Ordered-accumulation mode (see enable_ordered_accumulation):
        # tagged contributions are logged here keyed by
        # (repr(tag), lo, hi) and applied in sorted-key order at the
        # next read. The dict keying also makes re-delivery of the same
        # contribution (task re-execution after a fault) idempotent.
        self._ordered = False
        self._pending: dict = {}
        # Write-epoch log (see record_write): disabled unless a
        # remote-block cache is attached to the owning runtime, so the
        # default path never pays the bookkeeping.
        self.track_writes = False
        self._writes: list[tuple[int, int]] = []
        self._writes_base = 0
        if data_mode is DataMode.REAL:
            self._segments: Optional[list[np.ndarray]] = [
                np.zeros(distribution.node_range(node)[1] - distribution.node_range(node)[0])
                for node in range(distribution.n_nodes)
            ]
        else:
            self._segments = None

    # ------------------------------------------------------------------
    # guards
    # ------------------------------------------------------------------
    def _check_live(self) -> None:
        if self._destroyed:
            raise GlobalArrayError(f"array {self.name!r} has been destroyed")

    def destroy(self) -> None:
        """Release the array; any further access is an error."""
        self._destroyed = True
        self._segments = None

    @property
    def holds_data(self) -> bool:
        """True when real NumPy storage backs the array."""
        return self._segments is not None

    def nbytes(self, lo: int, hi: int) -> float:
        """Wire/memory size of the ``[lo, hi)`` range (float64 elements)."""
        return 8.0 * (hi - lo)

    # ------------------------------------------------------------------
    # write epochs (remote-block cache invalidation)
    # ------------------------------------------------------------------
    @property
    def write_epoch(self) -> int:
        """Monotonic count of recorded writes (never resets)."""
        return self._writes_base + len(self._writes)

    def record_write(self, lo: int, hi: int) -> None:
        """Log one write to ``[lo, hi)``; no-op unless ``track_writes``.

        Every mutator calls this at its *logical* write point — message
        delivery for accumulates, call time for scatter/zero — even in
        SYNTH mode and even when ordered accumulation defers the
        arithmetic, because a cached remote block goes stale the moment
        the contribution is owed, not when it is applied.
        """
        if not self.track_writes:
            return
        self._writes.append((lo, hi))
        if len(self._writes) > _WRITE_LOG_MAX:
            drop = len(self._writes) // 2
            del self._writes[:drop]
            self._writes_base += drop

    def modified_since(self, epoch: int, lo: int, hi: int) -> bool:
        """Did any recorded write overlap ``[lo, hi)`` after ``epoch``?

        Epochs older than the surviving (compacted) history count as
        modified — the conservative answer keeps stale reads impossible
        by construction.
        """
        if epoch < self._writes_base:
            return True
        for wlo, whi in self._writes[epoch - self._writes_base :]:
            if wlo < hi and lo < whi:
                return True
        return False

    # ------------------------------------------------------------------
    # local access (what ga_access() allows)
    # ------------------------------------------------------------------
    def ga_access(self, node: int, lo: int, hi: int) -> np.ndarray:
        """View of ``[lo, hi)``, which must lie entirely on ``node``.

        Mirrors ``ga_access()``: only locally-resident data may be
        touched this way; crossing a node boundary is an error.
        """
        self._check_live()
        if self._segments is None:
            raise GlobalArrayError("ga_access() is unavailable in SYNTH data mode")
        node_lo, node_hi = self.distribution.node_range(node)
        if not (node_lo <= lo <= hi <= node_hi):
            raise GlobalArrayError(
                f"ga_access on node {node}: [{lo}, {hi}) not within local "
                f"range [{node_lo}, {node_hi})"
            )
        return self._segments[node][lo - node_lo : hi - node_lo]

    def read_segment(self, segment: Segment) -> Optional[np.ndarray]:
        """Copy of one owner segment's data (handler-side helper)."""
        self._check_live()
        if self._segments is None:
            return None
        self.flush_accumulations()
        return self.ga_access(segment.node, segment.lo, segment.hi).copy()

    def accumulate_segment(
        self, segment: Segment, data: Optional[np.ndarray], tag=None
    ) -> None:
        """In-place add of ``data`` into one owner segment (handler-side).

        With ordered accumulation enabled and a ``tag`` given, the
        contribution is logged instead of applied; see
        :meth:`enable_ordered_accumulation`.
        """
        self._check_live()
        self.record_write(segment.lo, segment.hi)
        if self._segments is None:
            return
        if data is None:
            raise GlobalArrayError("REAL-mode accumulate received no data")
        if self._ordered and tag is not None:
            self._log(tag, segment.lo, segment.hi, data)
            return
        view = self.ga_access(segment.node, segment.lo, segment.hi)
        view += data

    # ------------------------------------------------------------------
    # direct range access (PaRSEC-side: data already local by placement)
    # ------------------------------------------------------------------
    def read_range_direct(self, lo: int, hi: int) -> Optional[np.ndarray]:
        """Copy of ``[lo, hi)`` regardless of owner boundaries, uncosted.

        Used by PaRSEC READ tasks, which are *placed on* the owner node
        (``find_last_segment_owner``) and touch the data through
        ``ga_access``-style local pointers; the simulated memory cost is
        charged by the task body, not here. Returns None in SYNTH mode.
        """
        self._check_live()
        if self._segments is None:
            return None
        if not (0 <= lo <= hi <= self.total):
            raise GlobalArrayError(f"range [{lo}, {hi}) out of bounds {self.total}")
        self.flush_accumulations()
        out = np.empty(hi - lo)
        for segment in self.distribution.segments(lo, hi):
            node_lo, _ = self.distribution.node_range(segment.node)
            local = self._segments[segment.node]
            out[segment.lo - lo : segment.hi - lo] = local[
                segment.lo - node_lo : segment.hi - node_lo
            ]
        return out

    def accumulate_range_direct(
        self, lo: int, hi: int, data: Optional[np.ndarray], tag=None
    ) -> None:
        """In-place ``array[lo:hi] += data`` across owners, uncosted.

        Used by PaRSEC WRITE_C task bodies, which run on the owner node
        under the node's write mutex; the memory traffic and mutex costs
        are charged by the task body. No-op in SYNTH mode. With ordered
        accumulation enabled and a ``tag`` given, the contribution is
        logged instead of applied (see
        :meth:`enable_ordered_accumulation`).
        """
        self._check_live()
        self.record_write(lo, hi)
        if self._segments is None:
            return
        if data is None:
            raise GlobalArrayError("REAL-mode accumulate received no data")
        if not (0 <= lo <= hi <= self.total):
            raise GlobalArrayError(f"range [{lo}, {hi}) out of bounds {self.total}")
        if data.shape != (hi - lo,):
            raise GlobalArrayError(f"data shape {data.shape} != ({hi - lo},)")
        if self._ordered and tag is not None:
            self._log(tag, lo, hi, data)
            return
        self._apply_range(lo, hi, data)

    def _apply_range(self, lo: int, hi: int, data: np.ndarray) -> None:
        """Raw ``+=`` of a range across owner segments."""
        for segment in self.distribution.segments(lo, hi):
            node_lo, _ = self.distribution.node_range(segment.node)
            local = self._segments[segment.node]
            local[segment.lo - node_lo : segment.hi - node_lo] += data[
                segment.lo - lo : segment.hi - lo
            ]

    # ------------------------------------------------------------------
    # ordered accumulation (bitwise-reproducible mode)
    # ------------------------------------------------------------------
    def enable_ordered_accumulation(self) -> None:
        """Make tagged accumulates apply in a canonical order.

        Floating-point addition does not commute bitwise, so when
        overlapping accumulates race (which faults and scheduling both
        reorder), the result differs in the last bits from run to run.
        In ordered mode every *tagged* accumulate is logged under
        ``(repr(tag), lo, hi)`` and the log is applied in sorted-key
        order the next time the array is read — the same total order in
        every run, independent of delivery order. The dict log also
        deduplicates: re-executing a recovered task re-logs the same key
        rather than double-adding, giving exactly-once arithmetic.

        Untagged accumulates still apply immediately, so callers that
        never pass tags are unaffected. Timing is unchanged either way —
        these methods were never cost-modeled.
        """
        self._ordered = True

    def _log(self, tag, lo: int, hi: int, data: np.ndarray) -> None:
        self._pending[(repr(tag), lo, hi)] = np.array(data, copy=True)

    def flush_accumulations(self) -> None:
        """Apply the ordered-accumulation log in canonical key order."""
        if not self._pending:
            return
        for key in sorted(self._pending):
            _, lo, hi = key
            self._apply_range(lo, hi, self._pending[key])
        self._pending.clear()

    # ------------------------------------------------------------------
    # whole-array conveniences (test/setup only — not cost-modeled)
    # ------------------------------------------------------------------
    def gather(self) -> np.ndarray:
        """Copy of the whole array contents (testing convenience)."""
        self._check_live()
        if self._segments is None:
            raise GlobalArrayError("gather() is unavailable in SYNTH data mode")
        self.flush_accumulations()
        return np.concatenate([seg for seg in self._segments]) if self.total else np.zeros(0)

    def scatter(self, values: np.ndarray) -> None:
        """Overwrite the whole array contents (setup convenience)."""
        self._check_live()
        self.record_write(0, self.total)
        if self._segments is None:
            return
        if values.shape != (self.total,):
            raise GlobalArrayError(
                f"scatter expects shape ({self.total},), got {values.shape}"
            )
        for node in range(self.distribution.n_nodes):
            lo, hi = self.distribution.node_range(node)
            self._segments[node][:] = values[lo:hi]

    def zero(self) -> None:
        """Reset every element to zero (setup convenience)."""
        self._check_live()
        self.record_write(0, self.total)
        if self._segments is None:
            return
        for seg in self._segments:
            seg[:] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalArray({self.name!r}, n={self.total}, mode={self.data_mode.value})"
