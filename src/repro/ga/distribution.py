"""Element-contiguous distribution of a flat global array across nodes.

Global Arrays distributes a one-dimensional array as contiguous element
ranges, one per node (nodes beyond the array length own empty ranges).
A logical *block* (a tensor tile) therefore may straddle node
boundaries — which is exactly why the paper's Figure 8 needs multiple
``WRITE_C(i)`` task instances per chain output, one per owner node, and
why the PTG of Figure 1 calls ``find_last_segment_owner`` to pick the
node a READ task runs on.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.util.errors import GlobalArrayError

__all__ = ["Segment", "Distribution"]


@dataclass(frozen=True)
class Segment:
    """A maximal sub-range ``[lo, hi)`` owned by one node."""

    node: int
    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise GlobalArrayError(f"inverted segment [{self.lo}, {self.hi})")


class Distribution:
    """Partition of ``[0, total)`` into contiguous per-node ranges.

    The default split gives each node ``ceil`` or ``floor`` of the even
    share, earlier nodes getting the larger pieces — the Global Arrays
    regular distribution.
    """

    def __init__(self, total: int, n_nodes: int) -> None:
        if total < 0:
            raise GlobalArrayError(f"array size must be >= 0, got {total}")
        if n_nodes < 1:
            raise GlobalArrayError(f"need >= 1 node, got {n_nodes}")
        self.total = total
        self.n_nodes = n_nodes
        base, extra = divmod(total, n_nodes)
        self._starts: list[int] = [0]
        for node in range(n_nodes):
            share = base + (1 if node < extra else 0)
            self._starts.append(self._starts[-1] + share)

    def node_range(self, node: int) -> tuple[int, int]:
        """The ``[lo, hi)`` range owned by ``node`` (may be empty)."""
        if not 0 <= node < self.n_nodes:
            raise GlobalArrayError(f"node {node} out of range 0..{self.n_nodes - 1}")
        return self._starts[node], self._starts[node + 1]

    def owner_of(self, index: int) -> int:
        """Node owning element ``index``."""
        if not 0 <= index < self.total:
            raise GlobalArrayError(f"index {index} out of array bounds {self.total}")
        return bisect.bisect_right(self._starts, index) - 1

    def segments(self, lo: int, hi: int) -> list[Segment]:
        """Split ``[lo, hi)`` into maximal per-owner segments, in order."""
        if not (0 <= lo <= hi <= self.total):
            raise GlobalArrayError(
                f"range [{lo}, {hi}) out of array bounds [0, {self.total})"
            )
        if lo == hi:
            return []
        out: list[Segment] = []
        node = self.owner_of(lo)
        cursor = lo
        while cursor < hi:
            node_hi = self._starts[node + 1]
            upper = min(hi, node_hi)
            if upper > cursor:
                out.append(Segment(node, cursor, upper))
            cursor = upper
            node += 1
        return out

    def last_segment_owner(self, lo: int, hi: int) -> int:
        """Node owning the last element of ``[lo, hi)``.

        This mirrors the ``find_last_segment_owner`` metadata lookup in
        the paper's GEMM PTG (Figure 1): when a block straddles nodes,
        its READ task is placed on the node holding the block's tail.
        """
        if hi <= lo:
            raise GlobalArrayError(f"empty range [{lo}, {hi}) has no owner")
        return self.owner_of(hi - 1)

    def distribution(self) -> list[Segment]:
        """All non-empty per-node ranges — the ``ga_distribution()`` query."""
        out = []
        for node in range(self.n_nodes):
            lo, hi = self.node_range(node)
            if hi > lo:
                out.append(Segment(node, lo, hi))
        return out
