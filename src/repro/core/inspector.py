"""The inspection phase.

Section III-B: "our modified code starts with an inspection phase.
During this phase the code computes the set of iteration vectors that
lead to task executions ... In addition, the code queries the Global
Array library to discover the physical location of the program data."

The inspector walks the control-flow slice of the subroutine (here: the
resolved chain IR, which plays the role of the sliced DO/IF nest),
evaluates the segment decomposition for the variant's chain height,
builds the binary reduction tree over segments, asks each operand
tensor's GA distribution for ``find_last_segment_owner`` (READ task
placement, Figure 1) and splits each chain's target block into
per-owner write segments (Figure 8). Chains are placed round-robin
across nodes (Section IV-D).
"""

from __future__ import annotations

from repro.core.metadata import (
    ChainMeta,
    GemmMeta,
    Metadata,
    ReduceMeta,
    SegmentMeta,
    SortMeta,
    WriteSegMeta,
)
from repro.core.variants import VariantSpec
from repro.sim.cluster import Cluster
from repro.tce.subroutine import ChainSpec, Subroutine
from repro.util.errors import ConfigurationError

__all__ = ["InspectionCache", "inspect_subroutine"]


class InspectionCache:
    """Memoized chain metadata across sweep points.

    The inspected :class:`ChainMeta` list is pure data: every field is
    derived from the chain IR, the variant's chain height, and the GA
    block distribution — and a :class:`~repro.ga.distribution.Distribution`
    is a pure function of ``(total elements, n_nodes)``. So two runs
    whose subroutines share a ``structure_token`` and whose clusters
    share a node count produce *identical* chains for the same variant
    height, regardless of cores per node. Figure 9's cores/node sweep
    re-inspects the same workload at every cell; sharing one cache
    across the sweep skips all but the first inspection per
    (workload, n_nodes, height) combination.

    The cache never holds :class:`Metadata` itself — that object carries
    live :class:`GlobalArray` references and must be rebuilt per run.

    Because the cached values are pure-data dataclasses keyed by plain
    tuples, a cache **pickles cleanly**: a parent process can
    :meth:`precompute` the entries once and ship the cache to
    process-pool workers (each worker receives its own copy), so the
    memoization survives process isolation in parallel sweeps.
    """

    def __init__(self) -> None:
        self._chains: dict[tuple, list[ChainMeta]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._chains)

    def precompute(
        self, subroutine: Subroutine, cluster: Cluster, variant: VariantSpec
    ) -> None:
        """Force the entry for (subroutine, n_nodes, variant height).

        A no-op when the entry already exists or the subroutine has no
        ``structure_token`` (then there is no safe cache identity).
        """
        if subroutine.structure_token is not None:
            self.chains_for(subroutine, cluster, variant)

    def merge(self, other: "InspectionCache") -> None:
        """Adopt every entry of ``other`` this cache does not hold yet."""
        for key, chains in other._chains.items():
            self._chains.setdefault(key, chains)

    def chains_for(
        self, subroutine: Subroutine, cluster: Cluster, variant: VariantSpec
    ) -> list[ChainMeta]:
        """The inspected chains, computed at most once per cache key."""
        token = subroutine.structure_token
        if token is None:  # hand-built subroutine: no safe identity
            self.misses += 1
            return [
                _inspect_chain(chain, cluster, variant)
                for chain in subroutine.chains
            ]
        key = (token, cluster.n_nodes, variant.segment_height)
        chains = self._chains.get(key)
        if chains is None:
            self.misses += 1
            chains = [
                _inspect_chain(chain, cluster, variant)
                for chain in subroutine.chains
            ]
            self._chains[key] = chains
        else:
            self.hits += 1
        return chains


def _build_segments(n_gemms: int, height: int | None) -> list[SegmentMeta]:
    if height is None:
        return [SegmentMeta(0, 0, n_gemms)]
    segments = []
    start = 0
    seg_id = 0
    while start < n_gemms:
        length = min(height, n_gemms - start)
        segments.append(SegmentMeta(seg_id, start, length))
        start += length
        seg_id += 1
    return segments


def _build_reduce_tree(
    n_segments: int,
) -> tuple[list[ReduceMeta], dict[tuple[str, int], int]]:
    """Pairwise binary tree over segment outputs.

    Returns the reduce steps plus the consumer map: which step consumes
    each ``('seg', i)`` / ``('red', s)`` source. The final step is the
    root (its output goes to the SORT stage).
    """
    if n_segments <= 1:
        return [], {}
    reduces: list[ReduceMeta] = []
    consumer: dict[tuple[str, int], int] = {}
    frontier: list[tuple[str, int]] = [("seg", i) for i in range(n_segments)]
    step = 0
    while len(frontier) > 1:
        next_frontier: list[tuple[str, int]] = []
        for i in range(0, len(frontier) - 1, 2):
            left, right = frontier[i], frontier[i + 1]
            reduces.append(ReduceMeta(step, left, right, is_root=False))
            consumer[left] = step
            consumer[right] = step
            next_frontier.append(("red", step))
            step += 1
        if len(frontier) % 2 == 1:
            next_frontier.append(frontier[-1])
        frontier = next_frontier
    # mark the root
    root = reduces[-1]
    reduces[-1] = ReduceMeta(root.step, root.left, root.right, is_root=True)
    return reduces, consumer


def _inspect_chain(
    chain: ChainSpec, cluster: Cluster, variant: VariantSpec
) -> ChainMeta:
    n_nodes = cluster.n_nodes
    segments = _build_segments(chain.length, variant.segment_height)
    reduces, consumer = _build_reduce_tree(len(segments))

    gemms: list[GemmMeta] = []
    for seg in segments:
        for pos_in_seg in range(seg.length):
            gemm = chain.gemms[seg.start + pos_in_seg]
            gemms.append(
                GemmMeta(
                    position=gemm.position,
                    seg_id=seg.seg_id,
                    pos_in_seg=pos_in_seg,
                    seg_len=seg.length,
                    a_lo=gemm.a.lo,
                    a_hi=gemm.a.hi,
                    a_owner=gemm.a.tensor.array.distribution.last_segment_owner(
                        gemm.a.lo, gemm.a.hi
                    ),
                    b_lo=gemm.b.lo,
                    b_hi=gemm.b.hi,
                    b_owner=gemm.b.tensor.array.distribution.last_segment_owner(
                        gemm.b.lo, gemm.b.hi
                    ),
                    m=gemm.m,
                    n=gemm.n,
                    k=gemm.k,
                    a_array=gemm.a.tensor.array.name,
                    b_array=gemm.b.tensor.array.name,
                )
            )

    sorts = [
        SortMeta(sw.sort_index, sw.guard, sw.perm, sw.sign)
        for sw in chain.sort_writes
    ]
    active = [sw for sw in chain.sort_writes if sw.guard]
    if not active:
        raise ConfigurationError(f"chain {chain.chain_id} has no active sort branch")
    # all active sorts target the same block (their permutations only
    # differ when the permuted key equals the original key)
    target_ranges = {(sw.target.lo, sw.target.hi) for sw in active}
    if len(target_ranges) != 1:
        raise ConfigurationError(
            f"chain {chain.chain_id}: active sorts target distinct blocks "
            f"{sorted(target_ranges)} — the WRITE_C organization assumes one"
        )
    target_lo, target_hi = target_ranges.pop()
    i2_array = active[0].target.tensor.array
    write_segs = [
        WriteSegMeta(index, seg.node, seg.lo, seg.hi)
        for index, seg in enumerate(i2_array.distribution.segments(target_lo, target_hi))
    ]

    return ChainMeta(
        chain_id=chain.chain_id,
        node=chain.chain_id % n_nodes,
        key=chain.key,
        tile_shape=chain.tile_shape,
        m=chain.m,
        n=chain.n,
        gemms=gemms,
        segments=segments,
        reduces=reduces,
        consumer_of=consumer,
        sorts=sorts,
        target_lo=target_lo,
        target_hi=target_hi,
        write_segs=write_segs,
        target_array=i2_array.name,
    )


def inspect_subroutine(
    subroutine: Subroutine,
    cluster: Cluster,
    variant: VariantSpec,
    cache: InspectionCache | None = None,
) -> Metadata:
    """Run the inspection phase; returns the filled metadata arrays.

    With ``cache`` given, the chain walk is skipped when an equivalent
    inspection (same workload structure, node count, and chain height)
    was already performed; the Metadata wrapper — which holds live
    array references — is still built fresh for this run's cluster.
    """
    if not subroutine.chains:
        raise ConfigurationError(f"subroutine {subroutine.name} has no chains")
    if cache is not None:
        chains = cache.chains_for(subroutine, cluster, variant)
    else:
        chains = [
            _inspect_chain(chain, cluster, variant) for chain in subroutine.chains
        ]
    first = subroutine.chains[0]
    # Live-handle map resolved fresh per run: the cached ChainMeta
    # entries carry array *names*; the task bodies look the handles up
    # here. Subroutine.inputs is the contract for which arrays chains
    # may reference (plus the output).
    arrays = {subroutine.output.array.name: subroutine.output.array}
    for tensor in subroutine.inputs:
        arrays[tensor.array.name] = tensor.array
    return Metadata(
        chains=chains,
        variant=variant,
        n_nodes=cluster.n_nodes,
        va_array=first.gemms[0].a.tensor.array,
        tb_array=first.gemms[0].b.tensor.array,
        i2_array=subroutine.output.array,
        subroutine_name=subroutine.name,
        arrays=arrays,
        level=subroutine.level,
    )
