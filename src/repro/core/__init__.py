"""The CCSD-over-PaRSEC port — the paper's primary contribution.

Layers, matching Section III-B and IV of the paper:

- :mod:`repro.core.variants` — the five algorithmic variants v1..v5 of
  Section V (chain vs. parallel GEMMs, fused vs. parallel SORT, single
  vs. parallel WRITE, priorities on/off), plus the generalized chain
  *segment height* of Section IV-A for the segmentation ablation.
- :mod:`repro.core.metadata` / :mod:`repro.core.inspector` — the
  inspection phase: a slice of the original control flow that records
  which iterations execute, chain membership and lengths, where the GA
  data physically lives (owner nodes, write segments), and the static
  round-robin chain placement of Section IV-D.
- :mod:`repro.core.ptg_build` — the PTG: READ_A/READ_B, DFILL, GEMM,
  REDUCE, SORT / SORT_I, WRITE_C / WRITE_C_I task classes with the
  dataflow of Figures 1, 2, 4-8 and the priority expression
  ``max_L1 - L1 + offset*P`` of Section IV-C.
- :mod:`repro.core.api` — the unified :func:`repro.run` facade over
  every runtime (legacy, PaRSEC v1..v5, DTD) with phase timers and
  structured run reports.
- :mod:`repro.core.executor` — :func:`run_ptg`, one Section III-B
  pipeline pass for a single subroutine on an existing cluster (the
  building block the facade sequences per level).
- :mod:`repro.core.integration` — the NWChem-level driver that swaps
  the legacy implementation for the PaRSEC one per subroutine, with
  the rest of the program oblivious (Figure 3).
"""

from repro.core.variants import (
    PAPER_VARIANTS,
    VariantSpec,
    V1,
    V2,
    V3,
    V4,
    V5,
    variant_by_name,
)
from repro.core.metadata import Metadata, ChainMeta, GemmMeta
from repro.core.inspector import InspectionCache, inspect_subroutine
from repro.core.ptg_build import build_ccsd_ptg
from repro.core.executor import CcsdRun, run_ptg
from repro.core.api import RunConfig, precompute_inspection, run
from repro.core.integration import NwchemDriver

__all__ = [
    "RunConfig",
    "run",
    "PAPER_VARIANTS",
    "VariantSpec",
    "V1",
    "V2",
    "V3",
    "V4",
    "V5",
    "variant_by_name",
    "Metadata",
    "ChainMeta",
    "GemmMeta",
    "InspectionCache",
    "inspect_subroutine",
    "precompute_inspection",
    "build_ccsd_ptg",
    "CcsdRun",
    "run_ptg",
    "NwchemDriver",
]
