"""The unified run facade: one entry point for every runtime.

``repro.run(workload, runtime=..., variant=..., config=RunConfig(...))``
executes any registered workload over the legacy coarse-grain runtime,
any of the five PaRSEC PTG variants, or the contrasted DTD model, and
returns a :class:`~repro.obs.result.RunResult` with a uniform shape:
virtual ``execution_time``, ``n_tasks``, ``recovery_counters()``, plus
— when the cluster's metrics registry is enabled — a ``metrics``
snapshot and a structured ``report``
(:class:`~repro.obs.report.RunReport`).

Workloads are addressed by registry token (``"t2_7:small"``,
``"ccsd:tiny"``, ``"rbgs:128x128"`` — see :mod:`repro.workloads`); a
bare scale name still resolves through the deprecated t2_7 shim. A
multi-level workload runs level by level with an explicit barrier in
between — the legacy application's own synchronization structure
(Section III-A) — and the facade merges the per-level results into one.

The phase timers instrument the Section III-B pipeline on the virtual
clock: *inspection* (metadata collection), *ptg_build* (symbolic graph
construction), *execution*, and *validation* (output checksum in REAL
data mode). The legacy and DTD paths have no inspector/PTG, so they
record only *execution* (and *validation*).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.inspector import InspectionCache, inspect_subroutine
from repro.core.ptg_build import build_ccsd_ptg
from repro.core.variants import V5, VariantSpec, variant_by_name
from repro.ga.cache import RemoteCachePolicy
from repro.legacy.runtime import LegacyConfig, LegacyRuntime
from repro.obs.result import RunResult
from repro.parsec.runtime import ParsecRuntime
from repro.parsec.stealing import StealPolicy
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.cost import MachineModel
from repro.sim.network import CoalescePolicy
from repro.tce.molecules import SCALE_PRESETS
from repro.tce.t2_7 import T27Workload
from repro.util.errors import ConfigurationError
from repro.workloads import build_workload as _build_registered_workload
from repro.workloads import parse_workload_token
from repro.workloads.base import Workload

__all__ = ["RunConfig", "StealPolicy", "precompute_inspection", "run"]

#: ``runtime=`` spellings accepted by :func:`run`, besides "parsec".
_VARIANT_RUNTIMES = ("v1", "v2", "v3", "v4", "v5")

#: every additive counter a multi-level PaRSEC run sums across levels
_PARSEC_SUM_FIELDS = (
    "n_tasks",
    "messages_remote",
    "bytes_remote",
    "deliveries_local",
    "task_retries",
    "retransmits",
    "tasks_recomputed",
    "tasks_reassigned",
    "nodes_crashed",
    "recovery_overhead_s",
    "steal_requests",
    "steals_granted",
    "steals_denied",
    "chains_migrated",
    "migrated_flops",
    "steal_forwarded_bytes",
)

_DTD_SUM_FIELDS = (
    "n_tasks",
    "n_edges",
    "insertion_time",
    "messages_remote",
    "bytes_remote",
)


@dataclass(frozen=True)
class RunConfig:
    """Cluster shape and execution options for :func:`run`.

    The cluster fields (``n_nodes`` .. ``gpus_per_node``) only apply
    when the workload is given as a registry token and the facade
    builds the cluster itself; a pre-built workload object brings its
    own cluster and they are ignored.
    """

    n_nodes: int = 8
    cores_per_node: int = 4
    data_mode: DataMode = DataMode.REAL
    trace: bool = False
    metrics: bool = True
    machine: Optional[MachineModel] = None
    gpus_per_node: int = 0
    seed: int = 7
    #: PaRSEC: instantiate-time dataflow validation; REAL mode adds an
    #: output-checksum validation phase for every runtime.
    validate: bool = True
    #: PaRSEC node scheduler discipline (None = priority, the default).
    policy: Optional[object] = None
    #: Legacy runtime knobs (NXTVAL vs static assignment).
    legacy: Optional[LegacyConfig] = None
    #: PaRSEC: inter-node work stealing over the static chain placement
    #: (None = disabled, the paper's static distribution).
    stealing: Optional[StealPolicy] = None
    #: Workload imbalance knob (see :class:`~repro.tce.terms.TermBuilder`):
    #: chains with ``chain_id % skew_period == 0`` repeat their GEMM list
    #: ``skew_factor`` times. Only applies when the facade builds the
    #: workload from a registry token.
    skew_factor: int = 1
    skew_period: int = 0
    #: Comm optimization: per-destination message coalescing on the NIC
    #: (GA fetch requests and PaRSEC dataflow sends). None = off — the
    #: wire behavior the golden digests pin. Only applies when the
    #: facade builds the workload from a registry token; a pre-built
    #: workload object brings its own GlobalArrays.
    coalescing: Optional[CoalescePolicy] = None
    #: Comm optimization: bounded per-node software cache of fetched
    #: remote GA blocks, invalidated by write epochs. None = off. Token
    #: path only, like ``coalescing``.
    remote_cache: Optional[RemoteCachePolicy] = None
    #: PaRSEC: share inspected chain metadata across runs of the same
    #: workload structure + node count (the fig9 cores/node sweep). The
    #: phase timer still runs; only the redundant chain walk is skipped.
    inspection_cache: Optional[InspectionCache] = field(
        default=None, repr=False, compare=False
    )


def _build_cluster(config: RunConfig) -> Cluster:
    return Cluster(
        ClusterConfig(
            n_nodes=config.n_nodes,
            cores_per_node=config.cores_per_node,
            machine=config.machine or MachineModel(),
            data_mode=config.data_mode,
            trace_enabled=config.trace,
            metrics_enabled=config.metrics,
            gpus_per_node=config.gpus_per_node,
        )
    )


def _build_workload(token: str, config: RunConfig) -> Workload:
    """Build the workload a registry token names on a fresh cluster.

    Emits a :class:`DeprecationWarning` for bare legacy scale names
    (``"small"`` instead of ``"t2_7:small"``) — the pre-SDK spelling.
    """
    bare = token.strip()
    if ":" not in bare and bare in SCALE_PRESETS:
        warnings.warn(
            f"bare scale name {bare!r} is deprecated; spell the workload "
            f"explicitly, e.g. 't2_7:{bare}'",
            DeprecationWarning,
            stacklevel=3,
        )
    cluster = _build_cluster(config)
    ga = None
    if config.coalescing is not None or config.remote_cache is not None:
        from repro.ga.runtime import GlobalArrays

        ga = GlobalArrays(
            cluster,
            coalescing=config.coalescing,
            remote_cache=config.remote_cache,
        )
    return _build_registered_workload(
        token,
        cluster,
        ga,
        seed=config.seed,
        skew_factor=config.skew_factor,
        skew_period=config.skew_period,
    )


def _workload_levels(workload) -> list:
    """The workload's barrier-separated subroutine levels."""
    levels = getattr(workload, "levels", None)
    if levels is not None:
        return list(levels())
    return [workload.subroutine]


def _charge_barrier(cluster: Cluster) -> None:
    """Advance the virtual clock by one explicit inter-level barrier."""
    cluster.engine.schedule(cluster.machine.barrier_overhead_s, lambda: None)
    cluster.run()


def _merge_level_results(results, execution_time: float, sum_fields, **extra):
    """Fold per-level results into one, summing the additive counters.

    Per-level fault counters are deltas over that level's execution, so
    summing them is exact; the last level's result supplies everything
    non-additive (variant tag, result class).
    """
    totals = {
        name: sum(getattr(result, name) for result in results)
        for name in sum_fields
    }
    return dataclasses.replace(
        results[-1], execution_time=execution_time, **totals, **extra
    )


def precompute_inspection(
    scale: str,
    n_nodes: int,
    codes: Union[list, tuple] = _VARIANT_RUNTIMES,
    seed: int = 7,
    cache: Optional[InspectionCache] = None,
    skew_factor: int = 1,
    skew_period: int = 0,
    workload: str = "t2_7",
) -> InspectionCache:
    """Fill an :class:`InspectionCache` for a sweep before it runs.

    Inspected chain metadata depends only on the workload's structure
    token, the node count, and the variant's chain height — not on
    cores/node, data mode, or the machine model. A sweep parent can
    therefore inspect once per (structure token × n_nodes × height) on
    a throwaway SYNTH cluster and ship the resulting cache to worker
    processes (it pickles cleanly), so the memoization survives process
    isolation instead of being recomputed in every worker.

    ``workload`` is a registry name or token; ``scale`` supplies its
    params when the token carries none. Multi-level workloads are
    inspected level by level. ``codes`` may mix variant names with
    non-PaRSEC runtimes (``"original"``/``"legacy"``/``"dtd"`` are
    skipped — they have no inspection phase). Returns ``cache`` (a
    fresh one when ``None``).
    """
    cache = cache if cache is not None else InspectionCache()
    variants = []
    seen_heights = set()
    for code in codes:
        name = code.lower()
        if name == "parsec":
            name = V5.name
        if name not in _VARIANT_RUNTIMES:
            continue
        variant = variant_by_name(name)
        if variant.segment_height not in seen_heights:
            seen_heights.add(variant.segment_height)
            variants.append(variant)
    if not variants:
        return cache
    config = RunConfig(
        n_nodes=n_nodes,
        cores_per_node=1,
        data_mode=DataMode.SYNTH,
        metrics=False,
        seed=seed,
        skew_factor=skew_factor,
        skew_period=skew_period,
    )
    workload_obj = _build_registered_workload(
        workload,
        _build_cluster(config),
        scale=scale,
        seed=seed,
        skew_factor=skew_factor,
        skew_period=skew_period,
    )
    for subroutine in _workload_levels(workload_obj):
        for variant in variants:
            cache.precompute(subroutine, workload_obj.cluster, variant)
    return cache


def _run_legacy(cluster, workload, levels, config: RunConfig):
    lrt = LegacyRuntime(cluster, workload.ga, config.legacy)
    if len(levels) == 1:
        return lrt.execute_subroutine(levels[0])
    return lrt.execute([list(subroutine.chains) for subroutine in levels])


def _run_dtd(cluster, levels):
    from repro.core.dtd_port import run_over_dtd

    start = cluster.engine.now
    results = []
    for index, subroutine in enumerate(levels):
        if index:
            _charge_barrier(cluster)
        results.append(run_over_dtd(cluster, subroutine))
    if len(results) == 1:
        return results[0]
    return _merge_level_results(
        results, cluster.engine.now - start, _DTD_SUM_FIELDS
    )


def _run_parsec(cluster, levels, variant: VariantSpec, config: RunConfig):
    metrics = cluster.metrics
    start = cluster.engine.now
    results = []
    for index, subroutine in enumerate(levels):
        if index:
            _charge_barrier(cluster)
        with metrics.phase("inspection"):
            metadata = inspect_subroutine(
                subroutine, cluster, variant, cache=config.inspection_cache
            )
        with metrics.phase("ptg_build"):
            ptg = build_ccsd_ptg(variant, metadata)
        prt = ParsecRuntime(
            cluster,
            policy=config.policy,
            stealing=config.stealing,
            coalescing=config.coalescing,
        )
        with metrics.phase("execution"):
            results.append(prt.execute(ptg, metadata, validate=config.validate))
    if len(results) == 1:
        result = results[0]
    else:
        per_class: dict[str, int] = {}
        for level_result in results:
            for cls, count in level_result.tasks_per_class.items():
                per_class[cls] = per_class.get(cls, 0) + count
        result = _merge_level_results(
            results,
            cluster.engine.now - start,
            _PARSEC_SUM_FIELDS,
            tasks_per_class=per_class,
        )
    result.variant = variant.name
    return result


def run(
    workload: Union[str, Workload, T27Workload] = "small",
    runtime: str = "parsec",
    variant: Union[str, VariantSpec] = V5,
    config: Optional[RunConfig] = None,
) -> RunResult:
    """Execute one workload on one runtime; the single public entry point.

    Parameters
    ----------
    workload:
        A registry token (``"t2_7:small"``, ``"ccsd:tiny"``,
        ``"rbgs:32x32"``; bare scale names still work through the
        deprecated t2_7 shim), for which a fresh cluster and workload
        are built from ``config`` — or a pre-built workload object
        (e.g. :class:`~repro.tce.t2_7.T27Workload`), which runs on its
        own cluster.
    runtime:
        ``"parsec"`` (uses ``variant``), ``"legacy"``/``"original"``,
        ``"dtd"``, or a variant name ``"v1"``..``"v5"`` as shorthand
        for PaRSEC with that variant.
    variant:
        The PTG variant for the PaRSEC path — a
        :class:`~repro.core.variants.VariantSpec` or its name.

    Unknown runtime or workload names raise
    :class:`~repro.util.errors.ConfigurationError` before any cluster
    is built (the CLI maps it to exit code 2).
    """
    config = config or RunConfig()
    name = runtime.lower()
    if name == "original":
        name = "legacy"
    if name in _VARIANT_RUNTIMES:
        variant = variant_by_name(name)
        name = "parsec"
    if name not in ("legacy", "dtd", "parsec"):
        raise ConfigurationError(
            f"unknown runtime {runtime!r}: expected 'parsec', 'legacy', "
            f"'dtd', or one of {_VARIANT_RUNTIMES}"
        )
    if isinstance(variant, str):
        variant = variant_by_name(variant)

    if isinstance(workload, str):
        _, scale = parse_workload_token(workload)
        workload = _build_workload(workload, config)
    else:
        scale = None
    cluster = workload.cluster
    metrics = cluster.metrics
    levels = _workload_levels(workload)

    if name == "legacy":
        with metrics.phase("execution"):
            result: RunResult = _run_legacy(cluster, workload, levels, config)
    elif name == "dtd":
        with metrics.phase("execution"):
            result = _run_dtd(cluster, levels)
    else:
        result = _run_parsec(cluster, levels, variant, config)

    output = getattr(workload, "output", None)
    if output is None:
        output = workload.i2
    if config.validate and metrics.enabled and cluster.data_mode is DataMode.REAL:
        with metrics.phase("validation"):
            checksum = float(output.flat_values().sum())
        metrics.gauge_set("run.output_checksum", checksum)

    result.output = output
    if metrics.enabled:
        from repro.analysis.run_report import build_run_report

        result.metrics = metrics.snapshot()
        result.report = build_run_report(
            result,
            cluster,
            workload=getattr(workload, "name", levels[0].name),
            scale=scale,
            seed=workload.seed,
        )
    return result
