"""The unified run facade: one entry point for every runtime.

``repro.run(workload, runtime=..., variant=..., config=RunConfig(...))``
executes the same workload over the legacy coarse-grain runtime, any of
the five PaRSEC PTG variants, or the contrasted DTD model, and returns
a :class:`~repro.obs.result.RunResult` with a uniform shape: virtual
``execution_time``, ``n_tasks``, ``recovery_counters()``, plus — when
the cluster's metrics registry is enabled — a ``metrics`` snapshot and
a structured ``report`` (:class:`~repro.obs.report.RunReport`).

The phase timers instrument the Section III-B pipeline on the virtual
clock: *inspection* (metadata collection), *ptg_build* (symbolic graph
construction), *execution*, and *validation* (output checksum in REAL
data mode). The legacy and DTD paths have no inspector/PTG, so they
record only *execution* (and *validation*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.inspector import InspectionCache, inspect_subroutine
from repro.core.ptg_build import build_ccsd_ptg
from repro.core.variants import V5, VariantSpec, variant_by_name
from repro.ga.runtime import GlobalArrays
from repro.legacy.runtime import LegacyConfig, LegacyRuntime
from repro.obs.result import RunResult
from repro.parsec.runtime import ParsecRuntime
from repro.parsec.stealing import StealPolicy
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.cost import MachineModel
from repro.tce.molecules import system_for_scale
from repro.tce.t2_7 import T27Workload, build_t2_7
from repro.util.errors import ConfigurationError

__all__ = ["RunConfig", "StealPolicy", "precompute_inspection", "run"]

#: ``runtime=`` spellings accepted by :func:`run`, besides "parsec".
_VARIANT_RUNTIMES = ("v1", "v2", "v3", "v4", "v5")


@dataclass(frozen=True)
class RunConfig:
    """Cluster shape and execution options for :func:`run`.

    The cluster fields (``n_nodes`` .. ``gpus_per_node``) only apply
    when the workload is given as a scale name and the facade builds
    the cluster itself; a pre-built :class:`~repro.tce.t2_7.T27Workload`
    brings its own cluster and they are ignored.
    """

    n_nodes: int = 8
    cores_per_node: int = 4
    data_mode: DataMode = DataMode.REAL
    trace: bool = False
    metrics: bool = True
    machine: Optional[MachineModel] = None
    gpus_per_node: int = 0
    seed: int = 7
    #: PaRSEC: instantiate-time dataflow validation; REAL mode adds an
    #: output-checksum validation phase for every runtime.
    validate: bool = True
    #: PaRSEC node scheduler discipline (None = priority, the default).
    policy: Optional[object] = None
    #: Legacy runtime knobs (NXTVAL vs static assignment).
    legacy: Optional[LegacyConfig] = None
    #: PaRSEC: inter-node work stealing over the static chain placement
    #: (None = disabled, the paper's static distribution).
    stealing: Optional[StealPolicy] = None
    #: Workload imbalance knob (see :class:`~repro.tce.terms.TermBuilder`):
    #: chains with ``chain_id % skew_period == 0`` repeat their GEMM list
    #: ``skew_factor`` times. Only applies when the facade builds the
    #: workload from a scale name.
    skew_factor: int = 1
    skew_period: int = 0
    #: PaRSEC: share inspected chain metadata across runs of the same
    #: workload structure + node count (the fig9 cores/node sweep). The
    #: phase timer still runs; only the redundant chain walk is skipped.
    inspection_cache: Optional[InspectionCache] = field(
        default=None, repr=False, compare=False
    )


def _build_workload(scale: str, config: RunConfig) -> T27Workload:
    cluster = Cluster(
        ClusterConfig(
            n_nodes=config.n_nodes,
            cores_per_node=config.cores_per_node,
            machine=config.machine or MachineModel(),
            data_mode=config.data_mode,
            trace_enabled=config.trace,
            metrics_enabled=config.metrics,
            gpus_per_node=config.gpus_per_node,
        )
    )
    ga = GlobalArrays(cluster)
    system = system_for_scale(scale)
    return build_t2_7(
        cluster,
        ga,
        system.orbital_space(),
        seed=config.seed,
        skew_factor=config.skew_factor,
        skew_period=config.skew_period,
    )


def precompute_inspection(
    scale: str,
    n_nodes: int,
    codes: Union[list, tuple] = _VARIANT_RUNTIMES,
    seed: int = 7,
    cache: Optional[InspectionCache] = None,
    skew_factor: int = 1,
    skew_period: int = 0,
) -> InspectionCache:
    """Fill an :class:`InspectionCache` for a sweep before it runs.

    Inspected chain metadata depends only on the workload's structure
    token, the node count, and the variant's chain height — not on
    cores/node, data mode, or the machine model. A sweep parent can
    therefore inspect once per (structure token × n_nodes × height) on
    a throwaway SYNTH cluster and ship the resulting cache to worker
    processes (it pickles cleanly), so the memoization survives process
    isolation instead of being recomputed in every worker.

    ``codes`` may mix variant names with non-PaRSEC runtimes
    (``"original"``/``"legacy"``/``"dtd"`` are skipped — they have no
    inspection phase). Returns ``cache`` (a fresh one when ``None``).
    """
    cache = cache if cache is not None else InspectionCache()
    variants = []
    seen_heights = set()
    for code in codes:
        name = code.lower()
        if name == "parsec":
            name = V5.name
        if name not in _VARIANT_RUNTIMES:
            continue
        variant = variant_by_name(name)
        if variant.segment_height not in seen_heights:
            seen_heights.add(variant.segment_height)
            variants.append(variant)
    if not variants:
        return cache
    config = RunConfig(
        n_nodes=n_nodes,
        cores_per_node=1,
        data_mode=DataMode.SYNTH,
        metrics=False,
        seed=seed,
        skew_factor=skew_factor,
        skew_period=skew_period,
    )
    workload = _build_workload(scale, config)
    for variant in variants:
        cache.precompute(workload.subroutine, workload.cluster, variant)
    return cache


def run(
    workload: Union[str, T27Workload] = "small",
    runtime: str = "parsec",
    variant: Union[str, VariantSpec] = V5,
    config: Optional[RunConfig] = None,
) -> RunResult:
    """Execute one workload on one runtime; the single public entry point.

    Parameters
    ----------
    workload:
        A :class:`~repro.tce.t2_7.T27Workload` (runs on its own
        cluster), or a scale name (``"tiny"``, ``"small"``, ``"paper"``)
        for which a fresh cluster and workload are built from ``config``.
    runtime:
        ``"parsec"`` (uses ``variant``), ``"legacy"``/``"original"``,
        ``"dtd"``, or a variant name ``"v1"``..``"v5"`` as shorthand
        for PaRSEC with that variant.
    variant:
        The PTG variant for the PaRSEC path — a
        :class:`~repro.core.variants.VariantSpec` or its name.
    """
    config = config or RunConfig()
    name = runtime.lower()
    if name == "original":
        name = "legacy"
    if name in _VARIANT_RUNTIMES:
        variant = variant_by_name(name)
        name = "parsec"
    if isinstance(variant, str):
        variant = variant_by_name(variant)

    if isinstance(workload, str):
        scale: Optional[str] = workload
        workload = _build_workload(workload, config)
    else:
        scale = None
    cluster = workload.cluster
    metrics = cluster.metrics

    if name == "legacy":
        lrt = LegacyRuntime(cluster, workload.ga, config.legacy)
        with metrics.phase("execution"):
            result: RunResult = lrt.execute_subroutine(workload.subroutine)
    elif name == "dtd":
        from repro.core.dtd_port import run_over_dtd

        with metrics.phase("execution"):
            result = run_over_dtd(cluster, workload.subroutine)
    elif name == "parsec":
        with metrics.phase("inspection"):
            metadata = inspect_subroutine(
                workload.subroutine, cluster, variant, cache=config.inspection_cache
            )
        with metrics.phase("ptg_build"):
            ptg = build_ccsd_ptg(variant, metadata)
        prt = ParsecRuntime(cluster, policy=config.policy, stealing=config.stealing)
        with metrics.phase("execution"):
            result = prt.execute(ptg, metadata, validate=config.validate)
        result.variant = variant.name
    else:
        raise ConfigurationError(
            f"unknown runtime {runtime!r}: expected 'parsec', 'legacy', "
            f"'dtd', or one of {_VARIANT_RUNTIMES}"
        )

    if config.validate and metrics.enabled and cluster.data_mode is DataMode.REAL:
        with metrics.phase("validation"):
            checksum = float(workload.i2.flat_values().sum())
        metrics.gauge_set("run.output_checksum", checksum)

    result.output = workload.i2
    if metrics.enabled:
        from repro.analysis.run_report import build_run_report

        result.metrics = metrics.snapshot()
        result.report = build_run_report(
            result,
            cluster,
            workload=workload.subroutine.name,
            scale=scale,
            seed=workload.seed,
        )
    return result
