"""NWChem-level integration: mixing legacy and PaRSEC kernels (Figure 3).

"Performance critical parts of an application can be selectively ported
to execute over PaRSEC and then be re-integrated seamlessly into the
larger application which is oblivious to this transformation."

:class:`NwchemDriver` models the surrounding application: it runs a
sequence of TCE subroutines in order on the *same* simulated machine,
executing each either through the legacy CGP runtime or — for the
kernels that have been ported — through PaRSEC (inspection phase, PTG
execution, control returned). Everything shares the engine, the Global
Arrays, and the trace, so a partially-ported CC iteration is a single
coherent timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.inspector import inspect_subroutine
from repro.core.ptg_build import build_ccsd_ptg
from repro.core.variants import V5, VariantSpec
from repro.legacy.runtime import LegacyConfig, LegacyRuntime
from repro.parsec.runtime import ParsecRuntime
from repro.sim.cluster import Cluster
from repro.tce.subroutine import Subroutine

__all__ = ["KernelTiming", "IterationResult", "NwchemDriver"]


@dataclass(frozen=True)
class KernelTiming:
    """Wall (virtual) time of one subroutine within the iteration."""

    name: str
    mode: str  # 'parsec' or 'legacy'
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class IterationResult:
    """Outcome of one mixed legacy/PaRSEC iteration."""

    execution_time: float
    kernels: list[KernelTiming] = field(default_factory=list)

    def timing(self, name: str) -> KernelTiming:
        for kernel in self.kernels:
            if kernel.name == name:
                return kernel
        raise KeyError(f"no kernel named {name!r} in this iteration")


class NwchemDriver:
    """Sequences subroutines, swapping in PaRSEC per ported kernel."""

    def __init__(
        self,
        cluster: Cluster,
        ga,
        variant: VariantSpec = V5,
        parsec_kernels: Optional[Iterable[str]] = None,
        legacy_config: Optional[LegacyConfig] = None,
    ) -> None:
        self.cluster = cluster
        self.ga = ga
        self.variant = variant
        #: names of subroutines that have been ported (the paper ports
        #: icsd_t2_7 first); None means "all of them"
        self.parsec_kernels = (
            None if parsec_kernels is None else frozenset(parsec_kernels)
        )
        self.legacy_config = legacy_config or LegacyConfig()

    def uses_parsec(self, subroutine: Subroutine) -> bool:
        return self.parsec_kernels is None or subroutine.name in self.parsec_kernels

    def run(self, subroutines: list[Subroutine]) -> IterationResult:
        """Execute the subroutines in order; returns per-kernel timings."""
        engine = self.cluster.engine
        result = IterationResult(execution_time=0.0)
        start_time = engine.now

        def program():
            for subroutine in subroutines:
                t_start = engine.now
                if self.uses_parsec(subroutine):
                    metadata = inspect_subroutine(subroutine, self.cluster, self.variant)
                    ptg = build_ccsd_ptg(self.variant, metadata)
                    runtime = ParsecRuntime(self.cluster)
                    yield runtime.launch(ptg, metadata)
                    mode = "parsec"
                else:
                    legacy = LegacyRuntime(self.cluster, self.ga, self.legacy_config)
                    done, _ = legacy.launch([list(subroutine.chains)])
                    yield done
                    mode = "legacy"
                result.kernels.append(
                    KernelTiming(subroutine.name, mode, t_start, engine.now)
                )

        engine.process(program(), name="nwchem.driver")
        result.execution_time = self.cluster.run() - start_time
        return result
