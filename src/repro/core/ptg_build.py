"""Building the CCSD PTG for one variant.

This module is the Python analogue of the ``.jdf`` file: it declares
the READ_A/READ_B, DFILL, GEMM, REDUCE, SORT/SORT_I, and
WRITE_C/WRITE_C_I task classes with the guarded dataflow of the paper's
Figures 1-2 and 4-8, parameterized by a :class:`VariantSpec`.

Structure per chain (L1):

- ``READ_A(L1, L2)`` / ``READ_B(L1, L2)`` run on the GA owner node
  (``find_last_segment_owner``) and feed ``GEMM(L1, L2)``.
- GEMMs form serial mini-chains of the variant's segment height; each
  segment's first GEMM receives its C from ``DFILL(L1, S)`` (when the
  segment is longer than one GEMM) and the last forwards it — to the
  next-segment machinery (the binary ``REDUCE(L1, R)`` tree, Figure 4)
  or straight to the SORT stage when the chain has a single segment
  (Figure 1's ``(L2 == size_L2-1) ? C SORT(L1)``).
- The SORT stage is one fused ``SORT(L1)`` (Figure 5) or parallel
  ``SORT_I(L1, I)`` per active IF branch (Figure 6/7).
- WRITE tasks run on the nodes owning the target data, one instance per
  owner segment (Figure 8), accumulate under the node's write mutex,
  and receive only the slice relevant to their node.

Priorities follow Section IV-C exactly: ``max_L1 - L1 + offset*P`` with
offset +5 for reads, +1 for GEMMs, 0 elsewhere; or no priorities at all
for variant v2.
"""

from __future__ import annotations

import numpy as np

from repro.core.metadata import Metadata
from repro.core.variants import VariantSpec
from repro.parsec.ptg import PTG
from repro.parsec.taskclass import Dep, Flow, FlowMode, TaskClass, TaskContext
from repro.sim.trace import TaskCategory

__all__ = ["build_ccsd_ptg"]


# ----------------------------------------------------------------------
# task bodies
# ----------------------------------------------------------------------
def _read_run(which: str, out_flow: str):
    def run(ctx: TaskContext):
        gemm = ctx.md.gemm(*ctx.params)
        if which == "a":
            lo, hi, array = gemm.a_lo, gemm.a_hi, ctx.md.a_array_of(gemm)
        else:
            lo, hi, array = gemm.b_lo, gemm.b_hi, ctx.md.b_array_of(gemm)
        nbytes = 8.0 * (hi - lo)
        # local GA get on the owner node: exclusive core time at the
        # local ARMCI copy rate, plus the memory traffic itself. This
        # core cost is what lets priorities throttle the transfer
        # enqueue rate (the v2-vs-v4 contrast of Figures 10/11).
        cpu = nbytes / ctx.machine.ga_local_bytes_per_s
        yield from ctx.charge(_cost(cpu, nbytes))
        ctx.outputs[out_flow] = array.read_range_direct(lo, hi) if ctx.real else None

    return run


def _dfill_run(ctx: TaskContext):
    chain = ctx.md.chain(ctx.params[0])
    yield from ctx.charge(ctx.machine.zero_fill(chain.c_size))
    ctx.outputs["C"] = np.zeros((chain.m, chain.n)) if ctx.real else None


def _gemm_run(ctx: TaskContext):
    L1, L2 = ctx.params
    gemm = ctx.md.gemm(L1, L2)
    yield from ctx.charge(
        ctx.machine.gemm(gemm.m, gemm.n, gemm.k, device=ctx.device)
    )
    if not ctx.real:
        ctx.outputs["C"] = None
        return
    a = ctx.inputs["A"].reshape(gemm.k, gemm.m)
    b = ctx.inputs["B"].reshape(gemm.k, gemm.n)
    c_in = ctx.inputs.get("C")
    # dgemm('T', 'N', ...): C += A^T B (C created fresh for 1-GEMM segments)
    ctx.outputs["C"] = a.T @ b if c_in is None else c_in + a.T @ b


def _reduce_run(ctx: TaskContext):
    chain = ctx.md.chain(ctx.params[0])
    yield from ctx.charge(ctx.machine.axpy(chain.c_size))
    if ctx.real:
        ctx.outputs["C"] = ctx.inputs["X"] + ctx.inputs["Y"]
    else:
        ctx.outputs["C"] = None


def _sort_fused_run(ctx: TaskContext):
    """Figure 5: four guarded SORT_4 calls accumulating into one master.

    All data stays with one task (and therefore one OS thread), so the
    later passes run cache-warm — the locality the paper credits for
    v5's win.
    """
    chain = ctx.md.chain(ctx.params[0])
    machine = ctx.machine
    yield from ctx.charge(machine.zero_fill(chain.c_size))  # master := 0
    master = None
    tile = None
    if ctx.real:
        tile = ctx.inputs["C"].reshape(chain.tile_shape)
        master = np.zeros(chain.c_size)
    first = True
    for sort in chain.active_sorts:
        yield from ctx.charge(machine.sort4(chain.c_size, cache_warm=not first))
        yield from ctx.charge(machine.axpy(chain.c_size, cache_warm=True))
        if ctx.real:
            master += (sort.sign * np.transpose(tile, sort.perm)).reshape(-1)
        first = False
    ctx.outputs["S"] = master


def _sort_i_run(ctx: TaskContext):
    """Figure 6/7: one SORT_4 into a private matrix (cold data)."""
    L1, sort_index = ctx.params
    chain = ctx.md.chain(L1)
    sort = chain.sorts[sort_index]
    yield from ctx.charge(ctx.machine.sort4(chain.c_size, cache_warm=False))
    if ctx.real:
        tile = ctx.inputs["C"].reshape(chain.tile_shape)
        ctx.outputs["S"] = (sort.sign * np.transpose(tile, sort.perm)).reshape(-1)
    else:
        ctx.outputs["S"] = None


def _make_write_run(seg_index_of_params):
    """WRITE body: lock the node mutex once, accumulate all received
    pieces into the Global Array memory, unlock (Figures 5-8)."""

    def run(ctx: TaskContext):
        L1 = ctx.params[0]
        chain = ctx.md.chain(L1)
        seg = chain.write_segs[seg_index_of_params(ctx.params)]
        pieces = ctx.inputs["S"]
        if not isinstance(pieces, list):
            pieces = [pieces]
        tags = ctx.task.input_tag_list("S")
        mutex = ctx.node.mutex("write_c")
        yield from mutex.lock()
        try:
            for _ in pieces:
                yield from ctx.charge(ctx.machine.axpy(seg.size))
            # Commit point: every irreversible accumulate publishes in
            # this one synchronous step. A crash either aborts a clean
            # body (before the commit) or lets a fully-published task
            # run to completion (after) — never halfway. The tags
            # (task key + producer key) give each contribution a stable
            # identity for ordered, exactly-once accumulation.
            ctx.commit()
            if ctx.real:
                # Tags are level-qualified: chain ids are renumbered
                # densely per barrier level, so without the level two
                # contributions from different levels of a multi-level
                # workload could alias one ordered-accumulation log slot.
                target = ctx.md.target_array_of(chain)
                for piece, tag in zip(pieces, tags):
                    target.accumulate_range_direct(
                        seg.lo, seg.hi, piece, tag=(ctx.md.level, ctx.task.key, tag)
                    )
        finally:
            yield from mutex.unlock()

    return run


def _cost(cpu: float, nbytes: float):
    from repro.sim.cost import OpCost

    return OpCost(cpu, nbytes)


# ----------------------------------------------------------------------
# the PTG itself
# ----------------------------------------------------------------------
def build_ccsd_ptg(variant: VariantSpec, md: Metadata) -> PTG:
    """Construct the variant's PTG against inspection metadata ``md``.

    The metadata is needed only for static bounds (the maximum number
    of write segments any chain has); all per-instance facts stay
    symbolic, evaluated at instantiation — the PTG itself remains
    "Global Array agnostic", referring to data through the metadata IDs.
    """
    ptg = PTG(f"ccsd-{variant.name}")

    def prio(offset: int):
        if not variant.priorities:
            return None
        return lambda p, md: md.priority(p[0], offset)

    gemm_domain = lambda md: [
        (c.chain_id, g.position) for c in md.chains for g in c.gemms
    ]
    c_size = lambda p, md: md.chain(p[0]).c_size

    # ---------------- READ_A / READ_B -------------------------------
    for which, name, category in (
        ("a", "READ_A", TaskCategory.READ_A),
        ("b", "READ_B", TaskCategory.READ_B),
    ):
        flow_name = "A" if which == "a" else "B"
        ptg.add(
            TaskClass(
                name=name,
                params=("L1", "L2"),
                domain=gemm_domain,
                placement=(
                    (lambda p, md: md.gemm(*p).a_owner)
                    if which == "a"
                    else (lambda p, md: md.gemm(*p).b_owner)
                ),
                run=_read_run(which, flow_name),
                category=category,
                priority=prio(variant.read_offset),
                flows=[
                    Flow(
                        flow_name,
                        FlowMode.READ,
                        size_elems=(
                            (lambda p, md: md.gemm(*p).a_hi - md.gemm(*p).a_lo)
                            if which == "a"
                            else (lambda p, md: md.gemm(*p).b_hi - md.gemm(*p).b_lo)
                        ),
                        outputs=[Dep("GEMM", lambda p, md: p, flow_name)],
                    )
                ],
            )
        )

    # ---------------- DFILL ------------------------------------------
    ptg.add(
        TaskClass(
            name="DFILL",
            params=("L1", "S"),
            domain=lambda md: [
                (c.chain_id, s.seg_id)
                for c in md.chains
                for s in c.segments
                if s.length > 1
            ],
            placement=lambda p, md: md.chain(p[0]).node,
            run=_dfill_run,
            category=TaskCategory.DFILL,
            priority=prio(0),
            flows=[
                Flow(
                    "C",
                    FlowMode.WRITE,
                    size_elems=c_size,
                    outputs=[
                        Dep(
                            "GEMM",
                            lambda p, md: (p[0], md.chain(p[0]).segments[p[1]].start),
                            "C",
                        )
                    ],
                )
            ],
        )
    )

    # ---------------- GEMM --------------------------------------------
    def gemm_c_outputs() -> list[Dep]:
        deps = [
            # continue the serial mini-chain
            Dep(
                "GEMM",
                lambda p, md: (p[0], p[1] + 1),
                "C",
                guard=lambda p, md: (
                    md.gemm(*p).pos_in_seg < md.gemm(*p).seg_len - 1
                ),
            ),
            # feed the reduction tree (left / right input)
            Dep(
                "REDUCE",
                lambda p, md: (
                    p[0],
                    md.chain(p[0]).consumer_of[("seg", md.gemm(*p).seg_id)],
                ),
                "X",
                guard=lambda p, md: _is_seg_tail(p, md)
                and md.chain(p[0]).n_segments > 1
                and _reduce_side(p, md) == "X",
            ),
            Dep(
                "REDUCE",
                lambda p, md: (
                    p[0],
                    md.chain(p[0]).consumer_of[("seg", md.gemm(*p).seg_id)],
                ),
                "Y",
                guard=lambda p, md: _is_seg_tail(p, md)
                and md.chain(p[0]).n_segments > 1
                and _reduce_side(p, md) == "Y",
            ),
        ]
        deps.extend(_sort_stage_deps(variant, root_is="GEMM"))
        return deps

    ptg.add(
        TaskClass(
            name="GEMM",
            params=("L1", "L2"),
            domain=gemm_domain,
            placement=lambda p, md: md.chain(p[0]).node,
            run=_gemm_run,
            category=TaskCategory.GEMM,
            priority=prio(variant.gemm_offset),
            accelerated=True,  # GEMMs may run on accelerators when present
            flows=[
                Flow(
                    "A",
                    FlowMode.READ,
                    size_elems=lambda p, md: md.gemm(*p).a_hi - md.gemm(*p).a_lo,
                    inputs=[Dep("READ_A", lambda p, md: p, "A")],
                ),
                Flow(
                    "B",
                    FlowMode.READ,
                    size_elems=lambda p, md: md.gemm(*p).b_hi - md.gemm(*p).b_lo,
                    inputs=[Dep("READ_B", lambda p, md: p, "B")],
                ),
                Flow(
                    "C",
                    FlowMode.RW,
                    size_elems=c_size,
                    inputs=[
                        Dep(
                            "DFILL",
                            lambda p, md: (p[0], md.gemm(*p).seg_id),
                            "C",
                            guard=lambda p, md: md.gemm(*p).pos_in_seg == 0
                            and md.gemm(*p).seg_len > 1,
                        ),
                        Dep(
                            "GEMM",
                            lambda p, md: (p[0], p[1] - 1),
                            "C",
                            guard=lambda p, md: md.gemm(*p).pos_in_seg > 0,
                        ),
                    ],
                    outputs=gemm_c_outputs(),
                ),
            ],
        )
    )

    # ---------------- REDUCE -------------------------------------------
    def reduce_input_deps(flow: str, side: str) -> list[Dep]:
        def source(p, md):
            reduce = md.chain(p[0]).reduces[p[1]]
            return reduce.left if side == "left" else reduce.right

        return [
            Dep(
                "GEMM",
                lambda p, md: (
                    p[0],
                    md.chain(p[0]).segments[source(p, md)[1]].last_position,
                ),
                flow,
                guard=lambda p, md: source(p, md)[0] == "seg",
            ),
            Dep(
                "REDUCE",
                lambda p, md: (p[0], source(p, md)[1]),
                flow,
                guard=lambda p, md: source(p, md)[0] == "red",
            ),
        ]

    def reduce_c_outputs() -> list[Dep]:
        deps = [
            Dep(
                "REDUCE",
                lambda p, md: (p[0], md.chain(p[0]).consumer_of[("red", p[1])]),
                "X",
                guard=lambda p, md: not md.chain(p[0]).reduces[p[1]].is_root
                and _reduce_side_red(p, md) == "X",
            ),
            Dep(
                "REDUCE",
                lambda p, md: (p[0], md.chain(p[0]).consumer_of[("red", p[1])]),
                "Y",
                guard=lambda p, md: not md.chain(p[0]).reduces[p[1]].is_root
                and _reduce_side_red(p, md) == "Y",
            ),
        ]
        deps.extend(_sort_stage_deps(variant, root_is="REDUCE"))
        return deps

    ptg.add(
        TaskClass(
            name="REDUCE",
            params=("L1", "R"),
            domain=lambda md: [
                (c.chain_id, r.step) for c in md.chains for r in c.reduces
            ],
            placement=lambda p, md: md.chain(p[0]).node,
            run=_reduce_run,
            category=TaskCategory.REDUCE,
            priority=prio(0),
            flows=[
                Flow("X", FlowMode.READ, c_size, inputs=reduce_input_deps("X", "left")),
                Flow("Y", FlowMode.READ, c_size, inputs=reduce_input_deps("Y", "right")),
                Flow("C", FlowMode.WRITE, c_size, outputs=reduce_c_outputs()),
            ],
        )
    )

    # ---------------- SORT stage ---------------------------------------
    def root_input_deps() -> list[Dep]:
        return [
            Dep(
                "GEMM",
                lambda p, md: md.chain(p[0]).root_producer()[1],
                "C",
                guard=lambda p, md: md.chain(p[0]).root_producer()[0] == "GEMM",
            ),
            Dep(
                "REDUCE",
                lambda p, md: md.chain(p[0]).root_producer()[1],
                "C",
                guard=lambda p, md: md.chain(p[0]).root_producer()[0] == "REDUCE",
            ),
        ]

    def write_target_deps(write_class: str, param_builder) -> list[Dep]:
        """S -> WRITE instances, one per GA owner segment (Figure 8).

        Each dep slices the sorted matrix down to its node's range and
        costs only those bytes on the wire.
        """
        deps = []
        for w in range(md.max_write_segs):

            def transform(data, p, md, w=w):
                chain = md.chain(p[0])
                seg = chain.write_segs[w]
                return data[seg.lo - chain.target_lo : seg.hi - chain.target_lo]

            deps.append(
                Dep(
                    write_class,
                    (lambda p, md, w=w: param_builder(p, w)),
                    "S",
                    guard=lambda p, md, w=w: w < len(md.chain(p[0]).write_segs),
                    transform=transform,
                    size_elems=lambda p, md, w=w: md.chain(p[0]).write_segs[w].size,
                )
            )
        return deps

    if variant.fused_sort:
        ptg.add(
            TaskClass(
                name="SORT",
                params=("L1",),
                domain=lambda md: [(c.chain_id,) for c in md.chains],
                placement=lambda p, md: md.chain(p[0]).node,
                run=_sort_fused_run,
                category=TaskCategory.SORT,
                priority=prio(0),
                flows=[
                    Flow("C", FlowMode.READ, c_size, inputs=root_input_deps()),
                    Flow(
                        "S",
                        FlowMode.WRITE,
                        c_size,
                        outputs=write_target_deps("WRITE_C", lambda p, w: (p[0], w)),
                    ),
                ],
            )
        )
    else:
        write_class = "WRITE_C" if variant.single_write else "WRITE_C_I"
        param_builder = (
            (lambda p, w: (p[0], w))
            if variant.single_write
            else (lambda p, w: (p[0], p[1], w))
        )
        ptg.add(
            TaskClass(
                name="SORT_I",
                params=("L1", "I"),
                domain=lambda md: [
                    (c.chain_id, s.sort_index)
                    for c in md.chains
                    for s in c.active_sorts
                ],
                placement=lambda p, md: md.chain(p[0]).node,
                run=_sort_i_run,
                category=TaskCategory.SORT,
                priority=prio(0),
                flows=[
                    Flow("C", FlowMode.READ, c_size, inputs=root_input_deps()),
                    Flow(
                        "S",
                        FlowMode.WRITE,
                        c_size,
                        outputs=write_target_deps(write_class, param_builder),
                    ),
                ],
            )
        )

    # ---------------- WRITE stage --------------------------------------
    seg_size = lambda p, md: md.chain(p[0]).write_segs[p[-1]].size
    if variant.single_write:
        if variant.fused_sort:
            write_inputs = [Dep("SORT", lambda p, md: (p[0],), "S")]
        else:
            write_inputs = [
                Dep(
                    "SORT_I",
                    (lambda p, md, i=i: (p[0], i)),
                    "S",
                    guard=(lambda p, md, i=i: md.chain(p[0]).sorts[i].active),
                )
                for i in range(4)
            ]
        ptg.add(
            TaskClass(
                name="WRITE_C",
                params=("L1", "W"),
                domain=lambda md: [
                    (c.chain_id, w.index) for c in md.chains for w in c.write_segs
                ],
                placement=lambda p, md: md.chain(p[0]).write_segs[p[1]].node,
                run=_make_write_run(lambda p: p[1]),
                category=TaskCategory.WRITE,
                priority=prio(0),
                flows=[Flow("S", FlowMode.READ, seg_size, inputs=write_inputs)],
            )
        )
    else:
        ptg.add(
            TaskClass(
                name="WRITE_C_I",
                params=("L1", "I", "W"),
                domain=lambda md: [
                    (c.chain_id, s.sort_index, w.index)
                    for c in md.chains
                    for s in c.active_sorts
                    for w in c.write_segs
                ],
                placement=lambda p, md: md.chain(p[0]).write_segs[p[2]].node,
                run=_make_write_run(lambda p: p[2]),
                category=TaskCategory.WRITE,
                priority=prio(0),
                flows=[
                    Flow(
                        "S",
                        FlowMode.READ,
                        seg_size,
                        inputs=[Dep("SORT_I", lambda p, md: (p[0], p[1]), "S")],
                    )
                ],
            )
        )

    return ptg


# ----------------------------------------------------------------------
# guard helpers
# ----------------------------------------------------------------------
def _is_seg_tail(p, md) -> bool:
    gemm = md.gemm(*p)
    return gemm.pos_in_seg == gemm.seg_len - 1


def _reduce_side(p, md) -> str:
    """Which REDUCE input ('X' left / 'Y' right) a segment tail feeds."""
    gemm = md.gemm(*p)
    chain = md.chain(p[0])
    step = chain.consumer_of[("seg", gemm.seg_id)]
    return "X" if chain.reduces[step].left == ("seg", gemm.seg_id) else "Y"


def _reduce_side_red(p, md) -> str:
    """Which input a non-root REDUCE step feeds in its consumer."""
    chain = md.chain(p[0])
    step = chain.consumer_of[("red", p[1])]
    return "X" if chain.reduces[step].left == ("red", p[1]) else "Y"


def _sort_stage_deps(variant: VariantSpec, root_is: str) -> list[Dep]:
    """C -> SORT stage deps, guarded on being the chain's root producer."""

    def is_root(p, md) -> bool:
        cls, params = md.chain(p[0]).root_producer()
        return cls == root_is and tuple(params) == tuple(p)

    if variant.fused_sort:
        return [
            Dep("SORT", lambda p, md: (p[0],), "C", guard=is_root),
        ]
    return [
        Dep(
            "SORT_I",
            (lambda p, md, i=i: (p[0], i)),
            "C",
            guard=(
                lambda p, md, i=i: is_root(p, md)
                and md.chain(p[0]).sorts[i].active
            ),
        )
        for i in range(4)
    ]
