"""The meta-data arrays filled by the inspection phase.

Section III-B: "in the place of the original subroutine calls, we
insert operations that store the status of the execution into custom
meta-data arrays ... the location in this array is determined by the
location of each GEMM in the chain of GEMMs and the chain number."

:class:`Metadata` is those arrays, structured: per chain (L1) the GEMM
list with resolved GA ranges and owner nodes, the serial-segment
decomposition and its reduction tree, the active SORT branches, the
single target block all active sorts write to, and the per-owner-node
write segments of Figure 8. The PTG's symbolic expressions (domains,
guards, placements, priorities) all evaluate against this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.variants import VariantSpec

__all__ = [
    "GemmMeta",
    "SegmentMeta",
    "ReduceMeta",
    "SortMeta",
    "WriteSegMeta",
    "ChainMeta",
    "Metadata",
]


@dataclass(frozen=True)
class GemmMeta:
    """One GEMM slot: resolved operand ranges, owners, and shape.

    ``a_array`` / ``b_array`` name the GA each operand lives in (the
    empty string means "the subroutine's default operand array", kept
    for metadata built before the workload SDK). They are plain
    strings — never live array handles — so cached inspection entries
    stay pure data and pickle cleanly into sweep workers. Workloads
    whose chains mix operand arrays (a stencil reading both ``u`` and
    ``u_next``) need the resolution to be per GEMM, not per chain.
    """

    position: int          # L2
    seg_id: int            # which serial segment it belongs to
    pos_in_seg: int
    seg_len: int
    a_lo: int
    a_hi: int
    a_owner: int           # find_last_segment_owner(va, ...)
    b_lo: int
    b_hi: int
    b_owner: int
    m: int
    n: int
    k: int
    a_array: str = ""
    b_array: str = ""


@dataclass(frozen=True)
class SegmentMeta:
    """One serial mini-chain after segmentation (Section IV-A)."""

    seg_id: int
    start: int             # first GEMM position
    length: int

    @property
    def last_position(self) -> int:
        return self.start + self.length - 1


@dataclass(frozen=True)
class ReduceMeta:
    """One node of the binary reduction tree over segment outputs.

    Sources are tagged ``('seg', seg_id)`` (a segment's final GEMM) or
    ``('red', step)`` (an earlier reduction step).
    """

    step: int
    left: tuple[str, int]
    right: tuple[str, int]
    is_root: bool


@dataclass(frozen=True)
class SortMeta:
    """One of the four SORT_4 branches with its evaluated IF predicate."""

    sort_index: int
    active: bool
    perm: tuple[int, int, int, int]
    sign: float


@dataclass(frozen=True)
class WriteSegMeta:
    """One per-owner-node slice of the chain's target block (Figure 8)."""

    index: int
    node: int
    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo


@dataclass
class ChainMeta:
    """Everything the PTG needs to know about one chain (L1)."""

    chain_id: int
    node: int              # static round-robin placement (Section IV-D)
    key: tuple[int, int, int, int]
    tile_shape: tuple[int, int, int, int]
    m: int
    n: int
    gemms: list[GemmMeta]
    segments: list[SegmentMeta]
    reduces: list[ReduceMeta]
    #: for each reduce input source, the step consuming it (root excluded)
    consumer_of: dict[tuple[str, int], int]
    sorts: list[SortMeta]
    target_lo: int
    target_hi: int
    write_segs: list[WriteSegMeta]
    #: GA name the active sorts accumulate into ("" = default output)
    target_array: str = ""
    #: memoized root_producer() result — PTG guards and param maps call
    #: it for every dep evaluation, and it is pure in the static fields
    _root_producer: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def c_size(self) -> int:
        return self.m * self.n

    @property
    def length(self) -> int:
        return len(self.gemms)

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def active_sorts(self) -> list[SortMeta]:
        return [s for s in self.sorts if s.active]

    @property
    def root_step(self) -> Optional[int]:
        for reduce in self.reduces:
            if reduce.is_root:
                return reduce.step
        return None

    def root_producer(self) -> tuple[str, tuple]:
        """(class name, params) of the task producing the final C."""
        producer = self._root_producer
        if producer is None:
            if self.n_segments == 1:
                producer = ("GEMM", (self.chain_id, self.segments[0].last_position))
            else:
                producer = ("REDUCE", (self.chain_id, self.root_step))
            self._root_producer = producer
        return producer

    def source_producer(self, source: tuple[str, int]) -> tuple[str, tuple]:
        """(class name, params) of a reduce-tree input source."""
        kind, index = source
        if kind == "seg":
            return ("GEMM", (self.chain_id, self.segments[index].last_position))
        return ("REDUCE", (self.chain_id, index))


@dataclass
class Metadata:
    """The inspection product: all chains plus global run facts."""

    chains: list[ChainMeta]
    variant: VariantSpec
    n_nodes: int
    va_array: object
    tb_array: object
    i2_array: object
    subroutine_name: str = ""
    #: every GA the chains touch, keyed by array name; rebuilt per run
    #: (live handles — this is why Metadata itself is never cached)
    arrays: dict = field(default_factory=dict)
    #: barrier-separated level this metadata describes (0 for
    #: single-level workloads); folded into write tags so contributions
    #: from different levels never alias in ordered-accumulation logs
    level: int = 0

    #: populated in __post_init__
    max_L1: int = field(init=False)
    P: int = field(init=False)
    max_write_segs: int = field(init=False)

    def __post_init__(self) -> None:
        self.max_L1 = len(self.chains)
        self.P = self.n_nodes
        self.max_write_segs = max(
            (len(c.write_segs) for c in self.chains), default=0
        )

    def chain(self, L1: int) -> ChainMeta:
        return self.chains[L1]

    def gemm(self, L1: int, L2: int) -> GemmMeta:
        return self.chains[L1].gemms[L2]

    def a_array_of(self, gemm: GemmMeta) -> object:
        """The GA backing a GEMM's A operand (falls back to va_array)."""
        if gemm.a_array and gemm.a_array in self.arrays:
            return self.arrays[gemm.a_array]
        return self.va_array

    def b_array_of(self, gemm: GemmMeta) -> object:
        """The GA backing a GEMM's B operand (falls back to tb_array)."""
        if gemm.b_array and gemm.b_array in self.arrays:
            return self.arrays[gemm.b_array]
        return self.tb_array

    def target_array_of(self, chain: ChainMeta) -> object:
        """The GA a chain's write segments accumulate into."""
        if chain.target_array and chain.target_array in self.arrays:
            return self.arrays[chain.target_array]
        return self.i2_array

    def priority(self, L1: int, offset: int) -> float:
        """The paper's expression: ``max_L1 - L1 + offset * P``."""
        if not self.variant.priorities:
            return 0.0
        return float(self.max_L1 - L1 + offset * self.P)

    @property
    def n_gemms(self) -> int:
        return sum(c.length for c in self.chains)

    def describe(self) -> str:
        return (
            f"{self.subroutine_name} [{self.variant.name}]: "
            f"{len(self.chains)} chains, {self.n_gemms} GEMMs, "
            f"{self.n_nodes} nodes"
        )
