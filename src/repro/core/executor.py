"""Running one subroutine over PaRSEC inside the simulated cluster.

:func:`run_ptg` is the low-level building block the facade composes:
one Section III-B pipeline pass (inspect → build PTG → execute) for a
single subroutine on an existing cluster. Whole-workload runs should
go through :func:`repro.run`, which adds multi-level sequencing,
metrics phases, validation, and reporting. The long-deprecated
``run_over_parsec`` shim has been removed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.inspector import inspect_subroutine
from repro.core.metadata import Metadata
from repro.core.ptg_build import build_ccsd_ptg
from repro.core.variants import VariantSpec
from repro.parsec.runtime import ParsecResult, ParsecRuntime
from repro.sim.cluster import Cluster
from repro.tce.subroutine import Subroutine

__all__ = ["CcsdRun", "run_ptg"]


@dataclass
class CcsdRun:
    """One complete PaRSEC execution of a subroutine."""

    variant: VariantSpec
    result: ParsecResult
    metadata: Metadata

    @property
    def execution_time(self) -> float:
        return self.result.execution_time

    def describe(self) -> str:
        return (
            f"{self.metadata.subroutine_name} over PaRSEC "
            f"[{self.variant.name}]: {self.result.n_tasks} tasks in "
            f"{self.execution_time:.3f}s (virtual)"
        )


def run_ptg(
    cluster: Cluster,
    subroutine: Subroutine,
    variant: VariantSpec,
    validate: bool = True,
    policy=None,
) -> CcsdRun:
    """The Section III-B pipeline: inspection phase → metadata arrays →
    PTG execution → control returns to the caller (with the output
    already accumulated in the target Global Array). ``policy`` selects
    the node scheduler discipline (default: the priority-aware
    scheduler the paper's experiments use)."""
    metadata = inspect_subroutine(subroutine, cluster, variant)
    ptg = build_ccsd_ptg(variant, metadata)
    runtime = ParsecRuntime(cluster, policy=policy)
    result = runtime.execute(ptg, metadata, validate=validate)
    result.variant = variant.name
    return CcsdRun(variant=variant, result=result, metadata=metadata)
