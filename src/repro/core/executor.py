"""Running one subroutine over PaRSEC inside the simulated cluster.

Deprecated entry point: :func:`run_over_parsec` predates the unified
facade and is kept as a thin shim; new code should call
:func:`repro.run` (see :mod:`repro.core.api`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.inspector import inspect_subroutine
from repro.core.metadata import Metadata
from repro.core.ptg_build import build_ccsd_ptg
from repro.core.variants import VariantSpec
from repro.parsec.runtime import ParsecResult, ParsecRuntime
from repro.sim.cluster import Cluster
from repro.tce.subroutine import Subroutine

__all__ = ["CcsdRun", "run_over_parsec"]


@dataclass
class CcsdRun:
    """One complete PaRSEC execution of a subroutine."""

    variant: VariantSpec
    result: ParsecResult
    metadata: Metadata

    @property
    def execution_time(self) -> float:
        return self.result.execution_time

    def describe(self) -> str:
        return (
            f"{self.metadata.subroutine_name} over PaRSEC "
            f"[{self.variant.name}]: {self.result.n_tasks} tasks in "
            f"{self.execution_time:.3f}s (virtual)"
        )


def _run_over_parsec(
    cluster: Cluster,
    subroutine: Subroutine,
    variant: VariantSpec,
    validate: bool = True,
    policy=None,
) -> CcsdRun:
    """The Section III-B pipeline: inspection phase → metadata arrays →
    PTG execution → control returns to the caller (with the output
    already accumulated in the i2 Global Array). ``policy`` selects the
    node scheduler discipline (default: the priority-aware scheduler
    the paper's experiments use)."""
    metadata = inspect_subroutine(subroutine, cluster, variant)
    ptg = build_ccsd_ptg(variant, metadata)
    runtime = ParsecRuntime(cluster, policy=policy)
    result = runtime.execute(ptg, metadata, validate=validate)
    result.variant = variant.name
    return CcsdRun(variant=variant, result=result, metadata=metadata)


def run_over_parsec(
    cluster: Cluster,
    subroutine: Subroutine,
    variant: VariantSpec,
    validate: bool = True,
    policy=None,
) -> CcsdRun:
    """Deprecated shim over the unified facade.

    Use ``repro.run(workload, runtime="parsec", variant=...)`` instead;
    it covers all runtimes and returns a uniform
    :class:`~repro.obs.result.RunResult` with metrics and a structured
    report attached.
    """
    warnings.warn(
        "run_over_parsec() is deprecated; use repro.run(workload, "
        "runtime='parsec', variant=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_over_parsec(
        cluster, subroutine, variant, validate=validate, policy=policy
    )
