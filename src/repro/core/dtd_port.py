"""CCSD over Dynamic Task Discovery — the contrasted implementation.

A *skeleton program* that walks the same inspection metadata the PTG
uses, but expresses the computation the DTD way (Section VI's "building
the entire DAG of execution in memory"): every READ/GEMM/REDUCE/SORT/
WRITE becomes an ``insert_task`` call with declared data accesses, and
the runtime discovers the dependencies "by matching input and output
data".

The task organization mirrors variant v5 (parallel GEMMs, one fused
SORT, single WRITE per owner segment); serialization of concurrent
chain outputs into the same i2 block falls out of DTD's read/write
dependence matching on the per-block region handles — no explicit
mutex needed, at the price of materializing every edge.
"""

from __future__ import annotations

import numpy as np

from repro.core.inspector import inspect_subroutine
from repro.core.metadata import Metadata
from repro.core.variants import V5
from repro.parsec.dtd import AccessMode, DtdContext, DtdResult, DtdRuntime
from repro.sim.cluster import Cluster
from repro.sim.trace import TaskCategory
from repro.tce.subroutine import Subroutine

__all__ = ["run_over_dtd", "build_dtd_skeleton"]


def _read_body(md: Metadata, L1: int, L2: int, which: str, key: str):
    def body(ctx: DtdContext):
        gemm = md.gemm(L1, L2)
        if which == "a":
            lo, hi, array = gemm.a_lo, gemm.a_hi, md.a_array_of(gemm)
        else:
            lo, hi, array = gemm.b_lo, gemm.b_hi, md.b_array_of(gemm)
        nbytes = 8.0 * (hi - lo)
        cpu = nbytes / ctx.machine.ga_local_bytes_per_s
        from repro.sim.cost import OpCost

        yield from ctx.charge(OpCost(cpu, nbytes))
        ctx.write(key, array.read_range_direct(lo, hi) if ctx.real else None)

    return body


def _gemm_body(md: Metadata, L1: int, L2: int, a_key: str, b_key: str, out_key: str):
    def body(ctx: DtdContext):
        gemm = md.gemm(L1, L2)
        yield from ctx.charge(ctx.machine.gemm(gemm.m, gemm.n, gemm.k))
        if ctx.real:
            a = ctx.data[a_key].reshape(gemm.k, gemm.m)
            b = ctx.data[b_key].reshape(gemm.k, gemm.n)
            ctx.write(out_key, a.T @ b)
        else:
            ctx.write(out_key, None)

    return body


def _reduce_body(md: Metadata, L1: int, x_key: str, y_key: str, out_key: str):
    def body(ctx: DtdContext):
        chain = md.chain(L1)
        yield from ctx.charge(ctx.machine.axpy(chain.c_size))
        if ctx.real:
            ctx.write(out_key, ctx.data[x_key] + ctx.data[y_key])
        else:
            ctx.write(out_key, None)

    return body


def _sort_body(md: Metadata, L1: int, in_key: str, out_key: str):
    def body(ctx: DtdContext):
        chain = md.chain(L1)
        machine = ctx.machine
        yield from ctx.charge(machine.zero_fill(chain.c_size))
        master = None
        tile = None
        if ctx.real:
            tile = ctx.data[in_key].reshape(chain.tile_shape)
            master = np.zeros(chain.c_size)
        first = True
        for sort in chain.active_sorts:
            yield from ctx.charge(machine.sort4(chain.c_size, cache_warm=not first))
            yield from ctx.charge(machine.axpy(chain.c_size, cache_warm=True))
            if ctx.real:
                master += (sort.sign * np.transpose(tile, sort.perm)).reshape(-1)
            first = False
        ctx.write(out_key, master)

    return body


def _write_body(md: Metadata, L1: int, seg_index: int, sorted_key: str, region_key: str):
    def body(ctx: DtdContext):
        chain = md.chain(L1)
        seg = chain.write_segs[seg_index]
        yield from ctx.charge(ctx.machine.axpy(seg.size))
        if ctx.real:
            piece = ctx.data[sorted_key][
                seg.lo - chain.target_lo : seg.hi - chain.target_lo
            ]
            md.target_array_of(chain).accumulate_range_direct(
                seg.lo, seg.hi, piece, tag=(md.level, "dtd", L1, seg_index)
            )

    return body


def build_dtd_skeleton(runtime: DtdRuntime, md: Metadata) -> None:
    """The skeleton program: insert every task of the computation."""

    def prio(L1: int, offset: int) -> float:
        return md.priority(L1, offset)

    for chain in md.chains:
        L1 = chain.chain_id
        partial_keys: list[str] = []
        for gemm in chain.gemms:
            L2 = gemm.position
            a_key = f"a({L1},{L2})"
            b_key = f"b({L1},{L2})"
            c_key = f"c({L1},{L2})"
            a_handle = runtime.data(a_key, gemm.a_hi - gemm.a_lo, gemm.a_owner)
            b_handle = runtime.data(b_key, gemm.b_hi - gemm.b_lo, gemm.b_owner)
            c_handle = runtime.data(c_key, chain.c_size, chain.node)
            runtime.insert_task(
                f"READ_A({L1},{L2})",
                _read_body(md, L1, L2, "a", a_key),
                [(a_handle, AccessMode.WRITE)],
                node=gemm.a_owner,
                priority=prio(L1, md.variant.read_offset),
                category=TaskCategory.READ_A,
            )
            runtime.insert_task(
                f"READ_B({L1},{L2})",
                _read_body(md, L1, L2, "b", b_key),
                [(b_handle, AccessMode.WRITE)],
                node=gemm.b_owner,
                priority=prio(L1, md.variant.read_offset),
                category=TaskCategory.READ_B,
            )
            runtime.insert_task(
                f"GEMM({L1},{L2})",
                _gemm_body(md, L1, L2, a_key, b_key, c_key),
                [
                    (a_handle, AccessMode.READ),
                    (b_handle, AccessMode.READ),
                    (c_handle, AccessMode.WRITE),
                ],
                node=chain.node,
                priority=prio(L1, md.variant.gemm_offset),
                category=TaskCategory.GEMM,
            )
            partial_keys.append(c_key)

        # binary reduction over the partials (explicitly unrolled — DTD
        # has no symbolic tree, the skeleton enumerates it)
        step = 0
        frontier = partial_keys
        while len(frontier) > 1:
            next_frontier = []
            for i in range(0, len(frontier) - 1, 2):
                out_key = f"r({L1},{step})"
                out_handle = runtime.data(out_key, chain.c_size, chain.node)
                runtime.insert_task(
                    f"REDUCE({L1},{step})",
                    _reduce_body(md, L1, frontier[i], frontier[i + 1], out_key),
                    [
                        (runtime.data(frontier[i], chain.c_size, chain.node), AccessMode.READ),
                        (runtime.data(frontier[i + 1], chain.c_size, chain.node), AccessMode.READ),
                        (out_handle, AccessMode.WRITE),
                    ],
                    node=chain.node,
                    priority=prio(L1, 0),
                    category=TaskCategory.REDUCE,
                )
                next_frontier.append(out_key)
                step += 1
            if len(frontier) % 2 == 1:
                next_frontier.append(frontier[-1])
            frontier = next_frontier
        root_key = frontier[0]

        sorted_key = f"s({L1})"
        sorted_handle = runtime.data(sorted_key, chain.c_size, chain.node)
        runtime.insert_task(
            f"SORT({L1})",
            _sort_body(md, L1, root_key, sorted_key),
            [
                (runtime.data(root_key, chain.c_size, chain.node), AccessMode.READ),
                (sorted_handle, AccessMode.WRITE),
            ],
            node=chain.node,
            priority=prio(L1, 0),
            category=TaskCategory.SORT,
        )

        for seg in chain.write_segs:
            # RW access on the per-block region handle: DTD's dependence
            # matching serializes concurrent chains into the same block
            region = runtime.data(
                f"i2[{chain.target_lo}:{chain.target_hi}]@{seg.index}",
                seg.size,
                seg.node,
            )
            runtime.insert_task(
                f"WRITE_C({L1},{seg.index})",
                _write_body(md, L1, seg.index, sorted_key, region.key),
                [
                    (sorted_handle, AccessMode.READ),
                    (region, AccessMode.RW),
                ],
                node=seg.node,
                priority=prio(L1, 0),
                category=TaskCategory.WRITE,
            )


def run_over_dtd(cluster: Cluster, subroutine: Subroutine) -> DtdResult:
    """Inspect, build the DTD skeleton (v5 organization), execute."""
    md = inspect_subroutine(subroutine, cluster, V5)
    runtime = DtdRuntime(cluster)
    build_dtd_skeleton(runtime, md)
    return runtime.execute()
