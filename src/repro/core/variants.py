"""The algorithmic variants of Section IV-A / V.

The paper's five timed variants::

    v1. GEMMs in a serial chain; SORTs and WRITEs parallel; priorities.
    v2. GEMMs and SORTs parallel; one WRITE; NO priorities.
    v3. GEMMs, SORTs, and WRITEs all parallel; priorities.
    v4. GEMMs and SORTs parallel; one WRITE; priorities.
    v5. GEMMs parallel; one SORT and one WRITE; priorities.

plus the generalized *segment height*: "the height of the shorter
chains can vary from one (for maximum parallelism) to the height of the
original chain (for maximum locality). In this paper we consider the
two extreme cases." — ``segment_height=None`` is the original chain,
``1`` the fully parallel form, and intermediate values feed the
segmentation ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.util.errors import ConfigurationError

__all__ = [
    "VariantSpec",
    "V1",
    "V2",
    "V3",
    "V4",
    "V5",
    "PAPER_VARIANTS",
    "variant_by_name",
]


@dataclass(frozen=True)
class VariantSpec:
    """One point in the paper's variant space."""

    name: str
    #: GEMMs per serial segment: None = whole chain (v1), 1 = fully
    #: parallel (v2-v5), otherwise an intermediate height.
    segment_height: Optional[int]
    #: True: one SORT task per chain doing all active SORT_4 calls
    #: serially with accumulation into a master matrix (Figure 5 / v5).
    #: False: one SORT_i task per active IF branch (Figure 6-7).
    fused_sort: bool
    #: True: one WRITE_C per chain (per GA owner segment, Figure 8);
    #: False: one WRITE_C_i per active sort (Figure 7).
    single_write: bool
    #: Assign task priorities decreasing with the chain number
    #: (Section IV-C); False reproduces v2's behaviour.
    priorities: bool
    #: Priority offsets: reads get the largest so that "there is a data
    #: prefetching pipeline of depth 5*P".
    read_offset: int = 5
    gemm_offset: int = 1

    def __post_init__(self) -> None:
        if self.segment_height is not None and self.segment_height < 1:
            raise ConfigurationError(
                f"segment_height must be >= 1 or None, got {self.segment_height}"
            )
        if self.fused_sort and not self.single_write:
            raise ConfigurationError(
                "a fused SORT produces one master matrix; it requires the "
                "single-WRITE organization (the paper's Figure 5)"
            )
        if self.read_offset < 0 or self.gemm_offset < 0:
            raise ConfigurationError("priority offsets must be >= 0")

    @property
    def parallel_gemms(self) -> bool:
        return self.segment_height is not None

    def with_overrides(self, **kwargs) -> "VariantSpec":
        """A modified copy (ablation sweeps)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        gemm = (
            "serial chain"
            if self.segment_height is None
            else ("parallel" if self.segment_height == 1 else f"segments of {self.segment_height}")
        )
        sort = "one SORT" if self.fused_sort else "parallel SORTs"
        write = "one WRITE" if self.single_write else "parallel WRITEs"
        prio = "priorities" if self.priorities else "no priorities"
        return f"{self.name}: GEMMs {gemm}, {sort}, {write}, {prio}"


V1 = VariantSpec("v1", segment_height=None, fused_sort=False, single_write=False, priorities=True)
V2 = VariantSpec("v2", segment_height=1, fused_sort=False, single_write=True, priorities=False)
V3 = VariantSpec("v3", segment_height=1, fused_sort=False, single_write=False, priorities=True)
V4 = VariantSpec("v4", segment_height=1, fused_sort=False, single_write=True, priorities=True)
V5 = VariantSpec("v5", segment_height=1, fused_sort=True, single_write=True, priorities=True)

PAPER_VARIANTS: dict[str, VariantSpec] = {v.name: v for v in (V1, V2, V3, V4, V5)}


def variant_by_name(name: str) -> VariantSpec:
    """Look up one of the paper's variants by name ('v1'..'v5')."""
    try:
        return PAPER_VARIANTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown variant {name!r}; choose from {sorted(PAPER_VARIANTS)}"
        ) from None
