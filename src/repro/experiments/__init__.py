"""Experiment drivers: one module per paper artifact.

- :mod:`repro.experiments.calibration` — the frozen machine constants
  and scale presets every experiment uses.
- :mod:`repro.experiments.fig9` — the Figure 9 sweep (original + v1-v5
  across cores/node) and its shape checks.
- :mod:`repro.experiments.traces` — the Figure 10/11 (v4 vs v2) and
  Figure 12/13 (original) trace experiments.
- :mod:`repro.experiments.equivalence` — the correlation-energy
  agreement experiment (Section IV-A).
- :mod:`repro.experiments.ablations` — priorities offset, chain
  segmentation height, write organization, and load-balancing sweeps.
- :mod:`repro.experiments.sweep` — the multi-process sweep executor
  every grid experiment dispatches through (``jobs=N`` with a
  deterministic, byte-identical merge).
"""

from repro.experiments.sweep import SweepCell, SweepExecutor, SweepStats
from repro.experiments.calibration import (
    CORE_COUNTS,
    PAPER_MACHINE,
    PAPER_NODES,
    bench_scale,
    make_cluster,
    make_workload,
)
from repro.experiments.fig9 import Fig9Result, fig9_shape_checks, run_fig9, run_point
from repro.experiments.traces import run_fig10_11, run_fig12_13
from repro.experiments.equivalence import run_equivalence

__all__ = [
    "CORE_COUNTS",
    "PAPER_MACHINE",
    "PAPER_NODES",
    "bench_scale",
    "make_cluster",
    "make_workload",
    "Fig9Result",
    "fig9_shape_checks",
    "run_fig9",
    "run_point",
    "run_fig10_11",
    "run_fig12_13",
    "run_equivalence",
    "SweepCell",
    "SweepExecutor",
    "SweepStats",
]
