"""Performance baselines: the Figure 9 sweep as a regression gate.

:func:`run_perf` executes the fig9-style sweep (every code at every
core count, SYNTH data, metrics off) at a named scale and packages the
virtual execution times into a :class:`PerfBaseline`. Baselines are
written as ``BENCH_fig9_<scale>.json`` and the committed copies live in
``benchmarks/baselines/``; :func:`diff_baselines` compares a fresh
sweep against a committed file and flags any cell that got slower by
more than a configurable threshold.

The times are *virtual* seconds of the deterministic simulation, so on
an unchanged tree a re-run reproduces the committed baseline exactly;
a diff always reflects a behavioural change in the simulator or the
runtimes, never host noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.experiments.calibration import CORE_COUNTS, PAPER_NODES
from repro.experiments.fig9 import CODES, run_fig9
from repro.util.errors import ConfigurationError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_THRESHOLD",
    "PERF_PRESETS",
    "BaselineDiff",
    "MissingCell",
    "PerfBaseline",
    "Regression",
    "baseline_path",
    "default_baseline_dir",
    "diff_baselines",
    "run_perf",
]

BENCH_SCHEMA_VERSION = 1

#: a cell counts as a regression when new > old * (1 + threshold)
DEFAULT_THRESHOLD = 0.20

#: per-scale sweep shapes; tiny/small shrink the grid so the gate is
#: cheap enough for CI, paper/full run the real Figure 9 axis
PERF_PRESETS: dict[str, dict] = {
    "tiny": {"n_nodes": 4, "core_counts": (1, 2, 4)},
    "small": {"n_nodes": 8, "core_counts": (1, 3, 7)},
    "paper": {"n_nodes": PAPER_NODES, "core_counts": CORE_COUNTS},
    "full": {"n_nodes": PAPER_NODES, "core_counts": CORE_COUNTS},
}


@dataclass
class PerfBaseline:
    """One full sweep's virtual times, serializable as BENCH JSON."""

    scale: str
    n_nodes: int
    core_counts: tuple[int, ...]
    #: code -> cores/node -> virtual seconds
    times: dict[str, dict[int, float]] = field(default_factory=dict)
    schema: int = BENCH_SCHEMA_VERSION
    #: registry name of the workload swept. Serialized only when it is
    #: not the historical default, so committed t2_7 baselines stay
    #: byte-identical across this field's introduction (no schema bump).
    workload: str = "t2_7"
    #: wall-clock accounting of the sweep that produced this baseline;
    #: host-side diagnostics only, never serialized into BENCH JSON.
    sweep_stats: Optional[object] = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        payload = {
            "schema": self.schema,
            "scale": self.scale,
            "n_nodes": self.n_nodes,
            "core_counts": list(self.core_counts),
            "times": {
                code: {str(cores): t for cores, t in sorted(series.items())}
                for code, series in sorted(self.times.items())
            },
        }
        if self.workload != "t2_7":
            payload["workload"] = self.workload
        return payload

    @classmethod
    def from_dict(cls, d: dict) -> "PerfBaseline":
        schema = d.get("schema")
        if schema != BENCH_SCHEMA_VERSION:
            raise ConfigurationError(
                f"BENCH schema mismatch: file has schema={schema!r}, this "
                f"build reads schema={BENCH_SCHEMA_VERSION}. Regenerate the "
                "baseline with `python -m repro perf --update-baseline` "
                "(or read it with a matching build)."
            )
        return cls(
            scale=d["scale"],
            n_nodes=d["n_nodes"],
            core_counts=tuple(d["core_counts"]),
            times={
                code: {int(cores): float(t) for cores, t in series.items()}
                for code, series in d["times"].items()
            },
            schema=schema,
            workload=d.get("workload", "t2_7"),
        )

    def write(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def read(cls, path) -> "PerfBaseline":
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass(frozen=True)
class Regression:
    """One sweep cell that got slower past the threshold."""

    code: str
    cores: int
    old: float
    new: float

    @property
    def ratio(self) -> float:
        return self.new / self.old if self.old else float("inf")

    def describe(self) -> str:
        return (
            f"{self.code}@{self.cores}c: {self.old:.6f}s -> {self.new:.6f}s "
            f"({100 * (self.ratio - 1):+.1f}%)"
        )


def default_baseline_dir() -> Path:
    """``benchmarks/baselines/`` at the repository root (may not exist)."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "baselines"


def baseline_path(scale: str, root=None, workload: str = "t2_7") -> Path:
    """Baseline file for a (workload, scale) pair.

    The t2_7 default keeps the historical ``BENCH_fig9_<scale>.json``
    name; other workloads get ``BENCH_fig9_<workload>_<scale>.json``
    (token separators sanitized for the filesystem).
    """
    root = Path(root) if root is not None else default_baseline_dir()
    if workload == "t2_7":
        return root / f"BENCH_fig9_{scale}.json"
    tag = workload.replace(":", "_").replace("/", "_")
    return root / f"BENCH_fig9_{tag}_{scale}.json"


@dataclass(frozen=True)
class MissingCell:
    """A cell present in the old baseline but absent from the new sweep."""

    code: str
    #: None when the whole code series vanished (not just one count)
    cores: Optional[int]

    def describe(self) -> str:
        if self.cores is None:
            return f"{self.code}: entire series missing from the new sweep"
        return f"{self.code}@{self.cores}c: missing from the new sweep"


@dataclass
class BaselineDiff:
    """Outcome of comparing a fresh sweep against a committed baseline.

    A shrunken grid is reported, never silently skipped: every old cell
    the new sweep no longer covers appears in ``missing`` — otherwise
    dropping cells would make the regression gate pass vacuously.
    """

    regressions: list[Regression] = field(default_factory=list)
    missing: list[MissingCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def __iter__(self):
        return iter(self.regressions)

    def __len__(self) -> int:
        return len(self.regressions)


def run_perf(
    scale: str = "tiny",
    codes: Sequence[str] = CODES,
    n_nodes: Optional[int] = None,
    core_counts: Optional[Sequence[int]] = None,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    stealing: bool = False,
    workload: str = "t2_7",
) -> PerfBaseline:
    """Run the fig9-style sweep at a scale's preset grid.

    ``scale`` must name a preset — an unknown scale raises
    :class:`~repro.util.errors.ConfigurationError` rather than silently
    falling back to the tiny grid (a typo would otherwise write a bogus
    baseline). ``jobs`` fans the independent cells out over worker
    processes; the resulting baseline is byte-identical to ``jobs=1``.
    ``stealing`` runs the PaRSEC codes with the default steal policy —
    such sweeps are *not* comparable to the committed static baselines
    (the CLI gates on that).
    """
    preset = PERF_PRESETS.get(scale)
    if preset is None:
        raise ConfigurationError(
            f"unknown perf scale {scale!r}; choose from {sorted(PERF_PRESETS)}"
        )
    n_nodes = n_nodes if n_nodes is not None else preset["n_nodes"]
    core_counts = tuple(core_counts if core_counts is not None else preset["core_counts"])
    result = run_fig9(
        scale=scale,
        core_counts=core_counts,
        codes=codes,
        n_nodes=n_nodes,
        jobs=jobs,
        progress=progress,
        stealing=stealing,
        workload=workload,
    )
    return PerfBaseline(
        scale=scale,
        n_nodes=n_nodes,
        core_counts=core_counts,
        times=result.times,
        workload=workload,
        sweep_stats=result.sweep_stats,
    )


def diff_baselines(
    old: PerfBaseline, new: PerfBaseline, threshold: float = DEFAULT_THRESHOLD
) -> BaselineDiff:
    """Compare ``new`` against ``old`` cell by cell.

    Returns a :class:`BaselineDiff`: cells of ``new`` slower than
    ``old`` by more than ``threshold`` land in ``regressions``; cells
    of ``old`` that ``new`` no longer contains land in ``missing``.
    Cells only ``new`` has (a grown grid) are ignored. Baselines from
    different workloads never compare — that would gate one workload's
    regressions against another's timings.
    """
    if old.workload != new.workload:
        raise ConfigurationError(
            f"baseline workload mismatch: old={old.workload!r} vs "
            f"new={new.workload!r}"
        )
    diff = BaselineDiff()
    for code in sorted(old.times):
        new_series = new.times.get(code)
        if new_series is None:
            diff.missing.append(MissingCell(code, None))
            continue
        for cores, old_time in sorted(old.times[code].items()):
            new_time = new_series.get(cores)
            if new_time is None:
                diff.missing.append(MissingCell(code, cores))
                continue
            if new_time > old_time * (1.0 + threshold):
                diff.regressions.append(Regression(code, cores, old_time, new_time))
    return diff
