"""Performance baselines: the Figure 9 sweep as a regression gate.

:func:`run_perf` executes the fig9-style sweep (every code at every
core count, SYNTH data, metrics off) at a named scale and packages the
virtual execution times into a :class:`PerfBaseline`. Baselines are
written as ``BENCH_fig9_<scale>.json`` and the committed copies live in
``benchmarks/baselines/``; :func:`diff_baselines` compares a fresh
sweep against a committed file and flags any cell that got slower by
more than a configurable threshold.

The times are *virtual* seconds of the deterministic simulation, so on
an unchanged tree a re-run reproduces the committed baseline exactly;
a diff always reflects a behavioural change in the simulator or the
runtimes, never host noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.calibration import CORE_COUNTS, PAPER_NODES
from repro.experiments.fig9 import CODES, run_fig9

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_THRESHOLD",
    "PERF_PRESETS",
    "PerfBaseline",
    "Regression",
    "baseline_path",
    "default_baseline_dir",
    "diff_baselines",
    "run_perf",
]

BENCH_SCHEMA_VERSION = 1

#: a cell counts as a regression when new > old * (1 + threshold)
DEFAULT_THRESHOLD = 0.20

#: per-scale sweep shapes; tiny/small shrink the grid so the gate is
#: cheap enough for CI, paper/full run the real Figure 9 axis
PERF_PRESETS: dict[str, dict] = {
    "tiny": {"n_nodes": 4, "core_counts": (1, 2, 4)},
    "small": {"n_nodes": 8, "core_counts": (1, 3, 7)},
    "paper": {"n_nodes": PAPER_NODES, "core_counts": CORE_COUNTS},
    "full": {"n_nodes": PAPER_NODES, "core_counts": CORE_COUNTS},
}


@dataclass
class PerfBaseline:
    """One full sweep's virtual times, serializable as BENCH JSON."""

    scale: str
    n_nodes: int
    core_counts: tuple[int, ...]
    #: code -> cores/node -> virtual seconds
    times: dict[str, dict[int, float]] = field(default_factory=dict)
    schema: int = BENCH_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "scale": self.scale,
            "n_nodes": self.n_nodes,
            "core_counts": list(self.core_counts),
            "times": {
                code: {str(cores): t for cores, t in sorted(series.items())}
                for code, series in sorted(self.times.items())
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PerfBaseline":
        return cls(
            scale=d["scale"],
            n_nodes=d["n_nodes"],
            core_counts=tuple(d["core_counts"]),
            times={
                code: {int(cores): float(t) for cores, t in series.items()}
                for code, series in d["times"].items()
            },
            schema=d.get("schema", BENCH_SCHEMA_VERSION),
        )

    def write(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def read(cls, path) -> "PerfBaseline":
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass(frozen=True)
class Regression:
    """One sweep cell that got slower past the threshold."""

    code: str
    cores: int
    old: float
    new: float

    @property
    def ratio(self) -> float:
        return self.new / self.old if self.old else float("inf")

    def describe(self) -> str:
        return (
            f"{self.code}@{self.cores}c: {self.old:.6f}s -> {self.new:.6f}s "
            f"({100 * (self.ratio - 1):+.1f}%)"
        )


def default_baseline_dir() -> Path:
    """``benchmarks/baselines/`` at the repository root (may not exist)."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "baselines"


def baseline_path(scale: str, root=None) -> Path:
    root = Path(root) if root is not None else default_baseline_dir()
    return root / f"BENCH_fig9_{scale}.json"


def run_perf(
    scale: str = "tiny",
    codes: Sequence[str] = CODES,
    n_nodes: Optional[int] = None,
    core_counts: Optional[Sequence[int]] = None,
) -> PerfBaseline:
    """Run the fig9-style sweep at a scale's preset grid."""
    preset = PERF_PRESETS.get(scale, PERF_PRESETS["tiny"])
    n_nodes = n_nodes if n_nodes is not None else preset["n_nodes"]
    core_counts = tuple(core_counts if core_counts is not None else preset["core_counts"])
    result = run_fig9(scale=scale, core_counts=core_counts, codes=codes, n_nodes=n_nodes)
    return PerfBaseline(
        scale=scale,
        n_nodes=n_nodes,
        core_counts=core_counts,
        times=result.times,
    )


def diff_baselines(
    old: PerfBaseline, new: PerfBaseline, threshold: float = DEFAULT_THRESHOLD
) -> list[Regression]:
    """Cells of ``new`` slower than ``old`` by more than ``threshold``.

    Only cells present in both baselines are compared, so growing the
    grid does not spuriously fail the gate.
    """
    regressions: list[Regression] = []
    for code in sorted(old.times):
        new_series = new.times.get(code)
        if new_series is None:
            continue
        for cores, old_time in sorted(old.times[code].items()):
            new_time = new_series.get(cores)
            if new_time is None:
                continue
            if new_time > old_time * (1.0 + threshold):
                regressions.append(Regression(code, cores, old_time, new_time))
    return regressions
