"""Chaos testing: every runtime under a seeded fault plan.

Runs the legacy runtime and all five PaRSEC variants three times each:
once fault-free (the reference), then twice under the same seeded
:class:`~repro.sim.faults.FaultPlan` injecting at least one of each
fault class — transient task failures, message drop/delay/duplication,
a straggler window, and a whole-node crash. Each runner must

- complete despite the faults (recovery machinery working),
- produce a tensor **bitwise identical** to its fault-free reference
  (exactly-once arithmetic via ordered accumulation),
- report nonzero recovery counters (the faults actually fired), and
- give identical virtual end times across the two faulted runs
  (fault injection and recovery are fully deterministic).

Bitwise equivalence is only meaningful with a canonical accumulation
order, so every run — including the reference — enables the output
array's ordered-accumulation mode; the fault-free timeline is
otherwise untouched. Any registered workload can be put under chaos
(``workload=``); multi-level workloads additionally exercise recovery
across level barriers (a PTG launched after a crash re-homes the dead
node's tasks at launch).

Each runner's triple is one independent sweep cell (its fault plan is
derived from its own fault-free horizon, nothing crosses runners), so
the sweep dispatches through
:class:`~repro.experiments.sweep.SweepExecutor`: ``jobs > 1`` runs the
runners in worker processes with results merged deterministically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core import api
from repro.core.variants import PAPER_VARIANTS, variant_by_name
from repro.experiments.calibration import make_cluster, make_workload
from repro.experiments.sweep import SweepCell, SweepExecutor, SweepStats
from repro.sim.cluster import DataMode
from repro.sim.faults import FaultPlan, NodeCrash, Straggler
from repro.util.rng import derive_seed

__all__ = ["ChaosOutcome", "ChaosResult", "default_plan", "run_chaos"]


@dataclass
class ChaosOutcome:
    """One runner's behaviour under the fault plan."""

    name: str
    #: faulted output == fault-free output, bit for bit
    bitwise_match: bool
    #: the two same-seed faulted runs agreed (values and end time)
    deterministic: bool
    #: at least one recovery counter is nonzero
    faults_recovered: bool
    end_time_clean: float
    end_time_faulted: float
    #: full fault/recovery counter set (FaultReport fields)
    counters: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.bitwise_match and self.deterministic and self.faults_recovered


@dataclass
class ChaosResult:
    """Outcome of the whole sweep plus the plan that produced it."""

    plan_description: str
    outcomes: list[ChaosOutcome] = field(default_factory=list)
    #: wall-clock accounting of the sweep (host-side diagnostics only)
    sweep_stats: Optional[SweepStats] = field(
        default=None, repr=False, compare=False
    )

    @property
    def all_ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)


def default_plan(master_seed: int, horizon_s: float, n_nodes: int) -> FaultPlan:
    """A plan exercising every fault class within ``horizon_s``.

    The straggler window and the crash instant are placed relative to
    the runner's fault-free execution time so the faults land while
    work is actually in flight; the afflicted nodes are derived from
    the master seed. With fewer than two nodes the crash is dropped —
    there would be no survivor to recover onto.
    """
    crash_node = derive_seed(master_seed, "chaos:crash-node") % n_nodes
    slow_node = derive_seed(master_seed, "chaos:slow-node") % n_nodes
    crashes = ()
    if n_nodes >= 2:
        crashes = (NodeCrash(node=crash_node, at=0.45 * horizon_s),)
    return FaultPlan(
        master_seed=master_seed,
        task_fail_prob=0.05,
        max_task_retries=3,
        drop_prob=0.04,
        delay_prob=0.04,
        dup_prob=0.03,
        stragglers=(
            Straggler(
                node=slow_node,
                t_start=0.2 * horizon_s,
                t_end=0.7 * horizon_s,
                factor=2.5,
            ),
        ),
        crashes=crashes,
    )


def _chaos_run(name, scale, n_nodes, cores_per_node, seed, plan, cache,
               stealing=False, workload="t2_7"):
    """One run; returns (output values, end time, counter dict)."""
    variant = None if name == "original" else variant_by_name(name)
    cluster = make_cluster(cores_per_node, n_nodes=n_nodes, data_mode=DataMode.REAL)
    workload_obj = make_workload(
        cluster, scale=scale, seed=seed, workload=workload
    )
    workload_obj.output.array.enable_ordered_accumulation()
    if plan is not None:
        cluster.install_faults(plan)
    if variant is None:
        # the legacy runtime has no stealing machinery to exercise
        api.run(workload_obj, runtime="legacy")
    else:
        config = api.RunConfig(
            inspection_cache=cache,
            stealing=api.StealPolicy() if stealing else None,
        )
        api.run(workload_obj, variant=variant, config=config)
    counters = asdict(cluster.faults.report) if cluster.faults else {}
    return workload_obj.output.flat_values(), cluster.engine.now, counters


def _chaos_cell(
    name: str,
    scale: str,
    n_nodes: int,
    cores_per_node: int,
    seed: int,
    fault_seed: int,
    cache=None,
    stealing: bool = False,
    workload: str = "t2_7",
) -> tuple[ChaosOutcome, str]:
    """One runner's full triple (reference + two faulted runs).

    Module-level and pure-data in/out so the sweep executor can ship it
    to a worker process; returns the outcome plus the plan description.
    """
    reference, horizon, _ = _chaos_run(
        name, scale, n_nodes, cores_per_node, seed, None, cache, stealing,
        workload,
    )
    plan = default_plan(fault_seed, horizon, n_nodes)
    values_a, end_a, counters_a = _chaos_run(
        name, scale, n_nodes, cores_per_node, seed, plan, cache, stealing,
        workload,
    )
    values_b, end_b, counters_b = _chaos_run(
        name, scale, n_nodes, cores_per_node, seed, plan, cache, stealing,
        workload,
    )
    recovered = any(
        counters_a.get(k, 0) > 0
        for k in (
            "task_retries",
            "retransmits",
            "tasks_recomputed",
            "tasks_reassigned",
            "tickets_reissued",
            "chains_recovered",
            "nodes_crashed",
        )
    )
    outcome = ChaosOutcome(
        name=name,
        bitwise_match=bool(
            np.array_equal(values_a, reference)
            and np.array_equal(values_b, reference)
        ),
        deterministic=bool(
            end_a == end_b
            and counters_a == counters_b
            and np.array_equal(values_a, values_b)
        ),
        faults_recovered=recovered,
        end_time_clean=horizon,
        end_time_faulted=end_a,
        counters=counters_a,
    )
    return outcome, plan.describe()


def run_chaos(
    scale: str = "tiny",
    n_nodes: int = 4,
    cores_per_node: int = 2,
    seed: int = 7,
    fault_seed: int = 2025,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    stealing: bool = False,
    codes: Optional[list[str]] = None,
    workload: str = "t2_7",
) -> ChaosResult:
    """The full chaos sweep: legacy plus the five PaRSEC variants.

    ``stealing`` enables the work-stealing policy on the PaRSEC
    variants, so the chaos triple also exercises the fault x stealing
    interaction (the legacy runtime ignores it). ``codes`` restricts
    the sweep to a subset of runners; ``workload`` picks any registered
    workload (multi-level ones recover across level barriers too).
    """
    names = codes if codes else ["original"] + sorted(PAPER_VARIANTS)
    parsec = sorted(n for n in names if n != "original")
    cache = api.precompute_inspection(
        scale, n_nodes, codes=parsec, seed=seed, workload=workload
    ) if parsec else None
    cells = [
        SweepCell(
            key=(name,),
            fn=_chaos_cell,
            kwargs=dict(
                name=name,
                scale=scale,
                n_nodes=n_nodes,
                cores_per_node=cores_per_node,
                seed=seed,
                fault_seed=fault_seed,
                cache=cache,
                stealing=stealing,
                workload=workload,
            ),
        )
        for name in names
    ]
    executor = SweepExecutor(
        jobs=jobs, progress=progress, label=f"chaos[{workload}:{scale}]"
    )
    results, stats = executor.run(cells)
    outcomes = [results[(name,)][0] for name in names]
    plan_description = results[(names[0],)][1]
    return ChaosResult(
        plan_description=plan_description,
        outcomes=outcomes,
        sweep_stats=stats,
    )
