"""Ablation experiments for the design decisions the paper calls out.

- :func:`sweep_priority_offsets` — Section IV-C builds a "data
  prefetching pipeline of depth 5*P" with the read offset; sweep it.
- :func:`sweep_segment_height` — Section IV-A: "the height of the
  shorter chains can vary from one (maximum parallelism) to the height
  of the original chain (maximum locality). We consider the two extreme
  cases"; we also run the middle.
- :func:`sweep_write_organization` — Section V's v3-vs-v5 discussion:
  single vs parallel WRITE crossed with the mutex operation cost.
- :func:`compare_load_balancing` — Section IV-D: NXTVAL global work
  stealing vs static round-robin, on the legacy runtime where both are
  expressible.
- :func:`compare_work_stealing` — the static chain placement vs the
  inter-node steal layer (:mod:`repro.parsec.stealing`) on a skewed
  workload, across node counts.
- :func:`run_comm_ablation` — the one-sided comm optimizations
  (message coalescing × remote-block cache) across workloads, with the
  bitwise output-equality check the knobs promise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core import api
from repro.core.api import RunConfig
from repro.core.variants import V4, V5, VariantSpec
from repro.experiments.calibration import PAPER_NODES, make_cluster, make_workload
from repro.legacy.runtime import LegacyConfig, LegacyRuntime
from repro.sim.cost import MachineModel

__all__ = [
    "sweep_priority_offsets",
    "sweep_segment_height",
    "sweep_write_organization",
    "compare_load_balancing",
    "compare_scheduler_policies",
    "compare_work_stealing",
    "run_comm_ablation",
    "CommAblationResult",
    "CommCell",
]


def _variant_time(
    variant: VariantSpec,
    scale: str,
    cores_per_node: int,
    n_nodes: int = PAPER_NODES,
    machine: Optional[MachineModel] = None,
) -> float:
    cluster = make_cluster(cores_per_node, n_nodes=n_nodes, machine=machine)
    workload = make_workload(cluster, scale=scale)
    return api.run(workload, variant=variant).execution_time


def sweep_priority_offsets(
    offsets: Sequence[int] = (0, 1, 5, 10),
    scale: str = "paper",
    cores_per_node: int = 7,
) -> dict[int, float]:
    """Execution time of v4 as the READ priority offset varies.

    Offset 0 removes the prefetch pipeline (reads no longer outrank
    GEMMs); the paper's +5 gives depth 5*P.
    """
    out: dict[int, float] = {}
    for offset in offsets:
        variant = V4.with_overrides(name=f"v4.read{offset}", read_offset=offset)
        out[offset] = _variant_time(variant, scale, cores_per_node)
    return out


def sweep_segment_height(
    heights: Sequence[Optional[int]] = (1, 2, 4, None),
    scale: str = "paper",
    cores_per_node: int = 15,
) -> dict[str, float]:
    """Execution time of the v4 organization across chain heights.

    ``None`` is the original full chain (v1's GEMM organization);
    ``1`` is full parallelism (v4's).
    """
    out: dict[str, float] = {}
    for height in heights:
        label = "full-chain" if height is None else f"height-{height}"
        variant = V4.with_overrides(name=f"v4.{label}", segment_height=height)
        out[label] = _variant_time(variant, scale, cores_per_node)
    return out


def sweep_write_organization(
    mutex_costs: Sequence[float] = (4.0e-7, 4.0e-6, 4.0e-5),
    scale: str = "paper",
    cores_per_node: int = 15,
) -> dict[str, dict[str, float]]:
    """Single vs parallel WRITE as the mutex op cost grows.

    The paper attributes part of v5's win over v3 to v3's extra
    "system wide operations required to lock and unlock the mutex";
    raising the lock cost should widen that gap.
    """
    from repro.experiments.calibration import PAPER_MACHINE

    single = V5
    parallel = V5.with_overrides(
        name="v5.parallel-write", fused_sort=False, single_write=False
    )
    out: dict[str, dict[str, float]] = {}
    for cost in mutex_costs:
        machine = PAPER_MACHINE.with_overrides(
            mutex_lock_s=cost, mutex_unlock_s=cost
        )
        out[f"lock={cost:g}s"] = {
            "single-write (v5)": _variant_time(
                single, scale, cores_per_node, machine=machine
            ),
            "parallel-write": _variant_time(
                parallel, scale, cores_per_node, machine=machine
            ),
        }
    return out


def compare_scheduler_policies(
    scale: str = "paper", cores_per_node: int = 7, n_nodes: int = PAPER_NODES
) -> dict[str, float]:
    """PaRSEC's scheduling disciplines on the v4 workload.

    "PaRSEC includes multiple task scheduling algorithms" — the
    priority-aware default vs FIFO (no priorities honoured) vs LIFO
    (newest-first, cache-oriented).
    """
    from repro.parsec.scheduler import SchedulerPolicy

    out: dict[str, float] = {}
    for policy in SchedulerPolicy:
        cluster = make_cluster(cores_per_node, n_nodes=n_nodes)
        workload = make_workload(cluster, scale=scale)
        run = api.run(workload, variant=V4, config=RunConfig(policy=policy))
        out[policy.value] = run.execution_time
    return out


def compare_load_balancing(
    scale: str = "paper", cores_per_node: int = 7, n_nodes: int = PAPER_NODES
) -> dict[str, float]:
    """NXTVAL work stealing vs static rank-cyclic chains (legacy code).

    Also reports the PaRSEC approach (static round-robin across nodes +
    dynamic within node, v4) on the same workload for context.
    """
    out: dict[str, float] = {}
    for label, use_nxtval in (("nxtval-stealing", True), ("static-cyclic", False)):
        cluster = make_cluster(cores_per_node, n_nodes=n_nodes)
        workload = make_workload(cluster, scale=scale)
        result = LegacyRuntime(
            cluster, workload.ga, LegacyConfig(use_nxtval=use_nxtval)
        ).execute_subroutine(workload.subroutine)
        out[label] = result.execution_time
    out["parsec-v4 (static nodes + dynamic cores)"] = _variant_time(
        V4, scale, cores_per_node, n_nodes=n_nodes
    )
    return out


def compare_work_stealing(
    scale: str = "tiny",
    node_counts: Sequence[int] = (2, 4, 8),
    cores_per_node: int = 2,
    skew_factor: int = 6,
    machine: Optional[MachineModel] = None,
) -> dict[str, dict[str, float]]:
    """Static placement vs inter-node stealing on a skewed workload.

    ``skew_period == n_nodes`` parks every lengthened chain on node 0
    under the round-robin placement — the worst case for the paper's
    static distribution. The machine defaults to a compute-bound
    calibration (GEMMs an order of magnitude slower than the paper's)
    because that is the regime where imbalance shows as makespan; on
    the comm-bound tiny workload the benefit filter mostly declines to
    migrate and both columns converge.
    """
    from repro.parsec.stealing import StealPolicy

    if machine is None:
        from repro.experiments.calibration import PAPER_MACHINE

        machine = PAPER_MACHINE.with_overrides(gemm_gflops=1.0)
    out: dict[str, dict[str, float]] = {}
    for n_nodes in node_counts:
        row: dict[str, float] = {}
        for label, stealing in (
            ("static", None),
            ("stealing", StealPolicy()),
        ):
            cluster = make_cluster(
                cores_per_node, n_nodes=n_nodes, machine=machine
            )
            workload = make_workload(
                cluster,
                scale=scale,
                skew_factor=skew_factor,
                skew_period=n_nodes,
            )
            result = api.run(
                workload, variant=V5, config=RunConfig(stealing=stealing)
            )
            row[label] = result.execution_time
            if stealing is not None:
                row["chains_migrated"] = float(result.chains_migrated)
        row["speedup"] = row["static"] / row["stealing"]
        out[f"{n_nodes} nodes"] = row
    return out


# ----------------------------------------------------------------------
# one-sided comm optimizations (coalescing × remote-block cache)
# ----------------------------------------------------------------------
@dataclass
class CommCell:
    """One knob combination on one workload."""

    workload: str
    coalescing: bool
    cache: bool
    execution_time: float
    wire_messages: int
    bytes_fetched: float
    cache_hits: int
    cache_bytes_saved: float
    coalesced_batches: int
    messages_saved: int
    output_equal: bool

    @property
    def label(self) -> str:
        if self.coalescing and self.cache:
            return "coalesce+cache"
        if self.coalescing:
            return "coalesce"
        if self.cache:
            return "cache"
        return "baseline"


@dataclass
class CommAblationResult:
    """The full knob matrix with per-workload baselines."""

    scale: str
    rows: list[CommCell]

    @property
    def all_equal(self) -> bool:
        """Every knobs-on run reproduced the baseline output bitwise."""
        return all(cell.output_equal for cell in self.rows)

    def baseline(self, workload: str) -> CommCell:
        for cell in self.rows:
            if cell.workload == workload and not cell.coalescing and not cell.cache:
                return cell
        raise KeyError(f"no baseline cell for {workload!r}")

    def message_savings(self, workload: str) -> float:
        """Fractional wire-message reduction of the both-knobs cell."""
        base = self.baseline(workload).wire_messages
        for cell in self.rows:
            if cell.workload == workload and cell.coalescing and cell.cache:
                return 1.0 - cell.wire_messages / base if base else 0.0
        raise KeyError(f"no coalesce+cache cell for {workload!r}")

    def table(self) -> str:
        """The comparison table (also what the CI artifact carries)."""
        from repro.analysis.report import format_table

        table_rows = []
        for cell in self.rows:
            base = self.baseline(cell.workload).wire_messages
            reduction = 1.0 - cell.wire_messages / base if base else 0.0
            table_rows.append(
                [
                    cell.workload,
                    cell.label,
                    f"{cell.execution_time:.6f}",
                    f"{cell.wire_messages}",
                    f"{reduction * 100:5.1f}%",
                    f"{cell.bytes_fetched:.0f}",
                    f"{cell.cache_hits}",
                    f"{cell.coalesced_batches}",
                    f"{cell.messages_saved}",
                    "yes" if cell.output_equal else "NO",
                ]
            )
        return format_table(
            [
                "workload",
                "knobs",
                "time (s)",
                "wire msgs",
                "reduction",
                "bytes fetched",
                "cache hits",
                "batches",
                "msgs saved",
                "output equal",
            ],
            table_rows,
            title=f"One-sided comm optimizations ({self.scale} scale, legacy runtime)",
        )


def _comm_cell(
    workload: str,
    scale: str,
    n_nodes: int,
    cores_per_node: int,
    seed: int,
    coalescing: bool,
    cache: bool,
):
    """One run of the knob matrix; returns (cell sans equality, output)."""
    from repro.experiments.calibration import make_cluster
    from repro.ga.cache import RemoteCachePolicy
    from repro.ga.runtime import GlobalArrays
    from repro.sim.cluster import DataMode
    from repro.sim.network import CoalescePolicy
    from repro.workloads import build_workload

    cluster = make_cluster(cores_per_node, n_nodes=n_nodes, data_mode=DataMode.REAL)
    ga = GlobalArrays(
        cluster,
        coalescing=CoalescePolicy() if coalescing else None,
        remote_cache=RemoteCachePolicy() if cache else None,
    )
    workload_obj = build_workload(f"{workload}:{scale}", cluster, ga, seed=seed)
    # canonical accumulation order makes the FP sums bitwise-stable
    # under the timing perturbation the knobs introduce — the same
    # mechanism the chaos harness uses under fault delays
    workload_obj.output.array.enable_ordered_accumulation()
    result = api.run(workload_obj, runtime="legacy")
    output = workload_obj.output.array.gather()
    cell = CommCell(
        workload=workload,
        coalescing=coalescing,
        cache=cache,
        execution_time=result.execution_time,
        wire_messages=cluster.network.remote_messages,
        bytes_fetched=ga.bytes_fetched,
        cache_hits=ga.cache_hits,
        cache_bytes_saved=ga.cache_bytes_saved,
        coalesced_batches=ga.coalesced_batches,
        messages_saved=ga.messages_saved,
        output_equal=True,
    )
    return cell, output


def run_comm_ablation(
    workloads: Sequence[str] = ("t2_7", "ccsd", "rbgs"),
    scale: str = "tiny",
    n_nodes: int = 4,
    cores_per_node: int = 4,
    seed: int = 7,
) -> CommAblationResult:
    """The knob matrix (coalescing × cache) over the given workloads.

    Every cell runs the legacy runtime in REAL data mode and gathers
    the workload's output array; ``output_equal`` records whether the
    knobs-on bytes match the knobs-off baseline bit for bit. Uses the
    legacy runtime because its blocking per-tile GETs are the traffic
    pattern the knobs target (the paper's original-code regime).
    """
    import numpy as np

    rows: list[CommCell] = []
    for workload in workloads:
        reference = None
        for coalescing, cache in (
            (False, False),
            (True, False),
            (False, True),
            (True, True),
        ):
            cell, output = _comm_cell(
                workload, scale, n_nodes, cores_per_node, seed, coalescing, cache
            )
            if reference is None:
                reference = output
            else:
                cell.output_equal = bool(np.array_equal(reference, output))
            rows.append(cell)
    return CommAblationResult(scale=scale, rows=rows)
