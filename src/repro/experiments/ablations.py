"""Ablation experiments for the design decisions the paper calls out.

- :func:`sweep_priority_offsets` — Section IV-C builds a "data
  prefetching pipeline of depth 5*P" with the read offset; sweep it.
- :func:`sweep_segment_height` — Section IV-A: "the height of the
  shorter chains can vary from one (maximum parallelism) to the height
  of the original chain (maximum locality). We consider the two extreme
  cases"; we also run the middle.
- :func:`sweep_write_organization` — Section V's v3-vs-v5 discussion:
  single vs parallel WRITE crossed with the mutex operation cost.
- :func:`compare_load_balancing` — Section IV-D: NXTVAL global work
  stealing vs static round-robin, on the legacy runtime where both are
  expressible.
- :func:`compare_work_stealing` — the static chain placement vs the
  inter-node steal layer (:mod:`repro.parsec.stealing`) on a skewed
  workload, across node counts.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import api
from repro.core.api import RunConfig
from repro.core.variants import V4, V5, VariantSpec
from repro.experiments.calibration import PAPER_NODES, make_cluster, make_workload
from repro.legacy.runtime import LegacyConfig, LegacyRuntime
from repro.sim.cost import MachineModel

__all__ = [
    "sweep_priority_offsets",
    "sweep_segment_height",
    "sweep_write_organization",
    "compare_load_balancing",
    "compare_scheduler_policies",
    "compare_work_stealing",
]


def _variant_time(
    variant: VariantSpec,
    scale: str,
    cores_per_node: int,
    n_nodes: int = PAPER_NODES,
    machine: Optional[MachineModel] = None,
) -> float:
    cluster = make_cluster(cores_per_node, n_nodes=n_nodes, machine=machine)
    workload = make_workload(cluster, scale=scale)
    return api.run(workload, variant=variant).execution_time


def sweep_priority_offsets(
    offsets: Sequence[int] = (0, 1, 5, 10),
    scale: str = "paper",
    cores_per_node: int = 7,
) -> dict[int, float]:
    """Execution time of v4 as the READ priority offset varies.

    Offset 0 removes the prefetch pipeline (reads no longer outrank
    GEMMs); the paper's +5 gives depth 5*P.
    """
    out: dict[int, float] = {}
    for offset in offsets:
        variant = V4.with_overrides(name=f"v4.read{offset}", read_offset=offset)
        out[offset] = _variant_time(variant, scale, cores_per_node)
    return out


def sweep_segment_height(
    heights: Sequence[Optional[int]] = (1, 2, 4, None),
    scale: str = "paper",
    cores_per_node: int = 15,
) -> dict[str, float]:
    """Execution time of the v4 organization across chain heights.

    ``None`` is the original full chain (v1's GEMM organization);
    ``1`` is full parallelism (v4's).
    """
    out: dict[str, float] = {}
    for height in heights:
        label = "full-chain" if height is None else f"height-{height}"
        variant = V4.with_overrides(name=f"v4.{label}", segment_height=height)
        out[label] = _variant_time(variant, scale, cores_per_node)
    return out


def sweep_write_organization(
    mutex_costs: Sequence[float] = (4.0e-7, 4.0e-6, 4.0e-5),
    scale: str = "paper",
    cores_per_node: int = 15,
) -> dict[str, dict[str, float]]:
    """Single vs parallel WRITE as the mutex op cost grows.

    The paper attributes part of v5's win over v3 to v3's extra
    "system wide operations required to lock and unlock the mutex";
    raising the lock cost should widen that gap.
    """
    from repro.experiments.calibration import PAPER_MACHINE

    single = V5
    parallel = V5.with_overrides(
        name="v5.parallel-write", fused_sort=False, single_write=False
    )
    out: dict[str, dict[str, float]] = {}
    for cost in mutex_costs:
        machine = PAPER_MACHINE.with_overrides(
            mutex_lock_s=cost, mutex_unlock_s=cost
        )
        out[f"lock={cost:g}s"] = {
            "single-write (v5)": _variant_time(
                single, scale, cores_per_node, machine=machine
            ),
            "parallel-write": _variant_time(
                parallel, scale, cores_per_node, machine=machine
            ),
        }
    return out


def compare_scheduler_policies(
    scale: str = "paper", cores_per_node: int = 7, n_nodes: int = PAPER_NODES
) -> dict[str, float]:
    """PaRSEC's scheduling disciplines on the v4 workload.

    "PaRSEC includes multiple task scheduling algorithms" — the
    priority-aware default vs FIFO (no priorities honoured) vs LIFO
    (newest-first, cache-oriented).
    """
    from repro.parsec.scheduler import SchedulerPolicy

    out: dict[str, float] = {}
    for policy in SchedulerPolicy:
        cluster = make_cluster(cores_per_node, n_nodes=n_nodes)
        workload = make_workload(cluster, scale=scale)
        run = api.run(workload, variant=V4, config=RunConfig(policy=policy))
        out[policy.value] = run.execution_time
    return out


def compare_load_balancing(
    scale: str = "paper", cores_per_node: int = 7, n_nodes: int = PAPER_NODES
) -> dict[str, float]:
    """NXTVAL work stealing vs static rank-cyclic chains (legacy code).

    Also reports the PaRSEC approach (static round-robin across nodes +
    dynamic within node, v4) on the same workload for context.
    """
    out: dict[str, float] = {}
    for label, use_nxtval in (("nxtval-stealing", True), ("static-cyclic", False)):
        cluster = make_cluster(cores_per_node, n_nodes=n_nodes)
        workload = make_workload(cluster, scale=scale)
        result = LegacyRuntime(
            cluster, workload.ga, LegacyConfig(use_nxtval=use_nxtval)
        ).execute_subroutine(workload.subroutine)
        out[label] = result.execution_time
    out["parsec-v4 (static nodes + dynamic cores)"] = _variant_time(
        V4, scale, cores_per_node, n_nodes=n_nodes
    )
    return out


def compare_work_stealing(
    scale: str = "tiny",
    node_counts: Sequence[int] = (2, 4, 8),
    cores_per_node: int = 2,
    skew_factor: int = 6,
    machine: Optional[MachineModel] = None,
) -> dict[str, dict[str, float]]:
    """Static placement vs inter-node stealing on a skewed workload.

    ``skew_period == n_nodes`` parks every lengthened chain on node 0
    under the round-robin placement — the worst case for the paper's
    static distribution. The machine defaults to a compute-bound
    calibration (GEMMs an order of magnitude slower than the paper's)
    because that is the regime where imbalance shows as makespan; on
    the comm-bound tiny workload the benefit filter mostly declines to
    migrate and both columns converge.
    """
    from repro.parsec.stealing import StealPolicy

    if machine is None:
        from repro.experiments.calibration import PAPER_MACHINE

        machine = PAPER_MACHINE.with_overrides(gemm_gflops=1.0)
    out: dict[str, dict[str, float]] = {}
    for n_nodes in node_counts:
        row: dict[str, float] = {}
        for label, stealing in (
            ("static", None),
            ("stealing", StealPolicy()),
        ):
            cluster = make_cluster(
                cores_per_node, n_nodes=n_nodes, machine=machine
            )
            workload = make_workload(
                cluster,
                scale=scale,
                skew_factor=skew_factor,
                skew_period=n_nodes,
            )
            result = api.run(
                workload, variant=V5, config=RunConfig(stealing=stealing)
            )
            row[label] = result.execution_time
            if stealing is not None:
                row["chains_migrated"] = float(result.chains_migrated)
        row["speedup"] = row["static"] / row["stealing"]
        out[f"{n_nodes} nodes"] = row
    return out
