"""Multi-process sweep execution with a deterministic merge.

Every experiment in this repository — the Figure 9 grid, the perf
regression gate, the chaos sweep, the equivalence check — is a grid of
fully *independent* simulation cells: each cell builds a fresh cluster,
runs one deterministic simulation, and returns pure data. Nothing
couples the cells at runtime, so they can be dispatched to a process
pool instead of iterated — the same lesson the source paper draws for
the chemistry kernels themselves (independent work units are submitted
to a runtime, not walked in DO loops).

:class:`SweepExecutor` fans a list of :class:`SweepCell` out over a
``concurrent.futures.ProcessPoolExecutor`` and merges the results
deterministically:

- every cell carries a unique, ordered **key**;
- results are collected as futures complete (wall-clock order) but
  **merged by key in submission order**, so the merged mapping is
  independent of scheduling;
- each cell runs a module-level function on picklable arguments and
  returns picklable data, and each cell's simulation seeds itself — no
  state flows between cells.

Consequently ``jobs=8`` output is *byte-identical* to the serial sweep:
BENCH JSON files, :class:`~repro.experiments.fig9.Fig9Result` tables,
and the golden digests are all unchanged. ``jobs=1`` (the default)
never spawns a pool and is exactly the old nested loop.

The pooled path is **self-healing**. A worker process dying (OOM kill,
segfault in an extension, a stray ``os._exit``) breaks the whole
``ProcessPoolExecutor``; instead of aborting the sweep, the executor
respawns the pool, requeues every in-flight cell, and re-runs the
suspects one at a time so the culprit is identified exactly. A cell
that demonstrably kills workers twice (``RetryPolicy.max_pool_kills``)
is quarantined as **poisoned**; a per-cell deadline (``timeout``) kills
and respawns the pool when a cell hangs, retrying the cell up to
``RetryPolicy.retries`` times with capped exponential backoff — the
same discipline :meth:`repro.sim.faults.FaultPlan.backoff` applies to
simulated retransmits, at the host level. ``on_error`` selects the
final fate of an unrunnable cell: ``"raise"`` (default — batch runs
fail loudly) or ``"record"``, which degrades the sweep to a partial
result by storing a :class:`CellError` under the cell's key while every
healthy cell's value stays byte-identical to the serial sweep.

Wall-clock numbers (per-cell and whole-sweep) are recorded in
:class:`SweepStats` for progress lines and the sweep summary; they are
**never** mixed into cell results, which stay purely virtual-time.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.util.backoff import capped_exponential
from repro.util.errors import ConfigurationError, ReproError

__all__ = [
    "SweepCell",
    "CellError",
    "RetryPolicy",
    "PoisonedCellError",
    "CellTimeoutError",
    "SweepStats",
    "SweepExecutor",
    "default_progress",
]


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    ``fn`` must be a module-level callable (picklable by reference) and
    ``kwargs`` must contain only picklable values; ``key`` identifies
    the cell in the merged result mapping and fixes its merge order.
    """

    key: tuple
    fn: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)

    def label(self) -> str:
        return "/".join(str(part) for part in self.key)


@dataclass(frozen=True)
class RetryPolicy:
    """Host-level retry discipline for crashed or hung cells.

    ``retries`` bounds how many times one cell is re-executed after a
    deadline expiry or a worker-death requeue; between re-executions the
    executor sleeps ``delay(attempt)`` — ``base_delay_s * 2**attempt``
    clamped to ``max_delay_s``, mirroring the simulated
    :meth:`~repro.sim.faults.FaultPlan.backoff`. ``max_pool_kills`` is
    the quarantine threshold: a cell that breaks the worker pool that
    many times (the last one solo, so the culprit is certain) is
    declared poisoned and never run again.
    """

    retries: int = 2
    base_delay_s: float = 0.05
    max_delay_s: float = 1.0
    max_pool_kills: int = 2

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")
        if self.max_pool_kills < 1:
            raise ConfigurationError(
                f"max_pool_kills must be >= 1, got {self.max_pool_kills}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before re-execution number ``attempt + 1``."""
        return capped_exponential(self.base_delay_s, attempt, self.max_delay_s)


@dataclass(frozen=True)
class CellError:
    """Explicit per-cell failure record for a degraded (partial) sweep.

    Stored under the cell's key in the merged results when
    ``on_error="record"``; ``kind`` is ``"poisoned"`` (the cell killed
    workers ``max_pool_kills`` times), ``"timeout"`` (every attempt
    overran the deadline), or ``"exception"`` (the cell function
    raised).
    """

    key: tuple
    label: str
    kind: str
    message: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }


class PoisonedCellError(ReproError):
    """A sweep cell killed its worker process ``max_pool_kills`` times."""


class CellTimeoutError(ReproError):
    """A sweep cell overran its deadline on every allowed attempt."""


@dataclass
class SweepStats:
    """Wall-clock accounting for one sweep (diagnostics only).

    Kept strictly apart from the cell results so the deterministic
    artifacts (BENCH JSON, tables, reports of the runs themselves)
    carry no host timing. ``to_report`` packages the summary as an obs
    :class:`~repro.obs.report.RunReport` with ``runtime="sweep"`` —
    that report intentionally breaks the usual "no wall-clock" rule
    because measuring the wall clock is its entire point.
    """

    label: str
    jobs: int
    n_cells: int = 0
    wall_s: float = 0.0
    #: cell label -> host seconds spent inside the cell function
    cell_wall_s: dict[str, float] = field(default_factory=dict)
    #: cell re-executions after worker death or deadline expiry
    retries: int = 0
    #: worker-pool respawns (broken pool or deadline enforcement)
    pool_kills: int = 0
    #: cell label -> error kind, for cells that ended in a CellError
    cell_errors: dict[str, str] = field(default_factory=dict)

    def summary(self) -> str:
        busy = sum(self.cell_wall_s.values())
        concurrency = busy / self.wall_s if self.wall_s > 0 else 1.0
        line = (
            f"{self.label}: {self.n_cells} cells in {self.wall_s:.2f}s wall "
            f"with {self.jobs} job(s) (aggregate cell time {busy:.2f}s, "
            f"mean concurrency {concurrency:.2f}x)"
        )
        if self.retries or self.pool_kills or self.cell_errors:
            line += (
                f" [{self.retries} retries, {self.pool_kills} pool kills, "
                f"{len(self.cell_errors)} failed cells]"
            )
        return line

    def to_report(self):
        """The sweep summary as a structured obs RunReport."""
        from repro.obs.report import RunReport

        extra = {
            "jobs": self.jobs,
            "wall_s": round(self.wall_s, 6),
            "cell_wall_s": {
                label: round(seconds, 6)
                for label, seconds in sorted(self.cell_wall_s.items())
            },
        }
        if self.retries or self.pool_kills or self.cell_errors:
            extra["retries"] = self.retries
            extra["pool_kills"] = self.pool_kills
            extra["cell_errors"] = dict(sorted(self.cell_errors.items()))
        return RunReport(
            runtime="sweep",
            workload=self.label,
            execution_time=0.0,
            n_tasks=self.n_cells,
            extra=extra,
        )


def default_progress(line: str) -> None:
    """Progress sink for the CLI: stderr, so stdout stays deterministic."""
    print(line, file=sys.stderr, flush=True)


def _run_cell(cell: SweepCell) -> tuple[Any, float]:
    """Execute one cell, returning (result, host seconds)."""
    start = time.perf_counter()
    value = cell.fn(**cell.kwargs)
    return value, time.perf_counter() - start


@dataclass
class _CellState:
    """Per-cell recovery bookkeeping (host side, never in results)."""

    #: re-executions consumed (worker-death requeues + timeouts)
    attempts: int = 0
    #: worker-pool breaks this cell was in flight for
    kills: int = 0


class SweepExecutor:
    """Dispatch independent sweep cells, merge results by key.

    Parameters
    ----------
    jobs:
        Worker process count. ``1`` runs serially in-process (no pool,
        no pickling); ``>1`` uses a ``ProcessPoolExecutor``. ``None``
        or ``0`` means one worker per CPU.
    progress:
        Optional callable receiving one human-readable line per
        finished cell (wall-clock completion order).
    label:
        Name used in progress lines and the stats summary.
    timeout:
        Per-cell deadline in host seconds (pooled runs only — a serial
        run has no second process to enforce it from). A cell past its
        deadline costs a pool kill: the workers are terminated, the
        pool respawns, innocent in-flight cells are requeued free of
        charge, and the hung cell retries under ``retry``.
    retry:
        The :class:`RetryPolicy` bounding re-executions, backoff, and
        the poisoned-cell threshold (default: ``RetryPolicy()``).
    on_error:
        ``"raise"`` (default) propagates the first unrunnable cell —
        poisoned, timed out, or raising — as an exception; ``"record"``
        stores a :class:`CellError` under the cell's key instead, so
        the sweep completes as a partial result with every healthy cell
        intact.
    on_cell_done:
        Optional structured completion callback, invoked exactly once
        per cell when its fate is final: ``on_cell_done(cell, ok,
        wall_s)`` with ``ok=True`` for a computed value (``wall_s`` is
        the host seconds inside the cell function) and ``ok=False``
        for a recorded :class:`CellError`. Unlike parsing ``progress``
        lines, this never double-counts retried cells and survives
        progress-format changes — it is the contract the service's
        per-cell accounting rides on.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        progress: Optional[Callable[[str], None]] = None,
        label: str = "sweep",
        *,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        on_error: str = "raise",
        on_cell_done: Optional[Callable[[SweepCell, bool, float], None]] = None,
    ) -> None:
        if jobs is None or jobs == 0:
            import os

            jobs = os.cpu_count() or 1
        if jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout}")
        if on_error not in ("raise", "record"):
            raise ConfigurationError(
                f"on_error must be 'raise' or 'record', got {on_error!r}"
            )
        self.jobs = jobs
        self.progress = progress
        self.label = label
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.on_error = on_error
        self.on_cell_done = on_cell_done

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[SweepCell]) -> tuple[dict[tuple, Any], SweepStats]:
        """Execute every cell; returns ``(results, stats)``.

        ``results`` maps ``cell.key`` to the cell function's return
        value, with keys in **submission order** regardless of which
        worker finished first — the deterministic-merge contract. With
        ``on_error="record"`` a key may map to a :class:`CellError`
        instead of a value.
        """
        cells = list(cells)
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ConfigurationError(f"duplicate sweep cell keys: {dupes}")
        stats = SweepStats(label=self.label, jobs=self.jobs, n_cells=len(cells))
        start = time.perf_counter()
        if self.jobs == 1 or len(cells) <= 1:
            by_key = self._run_serial(cells, stats)
        else:
            by_key = self._run_pool(cells, stats)
        stats.wall_s = time.perf_counter() - start
        # the merge: submission order, not completion order
        results = {key: by_key[key] for key in keys}
        return results, stats

    # ------------------------------------------------------------------
    def _note(self, done: int, total: int, cell: SweepCell, wall: float) -> None:
        if self.progress is not None:
            width = len(str(total))
            self.progress(
                f"[{done:{width}d}/{total}] {self.label} {cell.label()} "
                f"done in {wall:.2f}s"
            )

    def _note_event(self, message: str) -> None:
        if self.progress is not None:
            self.progress(f"{self.label}: {message}")

    def _cell_done(self, cell: SweepCell, ok: bool, wall: float) -> None:
        if self.on_cell_done is not None:
            self.on_cell_done(cell, ok, wall)

    def _run_serial(self, cells, stats) -> dict[tuple, Any]:
        by_key: dict[tuple, Any] = {}
        for done, cell in enumerate(cells, start=1):
            try:
                value, wall = _run_cell(cell)
            except Exception as exc:
                if self.on_error == "raise":
                    raise
                self._record_error(by_key, stats, cell, "exception", str(exc), 1)
                continue
            by_key[cell.key] = value
            stats.cell_wall_s[cell.label()] = wall
            self._note(done, len(cells), cell, wall)
            self._cell_done(cell, True, wall)
        return by_key

    # -- pooled path with crash/timeout recovery -----------------------
    def _record_error(
        self, by_key, stats: SweepStats, cell: SweepCell, kind: str,
        message: str, attempts: int,
    ) -> None:
        """Finalize one unrunnable cell: record it, or raise."""
        if self.on_error == "raise":
            if kind == "poisoned":
                raise PoisonedCellError(
                    f"cell {cell.label()} killed its worker process "
                    f"{attempts} times: {message}"
                )
            if kind == "timeout":
                raise CellTimeoutError(
                    f"cell {cell.label()} overran its {self.timeout}s deadline "
                    f"on all {attempts} attempt(s)"
                )
            raise  # re-raise the active exception untouched
        error = CellError(
            key=cell.key, label=cell.label(), kind=kind,
            message=message, attempts=attempts,
        )
        by_key[cell.key] = error
        stats.cell_errors[cell.label()] = kind
        self._note_event(f"cell {cell.label()} failed ({kind}): {message}")
        self._cell_done(cell, False, 0.0)

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a pool, killing workers stuck in a cell body.

        ``shutdown(cancel_futures=True)`` alone only drops *queued*
        work; a worker wedged inside a cell would keep the process —
        and interpreter exit — hostage, so the worker processes are
        terminated first. ``_processes`` is private but stable across
        the supported CPython versions; if it ever vanishes the
        shutdown still proceeds, just without the hard kill.
        """
        processes = list((getattr(pool, "_processes", None) or {}).values())
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.join(timeout=5.0)
            except Exception:  # pragma: no cover - defensive
                pass

    def _run_pool(self, cells, stats) -> dict[tuple, Any]:
        by_key: dict[tuple, Any] = {}
        total = len(cells)
        workers = min(self.jobs, total)
        retry = self.retry
        order = {cell.key: i for i, cell in enumerate(cells)}
        states: dict[tuple, _CellState] = {cell.key: _CellState() for cell in cells}
        queue: deque[SweepCell] = deque(cells)
        #: suspects after a pool break, probed one at a time so a
        #: repeat break names the culprit with certainty
        solo: deque[SweepCell] = deque()
        inflight: dict[Future, tuple[SweepCell, float]] = {}
        pool = ProcessPoolExecutor(max_workers=workers)
        done_count = 0

        def submit(cell: SweepCell) -> None:
            deadline = (
                time.monotonic() + self.timeout
                if self.timeout is not None
                else float("inf")
            )
            inflight[pool.submit(_run_cell, cell)] = (cell, deadline)

        def respawn() -> ProcessPoolExecutor:
            stats.pool_kills += 1
            return ProcessPoolExecutor(max_workers=workers)

        try:
            while queue or solo or inflight:
                # fill the window; while suspects are pending, run them
                # alone (an empty window) so breaks are attributable
                if solo:
                    if not inflight:
                        submit(solo.popleft())
                else:
                    while queue and len(inflight) < workers:
                        submit(queue.popleft())
                wait_s = None
                if self.timeout is not None and inflight:
                    nearest = min(d for _, d in inflight.values())
                    wait_s = max(0.0, nearest - time.monotonic())
                finished, _ = wait(
                    set(inflight), timeout=wait_s, return_when=FIRST_COMPLETED
                )
                victims: list[SweepCell] = []
                for future in finished:
                    cell, _ = inflight.pop(future)
                    try:
                        value, wall = future.result()
                    except BrokenProcessPool:
                        victims.append(cell)
                    except Exception as exc:
                        done_count += 1
                        self._record_error(
                            by_key, stats, cell, "exception", str(exc),
                            states[cell.key].attempts + 1,
                        )
                    else:
                        done_count += 1
                        by_key[cell.key] = value
                        stats.cell_wall_s[cell.label()] = wall
                        self._note(done_count, total, cell, wall)
                        self._cell_done(cell, True, wall)
                if victims:
                    # worker death: every in-flight cell is a suspect
                    suspects = victims + [c for c, _ in inflight.values()]
                    suspects.sort(key=lambda c: order[c.key])
                    inflight.clear()
                    self._terminate_pool(pool)
                    pool = respawn()
                    worst = 0
                    for cell in suspects:
                        state = states[cell.key]
                        if len(suspects) == 1:
                            # the break is attributable: this cell (and
                            # only this cell) was in flight
                            state.kills += 1
                        worst = max(worst, state.kills, 1)
                        if state.kills >= retry.max_pool_kills:
                            done_count += 1
                            self._record_error(
                                by_key, stats, cell, "poisoned",
                                "worker process died while this cell "
                                "(and only this cell) was running",
                                state.kills,
                            )
                        else:
                            stats.retries += 1
                            solo.append(cell)
                    self._note_event(
                        f"worker pool died with {len(suspects)} cell(s) in "
                        f"flight; respawned, re-running suspects solo"
                    )
                    time.sleep(retry.delay(worst - 1))
                    continue
                if self.timeout is None or not inflight:
                    continue
                now = time.monotonic()
                expired = [
                    (future, cell)
                    for future, (cell, deadline) in inflight.items()
                    if deadline <= now and not future.done()
                ]
                if not expired:
                    continue
                # deadline enforcement costs the whole pool: terminate,
                # respawn, requeue the innocents, retry the hung cells
                survivors = [
                    cell
                    for future, (cell, _) in inflight.items()
                    if not any(future is f for f, _ in expired)
                ]
                inflight.clear()
                self._terminate_pool(pool)
                pool = respawn()
                for cell in sorted(survivors, key=lambda c: order[c.key], reverse=True):
                    queue.appendleft(cell)
                worst = 0
                for _, cell in sorted(
                    expired, key=lambda pair: order[pair[1].key]
                ):
                    state = states[cell.key]
                    state.attempts += 1
                    worst = max(worst, state.attempts)
                    if state.attempts > retry.retries:
                        done_count += 1
                        self._record_error(
                            by_key, stats, cell, "timeout",
                            f"deadline {self.timeout}s exceeded",
                            state.attempts,
                        )
                    else:
                        stats.retries += 1
                        self._note_event(
                            f"cell {cell.label()} overran its deadline "
                            f"(attempt {state.attempts}); retrying"
                        )
                        queue.appendleft(cell)
                time.sleep(retry.delay(worst - 1))
        finally:
            self._terminate_pool(pool)
        return by_key
