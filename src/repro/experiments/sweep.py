"""Multi-process sweep execution with a deterministic merge.

Every experiment in this repository — the Figure 9 grid, the perf
regression gate, the chaos sweep, the equivalence check — is a grid of
fully *independent* simulation cells: each cell builds a fresh cluster,
runs one deterministic simulation, and returns pure data. Nothing
couples the cells at runtime, so they can be dispatched to a process
pool instead of iterated — the same lesson the source paper draws for
the chemistry kernels themselves (independent work units are submitted
to a runtime, not walked in DO loops).

:class:`SweepExecutor` fans a list of :class:`SweepCell` out over a
``concurrent.futures.ProcessPoolExecutor`` and merges the results
deterministically:

- every cell carries a unique, ordered **key**;
- results are collected as futures complete (wall-clock order) but
  **merged by key in submission order**, so the merged mapping is
  independent of scheduling;
- each cell runs a module-level function on picklable arguments and
  returns picklable data, and each cell's simulation seeds itself — no
  state flows between cells.

Consequently ``jobs=8`` output is *byte-identical* to the serial sweep:
BENCH JSON files, :class:`~repro.experiments.fig9.Fig9Result` tables,
and the golden digests are all unchanged. ``jobs=1`` (the default)
never spawns a pool and is exactly the old nested loop.

Wall-clock numbers (per-cell and whole-sweep) are recorded in
:class:`SweepStats` for progress lines and the sweep summary; they are
**never** mixed into cell results, which stay purely virtual-time.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.util.errors import ConfigurationError

__all__ = [
    "SweepCell",
    "SweepStats",
    "SweepExecutor",
    "default_progress",
]


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    ``fn`` must be a module-level callable (picklable by reference) and
    ``kwargs`` must contain only picklable values; ``key`` identifies
    the cell in the merged result mapping and fixes its merge order.
    """

    key: tuple
    fn: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)

    def label(self) -> str:
        return "/".join(str(part) for part in self.key)


@dataclass
class SweepStats:
    """Wall-clock accounting for one sweep (diagnostics only).

    Kept strictly apart from the cell results so the deterministic
    artifacts (BENCH JSON, tables, reports of the runs themselves)
    carry no host timing. ``to_report`` packages the summary as an obs
    :class:`~repro.obs.report.RunReport` with ``runtime="sweep"`` —
    that report intentionally breaks the usual "no wall-clock" rule
    because measuring the wall clock is its entire point.
    """

    label: str
    jobs: int
    n_cells: int = 0
    wall_s: float = 0.0
    #: cell label -> host seconds spent inside the cell function
    cell_wall_s: dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        busy = sum(self.cell_wall_s.values())
        concurrency = busy / self.wall_s if self.wall_s > 0 else 1.0
        return (
            f"{self.label}: {self.n_cells} cells in {self.wall_s:.2f}s wall "
            f"with {self.jobs} job(s) (aggregate cell time {busy:.2f}s, "
            f"mean concurrency {concurrency:.2f}x)"
        )

    def to_report(self):
        """The sweep summary as a structured obs RunReport."""
        from repro.obs.report import RunReport

        return RunReport(
            runtime="sweep",
            workload=self.label,
            execution_time=0.0,
            n_tasks=self.n_cells,
            extra={
                "jobs": self.jobs,
                "wall_s": round(self.wall_s, 6),
                "cell_wall_s": {
                    label: round(seconds, 6)
                    for label, seconds in sorted(self.cell_wall_s.items())
                },
            },
        )


def default_progress(line: str) -> None:
    """Progress sink for the CLI: stderr, so stdout stays deterministic."""
    print(line, file=sys.stderr, flush=True)


def _run_cell(cell: SweepCell) -> tuple[Any, float]:
    """Execute one cell, returning (result, host seconds)."""
    start = time.perf_counter()
    value = cell.fn(**cell.kwargs)
    return value, time.perf_counter() - start


class SweepExecutor:
    """Dispatch independent sweep cells, merge results by key.

    Parameters
    ----------
    jobs:
        Worker process count. ``1`` runs serially in-process (no pool,
        no pickling); ``>1`` uses a ``ProcessPoolExecutor``. ``None``
        or ``0`` means one worker per CPU.
    progress:
        Optional callable receiving one human-readable line per
        finished cell (wall-clock completion order).
    label:
        Name used in progress lines and the stats summary.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        progress: Optional[Callable[[str], None]] = None,
        label: str = "sweep",
    ) -> None:
        if jobs is None or jobs == 0:
            import os

            jobs = os.cpu_count() or 1
        if jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
        self.jobs = jobs
        self.progress = progress
        self.label = label

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[SweepCell]) -> tuple[dict[tuple, Any], SweepStats]:
        """Execute every cell; returns ``(results, stats)``.

        ``results`` maps ``cell.key`` to the cell function's return
        value, with keys in **submission order** regardless of which
        worker finished first — the deterministic-merge contract.
        """
        cells = list(cells)
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ConfigurationError(f"duplicate sweep cell keys: {dupes}")
        stats = SweepStats(label=self.label, jobs=self.jobs, n_cells=len(cells))
        start = time.perf_counter()
        if self.jobs == 1 or len(cells) <= 1:
            by_key = self._run_serial(cells, stats)
        else:
            by_key = self._run_pool(cells, stats)
        stats.wall_s = time.perf_counter() - start
        # the merge: submission order, not completion order
        results = {key: by_key[key] for key in keys}
        return results, stats

    # ------------------------------------------------------------------
    def _note(self, done: int, total: int, cell: SweepCell, wall: float) -> None:
        if self.progress is not None:
            width = len(str(total))
            self.progress(
                f"[{done:{width}d}/{total}] {self.label} {cell.label()} "
                f"done in {wall:.2f}s"
            )

    def _run_serial(self, cells, stats) -> dict[tuple, Any]:
        by_key: dict[tuple, Any] = {}
        for done, cell in enumerate(cells, start=1):
            value, wall = _run_cell(cell)
            by_key[cell.key] = value
            stats.cell_wall_s[cell.label()] = wall
            self._note(done, len(cells), cell, wall)
        return by_key

    def _run_pool(self, cells, stats) -> dict[tuple, Any]:
        by_key: dict[tuple, Any] = {}
        workers = min(self.jobs, len(cells))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {pool.submit(_run_cell, cell): cell for cell in cells}
            done_count = 0
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    cell = pending.pop(future)
                    value, wall = future.result()  # re-raises worker errors
                    by_key[cell.key] = value
                    stats.cell_wall_s[cell.label()] = wall
                    done_count += 1
                    self._note(done_count, len(cells), cell, wall)
        return by_key
