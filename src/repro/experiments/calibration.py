"""Frozen experiment configuration: machine constants and scales.

The evaluation machine is a simulated stand-in for the paper's 32-node
Cascade partition. The :class:`~repro.sim.cost.MachineModel` defaults
*are* the calibration — this module pins them (so later changes to
defaults cannot silently change experiment results) and documents how
they were chosen.

Calibration provenance (see also EXPERIMENTS.md):

- ``gemm_gflops = 20``: near-peak per-core DGEMM on a 2.6 GHz Xeon
  E5-2670 for the tile sizes this workload produces.
- ``ga_service_bytes_per_s = 0.8e9``: effective one-sided GA get/acc
  serving rate at the owner node. Chosen so the original code's
  GET_HASH_BLOCK spans are comparable to its GEMM spans (the paper's
  Figure 13) and its scaling plateaus around 7 cores/node (Figure 9).
- ``ga_local_bytes_per_s = 1.5e9``: local GA get rate paid by PaRSEC
  READ tasks on the owner node.
- ``nic_bw_bytes_per_s = 2e9``, ``comm_pack_bytes_per_s = 2.2e9``:
  effective large-message transport and per-node communication-thread
  handling; together they bound PaRSEC's per-node message throughput.
- ``mem_bw / core_copy``: shared node memory bandwidth with a per-core
  copy cap (one thread cannot drive the whole controller).

Within wide ranges of these constants the *qualitative* Figure 9 shape
is stable; the ablation benchmarks vary several of them explicitly.
"""

from __future__ import annotations

import os

from repro.ga.runtime import GlobalArrays
from repro.sim.cluster import Cluster, ClusterConfig, DataMode
from repro.sim.cost import MachineModel
from repro.workloads.base import Workload

__all__ = [
    "PAPER_MACHINE",
    "PAPER_NODES",
    "CORE_COUNTS",
    "bench_scale",
    "make_cluster",
    "make_workload",
]

#: The calibrated machine (the MachineModel defaults, pinned).
PAPER_MACHINE = MachineModel(
    gemm_gflops=20.0,
    sort_elems_per_s=6.0e8,
    axpy_elems_per_s=1.2e9,
    mem_bw_bytes_per_s=5.0e10,
    core_copy_bytes_per_s=4.0e9,
    cache_reuse_discount=0.55,
    nic_bw_bytes_per_s=2.0e9,
    net_latency_s=2.5e-6,
    ga_request_overhead_s=4.0e-6,
    ga_service_bytes_per_s=8.0e8,
    ga_local_bytes_per_s=1.5e9,
    nxtval_service_s=1.5e-6,
    nxtval_issue_s=2.0e-6,
    mutex_lock_s=4.0e-7,
    mutex_unlock_s=3.0e-7,
    task_overhead_s=2.0e-6,
    comm_thread_overhead_s=3.0e-6,
    comm_pack_bytes_per_s=2.2e9,
    legacy_call_overhead_s=3.0e-6,
    barrier_overhead_s=2.0e-5,
)

#: The paper's allocation: "a 32 node partition of the Cascade cluster".
PAPER_NODES = 32

#: Figure 9's x-axis (the paper plots PaRSEC boxes at 1/3/7/15 and the
#: original line at every count; we run both at these five).
CORE_COUNTS = (1, 3, 7, 11, 15)


def bench_scale(default: str = "paper") -> str:
    """The workload scale benchmarks run at (env ``REPRO_SCALE``)."""
    return os.environ.get("REPRO_SCALE", default)


def make_cluster(
    cores_per_node: int,
    n_nodes: int = PAPER_NODES,
    data_mode: DataMode = DataMode.SYNTH,
    trace_enabled: bool = False,
    machine: MachineModel | None = None,
    metrics_enabled: bool = False,
) -> Cluster:
    """A fresh simulated allocation with the calibrated machine.

    Metrics default *off* here (unlike :class:`ClusterConfig`): the big
    SYNTH sweeps only need end-to-end times, and the disabled registry
    is a no-op on every hot path.
    """
    return Cluster(
        ClusterConfig(
            n_nodes=n_nodes,
            cores_per_node=cores_per_node,
            machine=machine or PAPER_MACHINE,
            data_mode=data_mode,
            trace_enabled=trace_enabled,
            metrics_enabled=metrics_enabled,
        )
    )


def make_workload(
    cluster: Cluster,
    scale: str = "paper",
    seed: int = 7,
    skew_factor: int = 1,
    skew_period: int = 0,
    workload: str = "t2_7",
) -> Workload:
    """A registered workload at a named scale on an existing cluster.

    ``workload`` is a registry name or full token; a ``name:params``
    token wins over ``scale`` (the experiments' ``--workload rbgs:8x8
    --scale paper`` composition resolves to the explicit grid). The
    default stays the paper's t2_7 sub-kernel.
    """
    from repro.workloads import build_workload

    return build_workload(
        workload,
        cluster,
        GlobalArrays(cluster),
        scale=scale,
        seed=seed,
        skew_factor=skew_factor,
        skew_period=skew_period,
    )
