"""The numeric-equivalence experiment (Section IV-A).

"We note that the final result (correlation energy) computed by the
different variations matched up to the 14th digit."

Runs the same seeded workload through the dense reference, the legacy
runtime, and all five PaRSEC variants — real data end to end — and
compares the correlation-energy probe. Each implementation is one
independent sweep cell, so the seven runs dispatch through
:class:`~repro.experiments.sweep.SweepExecutor` (``jobs > 1`` fans
them out over worker processes; the energies are identical either way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core import api
from repro.core.variants import PAPER_VARIANTS
from repro.experiments.calibration import make_cluster, make_workload
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.sim.cluster import DataMode
from repro.tce.reference import correlation_energy

__all__ = ["EquivalenceResult", "run_equivalence"]


@dataclass
class EquivalenceResult:
    """Correlation energies per implementation, plus agreement stats."""

    energies: dict[str, float]
    max_relative_spread: float

    def agrees_to_digits(self) -> float:
        """How many decimal digits all implementations agree to."""
        import math

        if self.max_relative_spread == 0.0:
            return 16.0
        return -math.log10(self.max_relative_spread)


def _equivalence_cell(
    name: str,
    scale: str,
    n_nodes: int,
    cores_per_node: int,
    seed: int,
    cache=None,
    workload: str = "t2_7",
) -> float:
    """One implementation's correlation energy on a fresh cluster."""
    cluster = make_cluster(cores_per_node, n_nodes=n_nodes, data_mode=DataMode.REAL)
    workload_obj = make_workload(
        cluster, scale=scale, seed=seed, workload=workload
    )
    if name == "reference":
        return correlation_energy(workload_obj.reference_values())
    config = api.RunConfig(inspection_cache=cache)
    api.run(workload_obj, runtime=name, config=config)
    return correlation_energy(workload_obj.output.flat_values())


def run_equivalence(
    scale: str = "small",
    n_nodes: int = 8,
    cores_per_node: int = 2,
    seed: int = 7,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    workload: str = "t2_7",
) -> EquivalenceResult:
    """Compute the correlation energy seven ways and compare.

    ``workload`` selects any registered workload; the "reference" cell
    is the workload's own dense-NumPy :meth:`reference_values`.
    """
    names = ["reference", "original"] + sorted(PAPER_VARIANTS)
    cache = api.precompute_inspection(
        scale, n_nodes, codes=sorted(PAPER_VARIANTS), seed=seed, workload=workload
    )
    cells = [
        SweepCell(
            key=(name,),
            fn=_equivalence_cell,
            kwargs=dict(
                name=name,
                scale=scale,
                n_nodes=n_nodes,
                cores_per_node=cores_per_node,
                seed=seed,
                cache=cache,
                workload=workload,
            ),
        )
        for name in names
    ]
    executor = SweepExecutor(
        jobs=jobs, progress=progress, label=f"equivalence[{workload}:{scale}]"
    )
    results, _ = executor.run(cells)
    energies = {name: results[(name,)] for name in names}
    center = energies["reference"]
    spread = max(abs(v - center) for v in energies.values()) / max(
        abs(center), 1e-300
    )
    return EquivalenceResult(energies=energies, max_relative_spread=spread)
