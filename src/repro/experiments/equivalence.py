"""The numeric-equivalence experiment (Section IV-A).

"We note that the final result (correlation energy) computed by the
different variations matched up to the 14th digit."

Runs the same seeded workload through the dense reference, the legacy
runtime, and all five PaRSEC variants — real data end to end — and
compares the correlation-energy probe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import api
from repro.core.variants import PAPER_VARIANTS
from repro.experiments.calibration import make_cluster, make_workload
from repro.sim.cluster import DataMode
from repro.tce.reference import compute_reference, correlation_energy

__all__ = ["EquivalenceResult", "run_equivalence"]


@dataclass
class EquivalenceResult:
    """Correlation energies per implementation, plus agreement stats."""

    energies: dict[str, float]
    max_relative_spread: float

    def agrees_to_digits(self) -> float:
        """How many decimal digits all implementations agree to."""
        import math

        if self.max_relative_spread == 0.0:
            return 16.0
        return -math.log10(self.max_relative_spread)


def run_equivalence(
    scale: str = "small", n_nodes: int = 8, cores_per_node: int = 2, seed: int = 7
) -> EquivalenceResult:
    """Compute the correlation energy seven ways and compare."""
    energies: dict[str, float] = {}

    def fresh():
        cluster = make_cluster(
            cores_per_node, n_nodes=n_nodes, data_mode=DataMode.REAL
        )
        workload = make_workload(cluster, scale=scale, seed=seed)
        return cluster, workload

    cluster, workload = fresh()
    energies["reference"] = correlation_energy(compute_reference(workload))

    cluster, workload = fresh()
    api.run(workload, runtime="original")
    energies["original"] = correlation_energy(workload.i2.flat_values())

    for name in sorted(PAPER_VARIANTS):
        cluster, workload = fresh()
        api.run(workload, runtime=name)
        energies[name] = correlation_energy(workload.i2.flat_values())

    values = list(energies.values())
    center = energies["reference"]
    spread = max(abs(v - center) for v in values) / max(abs(center), 1e-300)
    return EquivalenceResult(energies=energies, max_relative_spread=spread)
