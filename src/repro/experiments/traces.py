"""Trace experiments: Figures 10/11 (v4 vs v2) and 12/13 (original).

The paper generates these with PaRSEC's instrumentation and reads them
qualitatively; we run the same configurations with tracing enabled and
extract the quantities the prose cites:

- Fig. 10 vs 11: "variant v2 — which lacks task priorities — has too
  much idle time in the beginning" → startup idle fraction and total
  time, v2 vs v4.
- Fig. 12: "communication is interleaved with computation, however it
  is not overlapped" → the comm/compute overlap metric for the legacy
  runtime (≈0 by construction of the blocking calls).
- Fig. 13 (zoom): "the lack of overlapping is evident by the length of
  the blue, purple and light green rectangles in comparison to the
  length of the red [GEMMs]" → per-category time shares: communication
  spans are a substantial fraction of GEMM spans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.gantt import render_gantt
from repro.analysis.metrics import (
    blocking_comm_fraction,
    category_time_share,
    comm_compute_overlap,
    startup_idle_fraction,
)
from repro.core import api
from repro.core.variants import V2, V4
from repro.experiments.calibration import PAPER_NODES, make_cluster, make_workload
from repro.legacy.runtime import LegacyRuntime
from repro.sim.trace import TaskCategory, TraceRecorder

__all__ = ["TraceExperiment", "run_fig10_11", "run_fig12_13"]

#: the trace figures were taken with 7 worker threads per node
TRACE_CORES = 7


@dataclass
class TraceExperiment:
    """One traced run plus the derived figure quantities."""

    name: str
    execution_time: float
    startup_idle: float
    #: within-thread comm/compute overlap (0 for blocking code)
    overlap: float
    #: share of thread-busy time spent in blocking data movement
    comm_fraction: float
    category_share: dict
    trace: TraceRecorder

    def gantt(self, width: int = 110, max_rows: int = 14) -> str:
        return render_gantt(
            self.trace, width=width, max_rows=max_rows, title=self.name
        )


def _run_variant(variant, scale: str, n_nodes: int) -> TraceExperiment:
    cluster = make_cluster(TRACE_CORES, n_nodes=n_nodes, trace_enabled=True)
    workload = make_workload(cluster, scale=scale)
    run = api.run(workload, variant=variant)
    return TraceExperiment(
        name=f"trace of {variant.name} ({variant.describe()})",
        execution_time=run.execution_time,
        startup_idle=startup_idle_fraction(cluster.trace),
        overlap=comm_compute_overlap(cluster.trace),
        comm_fraction=blocking_comm_fraction(cluster.trace),
        category_share=category_time_share(cluster.trace),
        trace=cluster.trace,
    )


def run_fig10_11(
    scale: str = "paper", n_nodes: int = PAPER_NODES
) -> tuple[TraceExperiment, TraceExperiment]:
    """The Figure 10 (v4) and Figure 11 (v2) pair."""
    return _run_variant(V4, scale, n_nodes), _run_variant(V2, scale, n_nodes)


def run_fig12_13(scale: str = "paper", n_nodes: int = PAPER_NODES) -> TraceExperiment:
    """The Figure 12/13 run: the original code, traced."""
    cluster = make_cluster(TRACE_CORES, n_nodes=n_nodes, trace_enabled=True)
    workload = make_workload(cluster, scale=scale)
    result = LegacyRuntime(cluster, workload.ga).execute_subroutine(
        workload.subroutine
    )
    return TraceExperiment(
        name="trace of original NWChem code",
        execution_time=result.execution_time,
        startup_idle=startup_idle_fraction(cluster.trace),
        overlap=comm_compute_overlap(cluster.trace),
        comm_fraction=blocking_comm_fraction(cluster.trace),
        category_share=category_time_share(cluster.trace),
        trace=cluster.trace,
    )


def comm_vs_gemm_share(experiment: TraceExperiment) -> float:
    """Figure 13's quantity: communication time relative to GEMM time."""
    shares = experiment.category_share
    gemm = shares.get(TaskCategory.GEMM, 0.0)
    comm = shares.get(TaskCategory.COMM, 0.0) + shares.get(TaskCategory.WRITE, 0.0)
    if gemm == 0:
        return 0.0
    return comm / gemm
