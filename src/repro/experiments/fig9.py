"""Figure 9: original code vs. PaRSEC variants across cores/node.

"Comparison of algorithm variations and original code": execution time
of ``icsd_t2_7()`` on 32 nodes for beta-carotene/6-31G, for the
original NWChem execution and the five PaRSEC variants, sweeping
cores/node.

:func:`run_fig9` produces the full series; :func:`fig9_shape_checks`
evaluates the claims the paper draws from the figure, with tolerance
bands (our machine is a calibrated simulation, so shapes — who wins,
where the original saturates, how the variants order — are the
reproduction target, not absolute seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.analysis.report import format_fig9_table, format_table
from repro.core import api
from repro.experiments.calibration import (
    CORE_COUNTS,
    PAPER_NODES,
    make_cluster,
    make_workload,
)
from repro.sim.cost import MachineModel

__all__ = ["Fig9Result", "ShapeCheck", "run_point", "run_fig9", "fig9_shape_checks"]

CODES = ("original", "v1", "v2", "v3", "v4", "v5")


@dataclass
class ShapeCheck:
    """One claim extracted from the paper, evaluated on our data."""

    name: str
    passed: bool
    detail: str


@dataclass
class Fig9Result:
    """The full Figure 9 series."""

    times: dict[str, dict[int, float]]
    core_counts: tuple[int, ...]
    scale: str
    n_nodes: int

    def table(self) -> str:
        return format_fig9_table(
            self.times,
            list(self.core_counts),
            title=(
                f"Figure 9 reproduction: icsd_t2_7 on {self.n_nodes} nodes, "
                f"scale={self.scale} (virtual seconds)"
            ),
        )

    def chart(self, width: int = 72, height: int = 20) -> str:
        """The Figure 9 line plot, rendered in ASCII."""
        from repro.analysis.ascii_chart import render_series_chart

        return render_series_chart(
            self.times,
            list(self.core_counts),
            width=width,
            height=height,
            title="Execution time vs cores/node (cf. the paper's Figure 9)",
        )

    def best_original(self) -> tuple[int, float]:
        series = self.times["original"]
        cores = min(series, key=series.get)
        return cores, series[cores]

    def summary_table(self) -> str:
        """The headline speedups quoted in the paper's text."""
        orig = self.times["original"]
        best_cores, best_time = self.best_original()
        max_cores = max(self.core_counts)
        parsec_at_max = {
            code: self.times[code][max_cores] for code in CODES if code != "original"
        }
        fastest = min(parsec_at_max, key=parsec_at_max.get)
        slowest = max(parsec_at_max, key=parsec_at_max.get)
        rows = [
            [
                "original self-speedup @3 cores",
                f"{orig[1] / orig[3]:.2f}x",
                "2.35x",
            ],
            [
                "original self-speedup @7 cores",
                f"{orig[1] / orig[7]:.2f}x",
                "2.69x",
            ],
            [
                "best original",
                f"{best_time:.2f}s @{best_cores} cores/node",
                "@7 cores/node",
            ],
            [
                f"{fastest}@{max_cores} vs best original",
                f"{best_time / parsec_at_max[fastest]:.2f}x",
                "2.1x (v5)",
            ],
            [
                f"variant spread @{max_cores} ({slowest}/{fastest})",
                f"{parsec_at_max[slowest] / parsec_at_max[fastest]:.2f}x",
                "1.73x",
            ],
        ]
        return format_table(
            ["quantity", "measured", "paper"], rows, title="Headline comparison"
        )


def run_point(
    code: str,
    cores_per_node: int,
    scale: str = "paper",
    n_nodes: int = PAPER_NODES,
    machine: Optional[MachineModel] = None,
    seed: int = 7,
    inspection_cache: Optional[api.InspectionCache] = None,
) -> float:
    """One cell of Figure 9: a fresh cluster, workload, and execution.

    ``inspection_cache`` (shared across cells) skips the redundant chain
    walk when the same workload/node-count was already inspected at a
    different cores/node setting — virtual timings are unaffected.
    """
    cluster = make_cluster(cores_per_node, n_nodes=n_nodes, machine=machine)
    workload = make_workload(cluster, scale=scale, seed=seed)
    config = api.RunConfig(inspection_cache=inspection_cache)
    return api.run(workload, runtime=code, config=config).execution_time


def run_fig9(
    scale: str = "paper",
    core_counts: Sequence[int] = CORE_COUNTS,
    codes: Iterable[str] = CODES,
    n_nodes: int = PAPER_NODES,
    machine: Optional[MachineModel] = None,
) -> Fig9Result:
    """The full sweep: every code at every core count."""
    times: dict[str, dict[int, float]] = {}
    cache = api.InspectionCache()  # one inspection per (variant height, n_nodes)
    for code in codes:
        times[code] = {}
        for cores in core_counts:
            times[code][cores] = run_point(
                code,
                cores,
                scale=scale,
                n_nodes=n_nodes,
                machine=machine,
                inspection_cache=cache,
            )
    return Fig9Result(
        times=times, core_counts=tuple(core_counts), scale=scale, n_nodes=n_nodes
    )


def fig9_shape_checks(result: Fig9Result) -> list[ShapeCheck]:
    """Evaluate the paper's Figure 9 claims on a full sweep."""
    checks: list[ShapeCheck] = []
    times = result.times
    orig = times["original"]
    max_cores = max(result.core_counts)
    parsec_codes = [c for c in times if c != "original"]
    parsec_at_max = {c: times[c][max_cores] for c in parsec_codes}

    # 1. "scales fairly well up to three cores/node (2.35x)"
    speedup3 = orig[1] / orig[3]
    checks.append(
        ShapeCheck(
            "original speedup at 3 cores/node ~2.35x",
            2.0 <= speedup3 <= 2.9,
            f"measured {speedup3:.2f}x (paper 2.35x)",
        )
    )
    # 2. "little additional improvement until best at 7; deteriorates after"
    plateau = min(orig[c] for c in result.core_counts if c >= 7)
    checks.append(
        ShapeCheck(
            "original plateaus by 7 cores/node",
            orig[7] <= 1.06 * plateau,
            f"T(7)={orig[7]:.2f}s vs plateau min {plateau:.2f}s",
        )
    )
    checks.append(
        ShapeCheck(
            "original deteriorates at the end (not significantly)",
            orig[max_cores] >= orig[7] * 0.98
            and orig[max_cores] <= orig[7] * 1.25,
            f"T({max_cores})={orig[max_cores]:.2f}s vs T(7)={orig[7]:.2f}s",
        )
    )
    # 3. "PaRSEC outperforms the original as soon as three cores are used"
    wins_from_3 = all(
        times[c][cores] < orig[cores]
        for c in parsec_codes
        for cores in result.core_counts
        if cores >= 3
    )
    checks.append(
        ShapeCheck(
            "every PaRSEC variant beats original from 3 cores/node",
            wins_from_3,
            "all variants faster at 3, 7, 11, 15" if wins_from_3 else "violated",
        )
    )
    # 4. "all variants except v1 improve all the way to 15 cores/node"
    others_improve = all(
        times[c][max_cores] < times[c][11] * 0.95
        for c in parsec_codes
        if c != "v1"
    )
    v1_gain = times["v1"][11] / times["v1"][max_cores] - 1.0
    checks.append(
        ShapeCheck(
            "v2-v5 keep improving to 15; v1 largely stops",
            others_improve and v1_gain < 0.15,
            f"v1 gain 11->15 is {100 * v1_gain:.1f}%; others > 5%",
        )
    )
    # 5. v1 slowest variant, v2 next
    ranked = sorted(parsec_at_max, key=parsec_at_max.get, reverse=True)
    checks.append(
        ShapeCheck(
            "v1 slowest variant at 15; v2 second slowest",
            ranked[0] == "v1" and ranked[1] == "v2",
            f"slow-to-fast at {max_cores}: {ranked}",
        )
    )
    # 6. "best variant (v5) achieves 2.1x over fastest original run"
    _, best_orig = result.best_original()
    ratio = best_orig / parsec_at_max["v5"]
    checks.append(
        ShapeCheck(
            "v5@15 vs best original ~2.1x (band 1.8-4.0)",
            1.8 <= ratio <= 4.0,
            f"measured {ratio:.2f}x (paper 2.1x; our simulated node gives "
            "PaRSEC less scaling friction than Cascade did)",
        )
    )
    # 7. "fastest variant is 1.73x faster than the slowest" at 15
    spread = parsec_at_max[ranked[0]] / parsec_at_max[ranked[-1]]
    checks.append(
        ShapeCheck(
            "variant spread at 15 cores ~1.73x (band 1.3-2.2)",
            1.3 <= spread <= 2.2,
            f"measured {spread:.2f}x (paper 1.73x)",
        )
    )
    # 8. v5 (one SORT, one WRITE) is the fastest variant, within noise
    fastest_time = min(parsec_at_max.values())
    checks.append(
        ShapeCheck(
            "v5 fastest variant at 15 (within 2% tie tolerance)",
            parsec_at_max["v5"] <= fastest_time * 1.02,
            f"v5={parsec_at_max['v5']:.2f}s vs fastest={fastest_time:.2f}s",
        )
    )
    # 9. v2 slower than v4 (identical but for priorities)
    v2_vs_v4 = parsec_at_max["v2"] / parsec_at_max["v4"]
    checks.append(
        ShapeCheck(
            "priorities matter: v2 slower than v4 at 15",
            v2_vs_v4 > 1.10,
            f"v2/v4 = {v2_vs_v4:.2f}x",
        )
    )
    return checks
