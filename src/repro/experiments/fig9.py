"""Figure 9: original code vs. PaRSEC variants across cores/node.

"Comparison of algorithm variations and original code": execution time
of ``icsd_t2_7()`` on 32 nodes for beta-carotene/6-31G, for the
original NWChem execution and the five PaRSEC variants, sweeping
cores/node.

:func:`run_fig9` produces the full series; :func:`fig9_shape_checks`
evaluates the claims the paper draws from the figure, with tolerance
bands (our machine is a calibrated simulation, so shapes — who wins,
where the original saturates, how the variants order — are the
reproduction target, not absolute seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.analysis.report import format_fig9_table, format_table
from repro.core import api
from repro.experiments.calibration import (
    CORE_COUNTS,
    PAPER_NODES,
    make_cluster,
    make_workload,
)
from repro.experiments.sweep import SweepCell, SweepExecutor, SweepStats
from repro.sim.cost import MachineModel

__all__ = ["Fig9Result", "ShapeCheck", "run_point", "run_fig9", "fig9_shape_checks"]

CODES = ("original", "v1", "v2", "v3", "v4", "v5")


@dataclass
class ShapeCheck:
    """One claim extracted from the paper, evaluated on our data.

    ``skipped`` marks a claim whose probe points the sweep grid does
    not contain (e.g. the tiny preset has no 7-cores/node cell); a
    skipped check counts as passed so small grids don't spuriously
    fail, but the CLI reports it as SKIP rather than PASS.
    """

    name: str
    passed: bool
    detail: str
    skipped: bool = False


@dataclass
class Fig9Result:
    """The full Figure 9 series."""

    times: dict[str, dict[int, float]]
    core_counts: tuple[int, ...]
    scale: str
    n_nodes: int
    #: registry name of the workload the sweep ran (the shape checks
    #: are paper claims about t2_7; other workloads report them as
    #: informational only).
    workload: str = "t2_7"
    #: wall-clock accounting of the sweep that produced this result
    #: (host-side diagnostics only — never part of the data).
    sweep_stats: Optional[SweepStats] = field(
        default=None, repr=False, compare=False
    )

    def table(self) -> str:
        label = "icsd_t2_7" if self.workload == "t2_7" else self.workload
        return format_fig9_table(
            self.times,
            list(self.core_counts),
            title=(
                f"Figure 9 reproduction: {label} on {self.n_nodes} nodes, "
                f"scale={self.scale} (virtual seconds)"
            ),
        )

    def chart(self, width: int = 72, height: int = 20) -> str:
        """The Figure 9 line plot, rendered in ASCII."""
        from repro.analysis.ascii_chart import render_series_chart

        return render_series_chart(
            self.times,
            list(self.core_counts),
            width=width,
            height=height,
            title="Execution time vs cores/node (cf. the paper's Figure 9)",
        )

    def best_original(self) -> tuple[int, float]:
        series = self.times["original"]
        cores = min(series, key=series.get)
        return cores, series[cores]

    def summary_table(self) -> str:
        """The headline speedups quoted in the paper's text.

        Probe points the grid does not contain (the paper quotes 3 and
        7 cores/node; the tiny/small presets sweep other counts) render
        as explicit ``n/a`` rows instead of raising ``KeyError``.
        """
        orig = self.times["original"]
        grid = set(self.core_counts)
        best_cores, best_time = self.best_original()
        max_cores = max(self.core_counts)
        parsec_at_max = {
            code: series[max_cores]
            for code, series in self.times.items()
            if code != "original"
        }
        fastest = min(parsec_at_max, key=parsec_at_max.get)
        slowest = max(parsec_at_max, key=parsec_at_max.get)

        def self_speedup(cores: int) -> str:
            missing = [c for c in (1, cores) if c not in grid]
            if missing:
                lacks = "/".join(str(c) for c in missing)
                return f"n/a (grid lacks {lacks} cores/node)"
            return f"{orig[1] / orig[cores]:.2f}x"

        rows = [
            ["original self-speedup @3 cores", self_speedup(3), "2.35x"],
            ["original self-speedup @7 cores", self_speedup(7), "2.69x"],
            [
                "best original",
                f"{best_time:.2f}s @{best_cores} cores/node",
                "@7 cores/node",
            ],
            [
                f"{fastest}@{max_cores} vs best original",
                f"{best_time / parsec_at_max[fastest]:.2f}x",
                "2.1x (v5)",
            ],
            [
                f"variant spread @{max_cores} ({slowest}/{fastest})",
                f"{parsec_at_max[slowest] / parsec_at_max[fastest]:.2f}x",
                "1.73x",
            ],
        ]
        return format_table(
            ["quantity", "measured", "paper"], rows, title="Headline comparison"
        )


def run_point(
    code: str,
    cores_per_node: int,
    scale: str = "paper",
    n_nodes: int = PAPER_NODES,
    machine: Optional[MachineModel] = None,
    seed: int = 7,
    inspection_cache: Optional[api.InspectionCache] = None,
    stealing: bool = False,
    skew_factor: int = 1,
    skew_period: int = 0,
    workload: str = "t2_7",
) -> float:
    """One cell of Figure 9: a fresh cluster, workload, and execution.

    ``inspection_cache`` (shared across cells) skips the redundant chain
    walk when the same workload/node-count was already inspected at a
    different cores/node setting — virtual timings are unaffected.
    ``stealing`` turns on the default :class:`~repro.parsec.stealing.
    StealPolicy` for the PaRSEC codes (the original/dtd paths ignore
    it); the skew knobs shape the workload itself, so they apply to
    every code.
    """
    cluster = make_cluster(cores_per_node, n_nodes=n_nodes, machine=machine)
    workload_obj = make_workload(
        cluster,
        scale=scale,
        seed=seed,
        skew_factor=skew_factor,
        skew_period=skew_period,
        workload=workload,
    )
    config = api.RunConfig(
        inspection_cache=inspection_cache,
        stealing=api.StealPolicy() if stealing else None,
    )
    return api.run(workload_obj, runtime=code, config=config).execution_time


def run_fig9(
    scale: str = "paper",
    core_counts: Sequence[int] = CORE_COUNTS,
    codes: Iterable[str] = CODES,
    n_nodes: int = PAPER_NODES,
    machine: Optional[MachineModel] = None,
    seed: int = 7,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    stealing: bool = False,
    skew_factor: int = 1,
    skew_period: int = 0,
    workload: str = "t2_7",
) -> Fig9Result:
    """The full sweep: every code at every core count.

    Every ``(code, cores)`` cell builds its own cluster and workload,
    so the grid is dispatched through :class:`SweepExecutor`:
    ``jobs > 1`` fans the cells out over worker processes and the
    deterministic merge guarantees the result — ``times`` dict, tables,
    BENCH JSON downstream — is byte-identical to the serial sweep.

    The inspection memoization (one chain walk per variant height ×
    node count) is precomputed once here in the parent and shipped to
    every worker, so it survives process isolation.
    """
    codes = tuple(codes)
    core_counts = tuple(core_counts)
    cache = api.precompute_inspection(
        scale,
        n_nodes,
        codes=codes,
        seed=seed,
        skew_factor=skew_factor,
        skew_period=skew_period,
        workload=workload,
    )
    cells = [
        SweepCell(
            key=(code, cores),
            fn=run_point,
            kwargs=dict(
                code=code,
                cores_per_node=cores,
                scale=scale,
                n_nodes=n_nodes,
                machine=machine,
                seed=seed,
                inspection_cache=cache,
                stealing=stealing,
                skew_factor=skew_factor,
                skew_period=skew_period,
                workload=workload,
            ),
        )
        for code in codes
        for cores in core_counts
    ]
    executor = SweepExecutor(
        jobs=jobs, progress=progress, label=f"fig9[{workload}:{scale}]"
    )
    results, stats = executor.run(cells)
    times: dict[str, dict[int, float]] = {
        code: {cores: results[(code, cores)] for cores in core_counts}
        for code in codes
    }
    return Fig9Result(
        times=times,
        core_counts=core_counts,
        scale=scale,
        n_nodes=n_nodes,
        workload=workload,
        sweep_stats=stats,
    )


def fig9_shape_checks(result: Fig9Result) -> list[ShapeCheck]:
    """Evaluate the paper's Figure 9 claims on a sweep.

    The paper's claims probe specific grid points (1, 3, 7, 11, and the
    top core count). On a grid that lacks a probe point — the tiny
    preset sweeps (1, 2, 4) — the affected claim is returned as an
    explicit *skipped* check rather than raising ``KeyError``; the same
    applies to claims about codes the sweep did not run. Every call
    returns the full list of ten checks.
    """
    checks: list[ShapeCheck] = []
    times = result.times
    grid = set(result.core_counts)
    max_cores = max(result.core_counts)
    parsec_codes = [c for c in times if c != "original"]
    parsec_at_max = {c: times[c][max_cores] for c in parsec_codes}

    def evaluate(
        name: str,
        fn: Callable[[], tuple[bool, str]],
        need_cores: Sequence[int] = (),
        need_codes: Sequence[str] = (),
    ) -> None:
        """Run one claim, or record it as skipped when the grid/codes
        lack its probe points."""
        reasons = []
        missing_cores = sorted(c for c in need_cores if c not in grid)
        if missing_cores:
            lacks = "/".join(str(c) for c in missing_cores)
            reasons.append(f"grid lacks {lacks} cores/node")
        missing_codes = sorted(c for c in need_codes if c not in times)
        if missing_codes:
            reasons.append(f"sweep lacks {'/'.join(missing_codes)}")
        if reasons:
            checks.append(
                ShapeCheck(name, True, "skipped: " + "; ".join(reasons), skipped=True)
            )
            return
        passed, detail = fn()
        checks.append(ShapeCheck(name, passed, detail))

    # 1. "scales fairly well up to three cores/node (2.35x)"
    def claim_speedup3() -> tuple[bool, str]:
        speedup3 = times["original"][1] / times["original"][3]
        return 2.0 <= speedup3 <= 2.9, f"measured {speedup3:.2f}x (paper 2.35x)"

    evaluate(
        "original speedup at 3 cores/node ~2.35x",
        claim_speedup3,
        need_cores=(1, 3),
        need_codes=("original",),
    )

    # 2. "little additional improvement until best at 7; deteriorates after"
    def claim_plateau() -> tuple[bool, str]:
        orig = times["original"]
        plateau = min(orig[c] for c in result.core_counts if c >= 7)
        return (
            orig[7] <= 1.06 * plateau,
            f"T(7)={orig[7]:.2f}s vs plateau min {plateau:.2f}s",
        )

    evaluate(
        "original plateaus by 7 cores/node",
        claim_plateau,
        need_cores=(7,),
        need_codes=("original",),
    )

    def claim_deteriorates() -> tuple[bool, str]:
        orig = times["original"]
        return (
            orig[max_cores] >= orig[7] * 0.98 and orig[max_cores] <= orig[7] * 1.25,
            f"T({max_cores})={orig[max_cores]:.2f}s vs T(7)={orig[7]:.2f}s",
        )

    evaluate(
        "original deteriorates at the end (not significantly)",
        claim_deteriorates,
        need_cores=(7,),
        need_codes=("original",),
    )

    # 3. "PaRSEC outperforms the original as soon as three cores are used"
    probe_from_3 = sorted(c for c in grid if c >= 3)

    def claim_wins_from_3() -> tuple[bool, str]:
        wins = all(
            times[c][cores] < times["original"][cores]
            for c in parsec_codes
            for cores in probe_from_3
        )
        at = ", ".join(str(c) for c in probe_from_3)
        return wins, (f"all variants faster at {at}" if wins else "violated")

    if not probe_from_3:
        checks.append(
            ShapeCheck(
                "every PaRSEC variant beats original from 3 cores/node",
                True,
                "skipped: grid lacks any point at 3+ cores/node",
                skipped=True,
            )
        )
    else:
        evaluate(
            "every PaRSEC variant beats original from 3 cores/node",
            claim_wins_from_3,
            need_codes=("original",),
        )

    # 4. "all variants except v1 improve all the way to 15 cores/node"
    def claim_improve_to_end() -> tuple[bool, str]:
        others_improve = all(
            times[c][max_cores] < times[c][11] * 0.95
            for c in parsec_codes
            if c != "v1"
        )
        v1_gain = times["v1"][11] / times["v1"][max_cores] - 1.0
        return (
            others_improve and v1_gain < 0.15,
            f"v1 gain 11->{max_cores} is {100 * v1_gain:.1f}%; others > 5%",
        )

    if 11 in grid and max_cores <= 11:
        checks.append(
            ShapeCheck(
                "v2-v5 keep improving to 15; v1 largely stops",
                True,
                "skipped: grid lacks a point beyond 11 cores/node",
                skipped=True,
            )
        )
    else:
        evaluate(
            "v2-v5 keep improving to 15; v1 largely stops",
            claim_improve_to_end,
            need_cores=(11,),
            need_codes=("v1",),
        )

    # 5. v1 slowest variant, v2 next
    ranked = sorted(parsec_at_max, key=parsec_at_max.get, reverse=True)

    def claim_ranking() -> tuple[bool, str]:
        return (
            ranked[0] == "v1" and ranked[1] == "v2",
            f"slow-to-fast at {max_cores}: {ranked}",
        )

    evaluate(
        "v1 slowest variant at 15; v2 second slowest",
        claim_ranking,
        need_codes=("v1", "v2"),
    )

    # 6. "best variant (v5) achieves 2.1x over fastest original run"
    def claim_v5_vs_original() -> tuple[bool, str]:
        _, best_orig = result.best_original()
        ratio = best_orig / parsec_at_max["v5"]
        return (
            1.8 <= ratio <= 4.0,
            f"measured {ratio:.2f}x (paper 2.1x; our simulated node gives "
            "PaRSEC less scaling friction than Cascade did)",
        )

    evaluate(
        "v5@15 vs best original ~2.1x (band 1.8-4.0)",
        claim_v5_vs_original,
        need_codes=("original", "v5"),
    )

    # 7. "fastest variant is 1.73x faster than the slowest" at 15
    def claim_spread() -> tuple[bool, str]:
        spread = parsec_at_max[ranked[0]] / parsec_at_max[ranked[-1]]
        return 1.3 <= spread <= 2.2, f"measured {spread:.2f}x (paper 1.73x)"

    evaluate(
        "variant spread at 15 cores ~1.73x (band 1.3-2.2)",
        claim_spread,
        need_codes=("v1", "v2", "v3", "v4", "v5"),
    )

    # 8. v5 (one SORT, one WRITE) is the fastest variant, within noise
    def claim_v5_fastest() -> tuple[bool, str]:
        fastest_time = min(parsec_at_max.values())
        return (
            parsec_at_max["v5"] <= fastest_time * 1.02,
            f"v5={parsec_at_max['v5']:.2f}s vs fastest={fastest_time:.2f}s",
        )

    evaluate(
        "v5 fastest variant at 15 (within 2% tie tolerance)",
        claim_v5_fastest,
        need_codes=("v5",),
    )

    # 9. v2 slower than v4 (identical but for priorities)
    def claim_priorities() -> tuple[bool, str]:
        v2_vs_v4 = parsec_at_max["v2"] / parsec_at_max["v4"]
        return v2_vs_v4 > 1.10, f"v2/v4 = {v2_vs_v4:.2f}x"

    evaluate(
        "priorities matter: v2 slower than v4 at 15",
        claim_priorities,
        need_codes=("v2", "v4"),
    )
    return checks
