"""Inter-node work stealing on top of the static round-robin owner map.

Section IV-D places every chain on ``chain_id % n_nodes`` at inspection
time; the legacy CGP path it replaced got load balance "for free" from
NXTVAL work stealing. This module retrofits victim/thief stealing onto
the PTG runtime so the cost of static placement under imbalance can be
both measured and recovered:

- Each node has a :class:`StealAgent`. When a worker finds its ready
  queue empty it notifies the agent, which starts at most one *episode*
  at a time: a deterministic round-robin rotation over the other nodes,
  one simulated ``STEAL_REQ`` per victim, bounded by
  ``StealPolicy.max_rounds`` full rotations.
- The victim's comm thread answers synchronously from the shared
  :class:`StealCoordinator`: if it holds at least
  ``min_victim_backlog`` steal-eligible chains *and* granting still
  leaves every victim core ``min_backlog_ratio`` times the granted
  work, it migrates the heaviest eligible
  one(s) (``task.node`` is rewritten for every chain task) and replies
  ``STEAL_GRANT`` with the ready task keys and the bytes of any operand
  data already resident on the victim; otherwise ``STEAL_DENY``.
- A chain is *steal-eligible* only while its remainder is untouched:
  every not-yet-done migratable task (DFILL/GEMM/REDUCE/SORT/SORT_I)
  still lives on the victim, none is started or claimed by a worker,
  and at least one is ready to run. Done tasks stay where they ran —
  their outputs were already delivered to the (global) task instances,
  so only the remaining suffix migrates and any operand bytes already
  resident on the victim ride the GRANT. READ_A/READ_B stay on the GA
  owner nodes
  and WRITE_C stays on the output owner, so the thief pulls tiles
  through the existing READ machinery (the comm thread re-resolves the
  consumer's node at send time) and the accumulation site never moves —
  with ordered tagged accumulation the final Global Array contents are
  bitwise identical with stealing on or off.

Determinism: every decision is a pure function of simulation state at a
DES event (no timers, no host randomness), victims rotate in node-id
order, chains are selected by (flops desc, chain_id asc), and all
messages ride the simulated network — so a seed reproduces the exact
same steals, and virtual timings are unchanged when stealing is off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.trace import TaskCategory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parsec.runtime import ParsecRuntime
    from repro.parsec.taskclass import TaskInstance

__all__ = ["MIGRATABLE_CLASSES", "StealPolicy", "StealAgent", "StealCoordinator"]

#: task classes that travel with a stolen chain; READ_* stay on the GA
#: owners and WRITE_* on the output owners (the determinism argument)
MIGRATABLE_CLASSES = frozenset({"DFILL", "GEMM", "REDUCE", "SORT", "SORT_I"})

#: opcode tags of steal control messages on the wire
STEAL_OPCODES = frozenset({"STEAL_REQ", "STEAL_GRANT", "STEAL_DENY"})


@dataclass(frozen=True)
class StealPolicy:
    """Knobs of the stealing protocol (all deterministic)."""

    enabled: bool = True
    #: a victim only grants while it still holds at least this many
    #: eligible chains — a hard floor under the work-based guard below
    min_victim_backlog: int = 2
    #: after granting a chain, each victim core must retain at least
    #: this multiple of the granted chain's flops in eligible backlog.
    #: This is what makes end-game steals on a *balanced* workload
    #: (which cost more in grant latency than they recover) die out,
    #: while a node drowning in a few huge chains still sheds them.
    min_backlog_ratio: float = 1.5
    #: chains migrated per successful request
    max_chains_per_steal: int = 1
    #: full victim rotations one idle episode may attempt before
    #: parking until the next idle event
    max_rounds: int = 2
    #: chains whose already-resident operand data exceeds this are not
    #: eligible (None = no cap); forwarded bytes ride the GRANT message
    max_forward_bytes: Optional[float] = None
    #: a chain migrates only when its remaining GEMM seconds exceed
    #: this multiple of the estimated cost of moving its resident
    #: operand bytes — in comm-bound regimes stealing self-disables
    #: instead of adding traffic to an already-saturated fabric
    min_benefit_ratio: float = 2.0
    #: after an episode where every victim denied, an idle node waits
    #: this long (virtual) before probing again — a fully-denied moment
    #: usually means the victims' frontiers were busy, not empty
    retry_backoff_s: float = 2.0e-5
    #: simulated sizes of the control messages
    req_bytes: float = 64.0
    grant_overhead_bytes: float = 256.0


class StealAgent:
    """Per-node thief: turns idle events into bounded steal episodes."""

    def __init__(self, coordinator: "StealCoordinator", node_id: int) -> None:
        self.coordinator = coordinator
        self.node_id = node_id
        #: round-robin position in the victim rotation (persists across
        #: episodes so successive episodes probe different victims first)
        self.cursor = node_id + 1
        self.episode_active = False
        self.requests_left = 0
        #: a backoff timer is pending; workers parked on ``get()`` never
        #: re-notify, so fully-denied episodes must reschedule themselves
        self.retry_pending = False

    def notify_idle(self) -> None:
        """A worker found the ready queue empty; maybe start an episode.

        Called synchronously from worker generators right before they
        park on ``get()``. At most one episode is in flight per node;
        further idle notifications while it runs are no-ops.
        """
        coord = self.coordinator
        runtime = coord.runtime
        if self.episode_active or runtime.done is None or runtime.done.triggered:
            return
        if not coord.cluster.nodes[self.node_id].alive:
            return
        self.episode_active = True
        self.requests_left = coord.policy.max_rounds * (coord.n_nodes - 1)
        self._send_next_request()

    def on_grant(self) -> None:
        """A grant arrived; end the episode but keep probing while the
        stolen chain's operands are still in flight (the ready queue
        stays empty until they land, and parked workers never
        re-notify)."""
        self.episode_active = False
        self._schedule_retry()

    def on_deny(self) -> None:
        self._send_next_request()

    def _send_next_request(self) -> None:
        """Fire a STEAL_REQ at the next live victim, or end the episode."""
        coord = self.coordinator
        nodes = coord.cluster.nodes
        n = coord.n_nodes
        while self.requests_left > 0:
            self.requests_left -= 1
            victim = self.cursor % n
            self.cursor += 1
            if victim == self.node_id or not nodes[victim].alive:
                continue
            coord.note_request()
            coord.send(
                self.node_id,
                victim,
                ("STEAL_REQ", self.node_id, coord.engine.now),
                coord.policy.req_bytes,
            )
            return
        self.episode_active = False
        self._schedule_retry()

    def _schedule_retry(self) -> None:
        """Probe again after a backoff if this node is still starved."""
        if self.retry_pending:
            return
        self.retry_pending = True
        self.coordinator.engine.process(
            self._retry(), name=f"parsec.steal{self.node_id}"
        )

    def _retry(self):
        coord = self.coordinator
        runtime = coord.runtime
        yield coord.engine.timeout(coord.policy.retry_backoff_s)
        self.retry_pending = False
        if runtime.done is None or runtime.done.triggered:
            return
        if not coord.cluster.nodes[self.node_id].alive:
            return
        if runtime.schedulers[self.node_id].ready_depth() == 0:
            self.notify_idle()


class StealCoordinator:
    """Shared protocol state: chain index, message handlers, counters."""

    def __init__(self, runtime: "ParsecRuntime", policy: StealPolicy) -> None:
        self.runtime = runtime
        self.policy = policy
        self.cluster = runtime.cluster
        self.engine = runtime.cluster.engine
        self.metrics = runtime.cluster.metrics
        self.n_nodes = runtime.cluster.n_nodes
        self.agents: dict[int, StealAgent] = {
            node.node_id: StealAgent(self, node.node_id)
            for node in runtime.cluster.nodes
        }
        #: chain_id -> migratable tasks, in sorted instance-key order
        self.chain_tasks: dict[int, list["TaskInstance"]] = {}
        # protocol counters (surfaced on ParsecResult)
        self.requests = 0
        self.granted = 0
        self.denied = 0
        self.chains_migrated = 0
        self.migrated_flops = 0.0
        self.forwarded_bytes = 0.0

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def register_graph(self, graph, md) -> None:
        """Index the instance table by chain (deterministic sweep order)."""
        for key in sorted(graph.instances):
            task = graph.instances[key]
            if task.cls.name in MIGRATABLE_CLASSES:
                self.chain_tasks.setdefault(task.params[0], []).append(task)

    # ------------------------------------------------------------------
    # transport (everything goes through the comm threads + network)
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: tuple, size_bytes: float) -> None:
        self.runtime.comms[src].steal_send(dst, payload, size_bytes)

    def on_message(self, node_id: int, payload: tuple) -> None:
        """Dispatch one incoming steal message (in a comm thread)."""
        opcode = payload[0]
        if opcode == "STEAL_REQ":
            _, thief, t_req = payload
            self._handle_request(node_id, thief, t_req)
        elif opcode == "STEAL_GRANT":
            _, thief, victim, chain_ids, ready_keys, t_req = payload
            self._apply_grant(thief, victim, chain_ids, ready_keys, t_req)
        elif opcode == "STEAL_DENY":
            self.agents[payload[1]].on_deny()

    # ------------------------------------------------------------------
    # victim side
    # ------------------------------------------------------------------
    def _remaining(self, chain_id: int) -> list["TaskInstance"]:
        """The chain's not-yet-done migratable tasks (the stealable suffix)."""
        return [t for t in self.chain_tasks[chain_id] if not t.done]

    def _remaining_flops(self, tasks: list["TaskInstance"]) -> float:
        """GEMM flops left in a chain suffix (what a steal actually moves)."""
        md = self.runtime.md
        total = 0.0
        for task in tasks:
            if task.cls.name == "GEMM":
                g = md.gemm(*task.params)
                total += 2.0 * g.m * g.n * g.k
        return total

    def _eligible_chains(
        self, victim: int
    ) -> list[tuple[int, list, float, float]]:
        """Chains whose remaining suffix is wholly on ``victim`` and
        untouched (no task started or claimed) — the steal-eligible
        frontier, as ``(chain_id, tasks, flops, fwd_bytes)`` tuples.

        A chain needs no *ready* task to migrate: rewriting
        ``task.node`` re-routes all future operand deliveries to the
        thief, which is exactly what relieves a victim whose NIC — not
        its cores — is the bottleneck."""
        machine = self.cluster.machine
        move_rate = 1.0 / machine.comm_pack_bytes_per_s + 1.0 / (
            machine.nic_bw_bytes_per_s
        )
        eligible = []
        for chain_id in self.chain_tasks:
            remaining = self._remaining(chain_id)
            if not remaining:
                continue
            if any(
                t.node != victim
                or t.started
                or t.claimed
                # never re-steal: a second hop would forward the first
                # hop's operand bytes again, and chains could bounce
                # between starved nodes indefinitely
                or t.stolen_from is not None
                for t in remaining
            ):
                continue
            fwd = self._forward_bytes(remaining)
            cap = self.policy.max_forward_bytes
            if cap is not None and fwd > cap:
                continue
            flops = self._remaining_flops(remaining)
            work_s = flops / (machine.gemm_gflops * 1.0e9)
            if work_s < self.policy.min_benefit_ratio * fwd * move_rate:
                continue
            eligible.append((chain_id, remaining, flops, fwd))
        return eligible

    def _forward_bytes(self, tasks: list["TaskInstance"]) -> float:
        """Bytes of operand data already delivered to the chain's tasks
        (resident on the victim, so they must ride the GRANT)."""
        md = self.runtime.md
        total = 0.0
        for task in tasks:
            for flow in task.cls.flows:
                # membership, not value: SYNTH mode delivers None payloads
                if flow.name not in task.inputs:
                    continue
                got = task.inputs[flow.name]
                count = len(got) if isinstance(got, list) else 1
                total += 8.0 * count * float(flow.size_elems(task.params, md))
        return total

    def _handle_request(self, victim: int, thief: int, t_req: float) -> None:
        """Answer one STEAL_REQ synchronously at the victim."""
        policy = self.policy
        runtime = self.runtime
        grantable: list[tuple[int, list, float, float]] = []
        if (
            runtime.done is not None
            and not runtime.done.triggered
            and self.cluster.nodes[thief].alive
        ):
            eligible = self._eligible_chains(victim)
            eligible.sort(key=lambda item: (-item[2], item[0]))
            pool_flops = sum(item[2] for item in eligible)
            pool = len(eligible)
            cores = self.cluster.cores_per_node
            for item in eligible:
                if len(grantable) >= policy.max_chains_per_steal:
                    break
                if pool < policy.min_victim_backlog:
                    break
                # work-based guard: after this grant, each victim core
                # must retain min_backlog_ratio x the granted chain's
                # flops — end-game steals on a balanced workload die
                # out, a node drowning in huge chains still sheds them
                chain_flops = item[2]
                if (
                    pool_flops - chain_flops
                    < policy.min_backlog_ratio * chain_flops * cores
                ):
                    continue  # a lighter chain may still pass
                grantable.append(item)
                pool_flops -= chain_flops
                pool -= 1
        if not grantable:
            self.denied += 1
            if self.metrics.enabled:
                self.metrics.inc("steal.denied")
            self.send(
                victim, thief, ("STEAL_DENY", thief, victim, t_req), policy.req_bytes
            )
            return
        ready_keys: list[tuple] = []
        fwd_bytes = 0.0
        flops = 0.0
        chain_ids = [cid for cid, _, _, _ in grantable]
        for _, tasks, chain_flops, chain_fwd in grantable:
            fwd_bytes += chain_fwd
            flops += chain_flops
            for task in tasks:
                task.node = thief
                task.stolen_from = victim
                if task.pending == 0:
                    ready_keys.append(task.key)
        self.granted += 1
        self.chains_migrated += len(grantable)
        self.migrated_flops += flops
        self.forwarded_bytes += fwd_bytes
        if self.metrics.enabled:
            self.metrics.inc("steal.granted")
            self.metrics.inc("steal.chains_migrated", len(grantable))
            self.metrics.inc("steal.migrated_flops", flops)
            self.metrics.inc("steal.forwarded_bytes", fwd_bytes)
        now = self.engine.now
        self.cluster.trace.record(
            victim,
            self.cluster.cores_per_node,  # the comm thread's trace row
            TaskCategory.STEAL,
            f"steal.grant->node{thief}",
            now,
            now,
            meta={"thief": thief, "chains": chain_ids, "flops": flops},
        )
        self.send(
            victim,
            thief,
            ("STEAL_GRANT", thief, victim, tuple(chain_ids), tuple(ready_keys), t_req),
            policy.grant_overhead_bytes + fwd_bytes,
        )

    # ------------------------------------------------------------------
    # thief side
    # ------------------------------------------------------------------
    def _apply_grant(
        self,
        thief: int,
        victim: int,
        chain_ids: tuple,
        ready_keys: tuple,
        t_req: float,
    ) -> None:
        """Enqueue the stolen ready frontier on the thief.

        Each key is re-checked against current task state: if the thief
        crashed while the GRANT was in flight, the crash handler already
        re-homed (and re-enqueued) the migrated tasks, so a stale GRANT
        must not resurrect them here — that would be the dead-getter
        class of task loss all over again.
        """
        runtime = self.runtime
        assert runtime.graph is not None  # steals only happen mid-execution
        for key in ready_keys:
            task = runtime.graph.instances[key]
            if task.done or task.started or task.claimed or task.node != thief:
                continue
            runtime.schedulers[thief].enqueue(task)
        now = self.engine.now
        if self.metrics.enabled:
            self.metrics.observe("steal.latency_s", now - t_req)
        self.cluster.trace.record(
            thief,
            self.cluster.cores_per_node,
            TaskCategory.STEAL,
            f"steal.recv<-node{victim}",
            now,
            now,
            meta={"victim": victim, "chains": list(chain_ids), "latency_s": now - t_req},
        )
        self.agents[thief].on_grant()

    # ------------------------------------------------------------------
    def note_request(self) -> None:
        self.requests += 1
        if self.metrics.enabled:
            self.metrics.inc("steal.requests")
