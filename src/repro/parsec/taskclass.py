"""Task classes, flows, and dependencies — the PTG building blocks.

A :class:`TaskClass` is the analogue of one task definition in a PaRSEC
``.jdf`` file (Figure 1 of the paper): a name, a parameter tuple, a
symbolic execution domain, a placement rule, a priority expression, and
a set of named :class:`Flow` s whose guarded :class:`Dep` s point at
other task classes. Everything symbolic is a plain Python callable over
``(params, metadata)``, which is exactly the role the PTG's inline C
expressions play.

The task *body* is a generator ``run(ctx)`` driven inside the simulated
worker thread. It charges its cost through :meth:`TaskContext.charge`
and, in REAL data mode, moves actual NumPy data from ``ctx.inputs`` to
``ctx.outputs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional

from repro.sim.trace import TaskCategory
from repro.util.errors import DataflowError

__all__ = ["FlowMode", "Dep", "Flow", "TaskClass", "TaskInstance", "TaskContext"]

Params = tuple
Guard = Callable[[Params, Any], bool]
ParamMap = Callable[[Params, Any], Params]
Transform = Callable[[Any, Params, Any], Any]


class FlowMode(str, Enum):
    """Access mode of a flow, as in the PTG syntax (READ / RW / WRITE)."""

    READ = "read"
    RW = "rw"
    WRITE = "write"


@dataclass(frozen=True)
class Dep:
    """One guarded dataflow arrow between task classes.

    As an *input* dep on flow F of class X: "X(p).F <- target(map(p)).flow".
    As an *output* dep: "X(p).F -> target(map(p)).flow".

    ``transform`` (outputs only) reshapes/slices the produced data for
    this particular consumer — how a SORT task sends each WRITE_C
    instance "only the data that is relevant to the node on which the
    task instance executes" (Figure 8).
    ``size_elems`` overrides the transferred element count for message
    cost modelling when the transform changes the payload size.
    """

    target_class: str
    param_map: ParamMap
    flow: str
    guard: Optional[Guard] = None
    transform: Optional[Transform] = None
    size_elems: Optional[Callable[[Params, Any], int]] = None

    def active(self, params: Params, md: Any) -> bool:
        return True if self.guard is None else bool(self.guard(params, md))


@dataclass
class Flow:
    """A named piece of data flowing through a task class.

    ``size_elems(params, md)`` gives the element count of the flow's
    data for one task instance (used to cost remote transfers).
    """

    name: str
    mode: FlowMode
    size_elems: Callable[[Params, Any], int]
    inputs: list[Dep] = field(default_factory=list)
    outputs: list[Dep] = field(default_factory=list)


class TaskClass:
    """One parameterized family of tasks."""

    def __init__(
        self,
        name: str,
        params: tuple[str, ...],
        domain: Callable[[Any], Any],
        placement: Callable[[Params, Any], int],
        run: Callable[["TaskContext"], Any],
        flows: list[Flow],
        category: TaskCategory = TaskCategory.OTHER,
        priority: Optional[Callable[[Params, Any], float]] = None,
        accelerated: bool = False,
    ) -> None:
        self.name = name
        self.params = params
        self.domain = domain
        self.placement = placement
        self.run = run
        self.flows = flows
        self.category = category
        self.priority = priority
        #: True if instances may run on an accelerator when the node
        #: has one (the body must honour ``ctx.device``)
        self.accelerated = accelerated
        self._flow_by_name = {flow.name: flow for flow in flows}
        if len(self._flow_by_name) != len(flows):
            raise DataflowError(f"duplicate flow names in task class {name}")

    def flow(self, name: str) -> Flow:
        try:
            return self._flow_by_name[name]
        except KeyError:
            raise DataflowError(f"{self.name} has no flow {name!r}") from None

    def input_count(self, params: Params, md: Any) -> int:
        """Number of dataflow deliveries this instance must wait for."""
        count = 0
        for flow in self.flows:
            for dep in flow.inputs:
                guard = dep.guard
                if guard is None or guard(params, md):
                    count += 1
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskClass({self.name}{self.params})"


class TaskInstance:
    """One concrete task: a class plus a parameter binding."""

    __slots__ = (
        "cls",
        "params",
        "node",
        "priority",
        "pending",
        "inputs",
        "input_tags",
        "started",
        "done",
        "epoch",
        "committed",
        "claimed",
        "stolen_from",
        "_label",
    )

    def __init__(
        self, cls: TaskClass, params: Params, node: int, priority: float, pending: int
    ) -> None:
        self.cls = cls
        self.params = params
        self.node = node
        self.priority = priority
        self.pending = pending
        self.inputs: dict[str, Any] = {}
        self.input_tags: dict[str, Any] = {}
        self.started = False
        self.done = False
        #: bumped when a crash re-homes the task; a worker whose captured
        #: epoch no longer matches aborts its (now stale) execution
        self.epoch = 0
        #: set by TaskContext.commit() in the same synchronous step as
        #: the body's irreversible side effects; committed tasks are
        #: never aborted or re-homed
        self.committed = False
        #: set synchronously by the worker that pops the task from a
        #: ready queue; a claimed task is pinned to its node (the work
        #: stealing layer never migrates it). Cleared on crash re-homing.
        self.claimed = False
        #: node the task was stolen from, when the stealing layer
        #: migrated its chain (None = never migrated); trace-only.
        self.stolen_from: Optional[int] = None
        self._label: Optional[str] = None

    @property
    def key(self) -> tuple[str, Params]:
        return (self.cls.name, self.params)

    @property
    def label(self) -> str:
        # built lazily and cached: the label is re-read on every trace
        # record, fault decision, and retry key for the same instance
        label = self._label
        if label is None:
            label = self._label = f"{self.cls.name}{self.params}"
        return label

    def receive(self, flow: str, data: Any, tag: Any = None) -> bool:
        """Satisfy one input delivery; returns True if now ready.

        ``tag`` identifies the producer (the sending task's key); it is
        stored alongside the data so order-sensitive consumers can
        process multi-delivery flows in a canonical producer order
        rather than in arrival order.
        """
        if self.done or self.started:
            raise DataflowError(f"delivery to already-running task {self.label}")
        if self.pending <= 0:
            raise DataflowError(f"unexpected delivery to {self.label} on {flow!r}")
        # multiple deliveries to one flow accumulate into a list (the
        # single-WRITE variants receive several sorted matrices)
        if flow in self.inputs:
            existing = self.inputs[flow]
            if not isinstance(existing, list):
                existing = [existing]
                self.input_tags[flow] = [self.input_tags.get(flow)]
            existing.append(data)
            self.inputs[flow] = existing
            self.input_tags[flow].append(tag)
        else:
            self.inputs[flow] = data
            self.input_tags[flow] = tag
        self.pending -= 1
        return self.pending == 0

    def input_tag_list(self, flow: str) -> list:
        """Producer tags of ``flow``, parallel to its delivery list."""
        tags = self.input_tags.get(flow)
        if not isinstance(tags, list):
            tags = [tags]
        return tags

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskInstance({self.label} @node{self.node})"


class TaskContext:
    """What a task body sees while it runs."""

    __slots__ = (
        "task",
        "md",
        "cluster",
        "node",
        "thread",
        "device",
        "timer",
        "outputs",
    )

    def __init__(
        self,
        task: TaskInstance,
        md: Any,
        cluster,
        node,
        thread: int,
        device: str = "cpu",
        timer=None,
    ) -> None:
        self.task = task
        self.md = md
        self.cluster = cluster
        self.node = node
        self.thread = thread
        #: 'cpu' or 'gpu' — which worker kind is executing the body
        self.device = device
        #: the worker's reusable timeline channel (None outside a
        #: scheduler worker); charge() arms it instead of allocating
        #: a Timeout per cost
        self.timer = timer
        self.outputs: dict[str, Any] = {}

    @property
    def params(self) -> Params:
        return self.task.params

    @property
    def inputs(self) -> dict[str, Any]:
        return self.task.inputs

    @property
    def machine(self):
        return self.cluster.machine

    @property
    def real(self) -> bool:
        """True when actual NumPy data flows through the system."""
        return self.cluster.data_mode.value == "real"

    def charge(self, cost):
        """Generator helper: burn one OpCost on this node/thread.

        CPU time is exclusive core time (scaled by any straggler window
        active on the node); bytes go through the node's shared memory
        bandwidth. The enclosing task span is traced by the worker, so
        charges stay untraced here.
        """
        if cost.cpu > 0:
            scaled = cost.cpu * self.node.cpu_scale()
            if self.timer is not None:
                yield self.timer.after(scaled)
            else:
                yield self.cluster.engine.timeout(scaled)
        if cost.bytes > 0:
            yield self.node.membw.transfer(cost.bytes)

    def commit(self) -> None:
        """Mark the task's side effects as irrevocably published.

        Bodies with external effects (the WRITE tasks accumulating into
        a Global Array) call this in the *same synchronous step* as the
        effects themselves. A crash before the commit aborts a clean,
        effect-free body; after it, the task is allowed to run to
        completion even on a dead node (its writes are already in
        flight) and is never re-executed — exactly-once semantics.
        """
        self.task.committed = True
