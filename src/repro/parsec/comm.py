"""The communication engine: one dedicated comm thread per node.

"The actual data transfer calls are issued by the runtime system (...
by a specialized communication thread that runs on a dedicated core)."

Each node runs one comm-thread process serving a single FIFO mailbox
that carries both *outgoing send requests* (enqueued by completing
tasks on this node) and *incoming network messages* (delivered by the
transport). Every item costs the per-message software overhead; sends
then go to the NIC asynchronously (the comm thread does not block on
the wire — that is what lets PaRSEC pipeline transfers behind
computation, and what floods the network when no priorities throttle
the READ tasks, Figure 11).
"""

from __future__ import annotations

import sys
from typing import Any, Optional, TYPE_CHECKING

from repro.sim.network import BatchPayload, Coalescer, Message
from repro.sim.timeline import KIND_COMM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parsec.runtime import ParsecRuntime

__all__ = ["CommThread"]

_TAG_CACHE: dict[str, str] = {}


def _dataflow_tag(class_name: str) -> str:
    """Interned ``parsec:<class>`` wire tag (one string per task class,
    however many messages carry it)."""
    tag = _TAG_CACHE.get(class_name)
    if tag is None:
        tag = _TAG_CACHE[class_name] = sys.intern(f"parsec:{class_name}")
    return tag


class CommThread:
    """Per-node communication service.

    The inbox name carries the runtime's instance id: several PaRSEC
    sections may execute on the same simulated machine over a program's
    lifetime (the NWChem integration driver runs one per ported
    kernel), and a finished runtime's comm threads — which park forever
    on their inbox — must never steal a later runtime's messages.
    """

    def __init__(self, runtime: "ParsecRuntime", node) -> None:
        self.runtime = runtime
        self.node = node
        self.engine = runtime.cluster.engine
        self.inbox_name = f"parsec.comm#{runtime.instance_id}"
        self.ctrl_name = f"parsec.ctrl#{runtime.instance_id}"
        self.messages_processed = 0
        # dataflow-only coalescing: the steal control plane keeps its
        # dedicated latency-critical lane un-batched
        self._coalescer: Optional[Coalescer] = None
        if runtime.coalescing is not None:
            self._coalescer = Coalescer(
                runtime.cluster.network,
                node.node_id,
                runtime.coalescing,
                inbox=self.inbox_name,
                batch_tag="parsec:batch",
            )
        self.engine.process(
            self._serve(), name=f"parsec.comm{node.node_id}#{runtime.instance_id}"
        )
        if runtime.steal_enabled:
            # latency-critical control plane: steal REQ/GRANT/DENY must
            # not queue behind the victim's data-plane backlog, or every
            # reply arrives after the imbalance it could have fixed.
            # Only spawned under an active StealPolicy so the extra
            # process cannot perturb non-stealing virtual timings.
            self.engine.process(
                self._serve_ctrl(),
                name=f"parsec.ctrl{node.node_id}#{runtime.instance_id}",
            )

    def send(
        self,
        consumer_key: tuple,
        flow: str,
        data: Any,
        size_bytes: float,
        tag: Any = None,
    ) -> None:
        """Enqueue an outgoing transfer (called at task completion).

        ``tag`` identifies the producing task; it rides along with the
        payload so the consumer can order multi-delivery flows
        canonically regardless of network arrival order."""
        self.node.inbox(self.inbox_name).put(
            ("send", consumer_key, flow, data, size_bytes, tag)
        )

    def steal_send(self, dest_node: int, payload: tuple, size_bytes: float) -> None:
        """Enqueue an outgoing work-stealing control message.

        Steal traffic rides the control plane and the shared NIC; it
        pays the same per-message software overhead and pack rate as
        dataflow, but is served by its own thread."""
        self.node.inbox(self.ctrl_name).put(("steal", dest_node, payload, size_bytes))

    def _serve_ctrl(self):
        """The steal control plane: serve REQ/GRANT/DENY serially."""
        runtime = self.runtime
        machine = runtime.cluster.machine
        inbox = self.node.inbox(self.ctrl_name)
        network = runtime.cluster.network
        timer = self.engine.timeline.timer(KIND_COMM, node=self.node.node_id)
        while True:
            # synchronous fast path: pop waiting mail without a SimEvent
            # or lane hop (see _serve)
            ok, item = inbox.try_get()
            if not ok:
                item = yield inbox.get()
            size_bytes = item.size_bytes if isinstance(item, Message) else item[3]
            service = machine.comm_thread_overhead_s + (
                size_bytes / machine.comm_pack_bytes_per_s
            )
            if service > 0:
                yield timer.after(service)
            self.messages_processed += 1
            if isinstance(item, Message):
                assert runtime.stealing is not None  # ctrl plane implies stealing
                runtime.stealing.on_message(self.node.node_id, item.payload)
            else:
                _, dest_node, payload, size_bytes = item
                network.send(
                    self.node.node_id,
                    dest_node,
                    size_bytes,
                    payload,
                    inbox=self.ctrl_name,
                    tag="parsec:steal",
                )

    def _serve(self):
        runtime = self.runtime
        machine = runtime.cluster.machine
        inbox = self.node.inbox(self.inbox_name)
        network = runtime.cluster.network
        # per-message service timeouts ride one reusable timeline channel
        # (this thread serves serially, so at most one is outstanding)
        timer = self.engine.timeline.timer(KIND_COMM, node=self.node.node_id)
        overhead = machine.comm_thread_overhead_s
        pack_rate = machine.comm_pack_bytes_per_s
        while True:
            # synchronous fast path: pop waiting mail without a SimEvent
            # or lane hop. The service instant is unchanged; only the
            # same-instant interleaving differs, and the golden digests
            # pin that it is not observable.
            ok, item = inbox.try_get()
            if not ok:
                item = yield inbox.get()
            if isinstance(item, Message):
                size_bytes = item.size_bytes
            else:
                size_bytes = item[4]
            # serial per-message handling: fixed overhead plus staging
            # the payload through PaRSEC-managed buffers
            service = overhead + size_bytes / pack_rate
            if service > 0:
                yield timer.after(service)
            self.messages_processed += 1
            assert runtime.graph is not None  # comm traffic implies a live graph
            if isinstance(item, Message) and isinstance(item.payload, BatchPayload):
                # a coalesced dataflow batch: the service charge above
                # already covered the summed bytes with ONE per-message
                # overhead; deliver the items in submit order
                for sub, sub_bytes in zip(item.payload.items, item.payload.sizes):
                    consumer_key, flow, data, tag = sub
                    consumer_node = runtime.graph.instances[consumer_key].node
                    if consumer_node != self.node.node_id:
                        # a moved consumer forwards its item alone
                        if runtime.cluster.metrics.enabled:
                            runtime.cluster.metrics.inc("parsec.forwarded")
                        network.send(
                            self.node.node_id,
                            consumer_node,
                            sub_bytes,
                            sub,
                            inbox=self.inbox_name,
                            tag=_dataflow_tag(consumer_key[0]),
                        )
                        continue
                    runtime._deliver(consumer_key, flow, data, tag=tag)
                continue
            if isinstance(item, Message):
                # incoming: payload is (consumer_key, flow, data, tag)
                consumer_key, flow, data, tag = item.payload
                consumer_node = runtime.graph.instances[consumer_key].node
                if consumer_node != self.node.node_id:
                    # the consumer moved while this message was in flight
                    # (stolen chain or crash re-homing): forward one hop
                    # instead of teleporting the data to the new owner
                    if runtime.cluster.metrics.enabled:
                        runtime.cluster.metrics.inc("parsec.forwarded")
                    network.send(
                        self.node.node_id,
                        consumer_node,
                        item.size_bytes,
                        item.payload,
                        inbox=self.inbox_name,
                        tag=_dataflow_tag(consumer_key[0]),
                    )
                    continue
                runtime._deliver(consumer_key, flow, data, tag=tag)
            else:
                _, consumer_key, flow, data, size_bytes, tag = item
                # the consumer's home node is re-resolved at send time:
                # a crash may have re-homed it since the producer ran
                consumer_node = runtime.graph.instances[consumer_key].node
                runtime.bytes_remote += size_bytes
                runtime.messages_remote += 1
                metrics = runtime.cluster.metrics
                if metrics.enabled:
                    metrics.inc("parsec.messages_remote")
                    metrics.inc("parsec.bytes_remote", size_bytes)
                if self._coalescer is not None:
                    self._coalescer.submit(
                        consumer_node,
                        size_bytes,
                        (consumer_key, flow, data, tag),
                        tag=_dataflow_tag(consumer_key[0]),
                    )
                else:
                    network.send(
                        self.node.node_id,
                        consumer_node,
                        size_bytes,
                        (consumer_key, flow, data, tag),
                        inbox=self.inbox_name,
                        tag=_dataflow_tag(consumer_key[0]),
                    )
