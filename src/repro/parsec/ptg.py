"""The PTG container and its instantiation into a task graph.

A :class:`PTG` is a set of task classes. :meth:`PTG.instantiate`
evaluates every class's symbolic domain against the metadata (the
product of the inspection phase) and materializes the
:class:`TaskInstance` table, computing each instance's placement,
priority, and pending input count.

Instantiation also *validates the dataflow*: every active input dep
must be fed by exactly the right number of active output deps on the
producer side. A mismatch — a task that would wait forever, or a
delivery nobody expects — is a programming error in the PTG and raises
:class:`~repro.util.errors.DataflowError` up front rather than showing
up as a simulation that silently never terminates.

Note on memory data: in real PaRSEC, flows can also read/write
distributed memory directly (``READ A <- A input_A(...)`` in Figure 1).
Here such memory endpoints live in the task *bodies* (READ tasks touch
the Global Array via local access, WRITE tasks accumulate into it),
which matches the paper's description of passing GA locations to PaRSEC
as opaque IDs resolved at execution time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.parsec.taskclass import TaskClass, TaskInstance
from repro.util.errors import DataflowError

__all__ = ["PTG", "TaskGraph"]


class PTG:
    """An ordered registry of task classes."""

    def __init__(self, name: str = "ptg") -> None:
        self.name = name
        self.classes: dict[str, TaskClass] = {}

    def add(self, task_class: TaskClass) -> TaskClass:
        """Register a class; names must be unique."""
        if task_class.name in self.classes:
            raise DataflowError(f"task class {task_class.name!r} defined twice")
        self.classes[task_class.name] = task_class
        return task_class

    def task_class(self, name: str) -> TaskClass:
        try:
            return self.classes[name]
        except KeyError:
            raise DataflowError(f"PTG {self.name!r} has no class {name!r}") from None

    def instantiate(self, md: Any, n_nodes: int, validate: bool = True) -> "TaskGraph":
        """Materialize the instance table for metadata ``md``."""
        instances: dict[tuple, TaskInstance] = {}
        for cls in self.classes.values():
            for params in cls.domain(md):
                params = tuple(params)
                node = cls.placement(params, md)
                if not 0 <= node < n_nodes:
                    raise DataflowError(
                        f"{cls.name}{params} placed on invalid node {node}"
                    )
                priority = float(cls.priority(params, md)) if cls.priority else 0.0
                instance = TaskInstance(
                    cls, params, node, priority, cls.input_count(params, md)
                )
                if instance.key in instances:
                    raise DataflowError(f"duplicate task instance {instance.label}")
                instances[instance.key] = instance
        graph = TaskGraph(self, md, instances)
        if validate:
            graph.validate()
        return graph


class TaskGraph:
    """The materialized instance table plus dataflow bookkeeping."""

    def __init__(self, ptg: PTG, md: Any, instances: dict[tuple, TaskInstance]):
        self.ptg = ptg
        self.md = md
        self.instances = instances

    def __len__(self) -> int:
        return len(self.instances)

    def instance(self, class_name: str, params: tuple) -> TaskInstance:
        try:
            return self.instances[(class_name, tuple(params))]
        except KeyError:
            raise DataflowError(
                f"no instance {class_name}{tuple(params)} in task graph"
            ) from None

    def by_class(self) -> dict[str, list[TaskInstance]]:
        groups: dict[str, list[TaskInstance]] = defaultdict(list)
        for instance in self.instances.values():
            groups[instance.cls.name].append(instance)
        return dict(groups)

    def initially_ready(self) -> list[TaskInstance]:
        """Instances with no pending inputs (in creation order)."""
        return [t for t in self.instances.values() if t.pending == 0]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every expected delivery has exactly one producer.

        Iterates dep-outer / instance-inner so each dep's guard and
        param map are bound once per class rather than once per
        instance — validation runs on every instantiate, so its
        constant factor shows up in sweep wall clock.
        """
        incoming: dict[tuple, int] = defaultdict(int)
        md = self.md
        instances = self.instances
        groups: dict[str, list[TaskInstance]] = defaultdict(list)
        for instance in instances.values():
            groups[instance.cls.name].append(instance)
        for group in groups.values():
            cls = group[0].cls
            for flow in cls.flows:
                for dep in flow.outputs:
                    guard = dep.guard
                    param_map = dep.param_map
                    target_class = dep.target_class
                    target_flow = dep.flow
                    for instance in group:
                        params = instance.params
                        if guard is not None and not guard(params, md):
                            continue
                        consumer_key = (target_class, tuple(param_map(params, md)))
                        if consumer_key not in instances:
                            raise DataflowError(
                                f"{instance.label}.{flow.name} targets missing "
                                f"task {target_class}{consumer_key[1]}"
                            )
                        incoming[(consumer_key, target_flow)] += 1
        for instance in instances.values():
            expected = instance.pending
            actual = sum(
                incoming.get((instance.key, flow.name), 0)
                for flow in instance.cls.flows
            )
            if actual != expected:
                raise DataflowError(
                    f"{instance.label} expects {expected} deliveries but the "
                    f"dataflow produces {actual}"
                )
