"""PaRSEC: a Parameterized-Task-Graph, dataflow-driven distributed runtime.

This package reproduces the execution model of the PaRSEC framework as
the paper uses it:

- **PTG representation** (:mod:`repro.parsec.taskclass`,
  :mod:`repro.parsec.ptg`): task *classes* parameterized over symbolic
  domains, with guarded dataflow dependencies between classes and
  priority expressions — the compact equivalent of the ``.jdf`` snippets
  in the paper's Figures 1 and 2. Domains, guards, placements, and
  priorities are all callables over a *metadata* object filled by an
  inspection phase, mirroring how "PaRSEC can dynamically look them up
  in metadata structures filled by an inspection phase".
- **Event-driven runtime** (:mod:`repro.parsec.runtime`): when a task
  completes, its output dataflow is examined and successor inputs are
  satisfied — locally by pointer, remotely through the communication
  engine. "When the hardware is busy executing application code, the
  runtime does not incur overhead."
- **Per-node scheduler** (:mod:`repro.parsec.scheduler`): one worker per
  compute core popping a shared priority ready-queue (priorities are
  relative; ties FIFO). Tasks never migrate between threads once
  started.
- **Communication thread** (:mod:`repro.parsec.comm`): a dedicated
  per-node service (the paper runs it "on a dedicated core") that
  serializes message processing; all communication is implicit.
- **Work stealing** (:mod:`repro.parsec.stealing`): an optional
  victim/thief layer over the static round-robin chain placement —
  idle nodes send simulated ``STEAL_REQ`` messages through the comm
  threads and untouched chains migrate whole; READ and WRITE tasks
  stay on the Global Array owners, so results are bitwise identical
  with stealing on or off.
"""

from repro.parsec.taskclass import (
    Dep,
    Flow,
    FlowMode,
    TaskClass,
    TaskContext,
    TaskInstance,
)
from repro.parsec.ptg import PTG, TaskGraph
from repro.parsec.runtime import ParsecResult, ParsecRuntime
from repro.parsec.scheduler import SchedulerPolicy
from repro.parsec.stealing import StealCoordinator, StealPolicy
from repro.parsec.dtd import DtdRuntime, DtdResult, AccessMode, DataHandle

__all__ = [
    "Dep",
    "Flow",
    "FlowMode",
    "TaskClass",
    "TaskContext",
    "TaskInstance",
    "PTG",
    "TaskGraph",
    "ParsecResult",
    "ParsecRuntime",
    "SchedulerPolicy",
    "StealCoordinator",
    "StealPolicy",
    "DtdRuntime",
    "DtdResult",
    "AccessMode",
    "DataHandle",
]
