"""Dynamic Task Discovery (DTD) — the alternative the paper contrasts.

Section VI: other task engines "largely rely on some form of 'Dynamic
Task Discovery (DTD)', or in other words building the entire DAG of
execution in memory using skeleton programs. While PaRSEC also uses an
inspector phase to collect information about the meta data of the
program, this is hardly equivalent ... Our inspector phase does not
build a DAG in memory and does not need to discover the way tasks
depend on one another by matching input and output data."

This module implements exactly that contrasted model so the difference
can be measured: a *skeleton program* inserts tasks one by one, each
declaring data accesses (READ / RW / WRITE on named :class:`DataHandle`
objects); the runtime infers dependencies by matching accesses against
the last writer and intervening readers of each handle, materializing
every edge of the DAG in memory. Execution then proceeds over the same
simulated cluster with per-node priority schedulers and communication
threads, like the PTG runtime.

The measurable costs of the DTD approach (reported by
:class:`DtdResult` and compared in the ablation benchmark):

- the skeleton's serial insertion time (every task passes through one
  master thread, charged per insert);
- the materialized DAG: one record per task plus one per edge, versus
  the PTG's O(task classes) symbolic representation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs.result import RunResult
from repro.sim.cluster import Cluster
from repro.sim.engine import SimEvent
from repro.sim.network import Message
from repro.sim.queues import PriorityStore
from repro.sim.timeline import KIND_COMM, KIND_TASK
from repro.sim.trace import TaskCategory
from repro.util.errors import DataflowError

__all__ = ["AccessMode", "DataHandle", "DtdTask", "DtdContext", "DtdRuntime", "DtdResult"]

#: serial cost of inserting one task through the skeleton program
DTD_INSERT_OVERHEAD_S = 4.0e-6


class AccessMode:
    READ = "read"
    RW = "rw"
    WRITE = "write"


class DataHandle:
    """One named piece of data tasks communicate through.

    Tracks the version chain the dependence matcher needs: the last
    writer task and the readers of the current version.
    """

    __slots__ = ("key", "size_elems", "home_node", "value", "_last_writer", "_readers")

    def __init__(self, key: str, size_elems: int, home_node: int, value: Any = None):
        self.key = key
        self.size_elems = size_elems
        self.home_node = home_node
        self.value = value
        self._last_writer: Optional["DtdTask"] = None
        self._readers: list["DtdTask"] = []

    @property
    def nbytes(self) -> float:
        return 8.0 * self.size_elems

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataHandle({self.key!r}, n={self.size_elems})"


class DtdTask:
    """One inserted task with its materialized dependence edges."""

    __slots__ = (
        "task_id",
        "name",
        "body",
        "accesses",
        "node",
        "priority",
        "category",
        "successors",
        "pending",
        "done",
    )

    def __init__(self, task_id, name, body, accesses, node, priority, category):
        self.task_id = task_id
        self.name = name
        self.body = body
        self.accesses = accesses  # list of (handle, mode)
        self.node = node
        self.priority = priority
        self.category = category
        self.successors: list["DtdTask"] = []
        self.pending = 0
        self.done = False


class DtdContext:
    """What a DTD task body sees: its data by handle key."""

    __slots__ = ("task", "cluster", "node", "thread", "data", "timer")

    def __init__(
        self, task: DtdTask, cluster: Cluster, node, thread: int, timer=None
    ):
        self.task = task
        self.cluster = cluster
        self.node = node
        self.thread = thread
        #: handle.key -> current value (REAL mode) or None
        self.data = {h.key: h.value for h, _ in task.accesses}
        #: the worker's reusable timeline channel (see TaskContext.timer)
        self.timer = timer

    @property
    def machine(self):
        return self.cluster.machine

    @property
    def real(self) -> bool:
        return self.cluster.data_mode.value == "real"

    def write(self, key: str, value: Any) -> None:
        """Publish a new value for a handle this task writes."""
        self.data[key] = value

    def charge(self, cost):
        """Generator helper: burn one OpCost on this node/thread."""
        if cost.cpu > 0:
            if self.timer is not None:
                yield self.timer.after(cost.cpu)
            else:
                yield self.cluster.engine.timeout(cost.cpu)
        if cost.bytes > 0:
            yield self.node.membw.transfer(cost.bytes)


@dataclass
class DtdResult(RunResult):
    """Execution outcome plus the DTD model's bookkeeping costs."""

    execution_time: float
    n_tasks: int
    n_edges: int
    insertion_time: float  # virtual serial time the skeleton spent
    messages_remote: int = 0
    bytes_remote: float = 0.0

    @property
    def runtime_name(self) -> str:
        return "dtd"


class DtdRuntime:
    """Insert-then-execute runtime with data-access dependence matching."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.instance_id = next(_dtd_ids)
        self._tasks: list[DtdTask] = []
        self._handles: dict[str, DataHandle] = {}
        self._edges = 0
        self._executing = False
        # execution state
        self._ready: list[PriorityStore] = []
        self._completed = 0
        self._done: Optional[SimEvent] = None
        self.messages_remote = 0
        self.bytes_remote = 0.0

    # ------------------------------------------------------------------
    # skeleton-program API
    # ------------------------------------------------------------------
    def data(
        self, key: str, size_elems: int, home_node: int = 0, value: Any = None
    ) -> DataHandle:
        """Declare (or look up) a data handle."""
        handle = self._handles.get(key)
        if handle is None:
            handle = DataHandle(key, size_elems, home_node, value)
            self._handles[key] = handle
        return handle

    def insert_task(
        self,
        name: str,
        body: Callable[[DtdContext], Any],
        accesses: list[tuple[DataHandle, str]],
        node: int,
        priority: float = 0.0,
        category: TaskCategory = TaskCategory.OTHER,
    ) -> DtdTask:
        """Insert one task; dependencies are inferred from ``accesses``.

        READ depends on the handle's last writer; WRITE/RW additionally
        depends on every reader of the current version (the
        anti-dependence that keeps reads coherent).
        """
        if self._executing:
            raise DataflowError("cannot insert tasks after execute()")
        task = DtdTask(
            len(self._tasks), name, body, accesses, node, priority, category
        )
        for handle, mode in accesses:
            if mode not in (AccessMode.READ, AccessMode.RW, AccessMode.WRITE):
                raise DataflowError(f"unknown access mode {mode!r}")
            predecessors: list[DtdTask] = []
            if mode == AccessMode.READ:
                if handle._last_writer is not None:
                    predecessors.append(handle._last_writer)
                handle._readers.append(task)
            else:  # RW / WRITE
                if handle._last_writer is not None:
                    predecessors.append(handle._last_writer)
                predecessors.extend(handle._readers)
                handle._last_writer = task
                handle._readers = []
            for predecessor in predecessors:
                if predecessor is task or predecessor.done:
                    continue
                predecessor.successors.append(task)
                task.pending += 1
                self._edges += 1
        self._tasks.append(task)
        return task

    @property
    def n_tasks(self) -> int:
        return len(self._tasks)

    @property
    def n_edges(self) -> int:
        return self._edges

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self) -> DtdResult:
        """Run the materialized DAG to completion."""
        if self._executing:
            raise DataflowError("execute() called twice")
        self._executing = True
        start_time = self.engine.now
        # the skeleton program inserted every task serially on a master
        # thread — charge that as up-front virtual time
        insertion_time = DTD_INSERT_OVERHEAD_S * len(self._tasks)
        self._done = self.engine.event()
        if not self._tasks:
            self._done.succeed()
        for node in self.cluster.nodes:
            store = PriorityStore(self.engine, name=f"dtd.ready{node.node_id}")
            self._ready.append(store)
            for thread in range(self.cluster.cores_per_node):
                self.engine.process(
                    self._worker(node, thread),
                    name=f"dtd.worker{node.node_id}.{thread}#{self.instance_id}",
                )
        self.engine.process(self._seed(insertion_time), name="dtd.master")
        end_time = self.cluster.run()
        if self._done is not None and not self._done.triggered:
            stuck = [t.name for t in self._tasks if not t.done]
            raise DataflowError(
                f"DTD execution stalled with {len(stuck)} unfinished tasks "
                f"(first few: {stuck[:5]})"
            )
        return DtdResult(
            execution_time=end_time - start_time,
            n_tasks=len(self._tasks),
            n_edges=self._edges,
            insertion_time=insertion_time,
            messages_remote=self.messages_remote,
            bytes_remote=self.bytes_remote,
        )

    def _seed(self, insertion_time: float):
        if insertion_time > 0:
            yield self.engine.timeout(insertion_time)
        for task in self._tasks:
            if task.pending == 0:
                self._ready[task.node].put(task, priority=task.priority)

    def _worker(self, node, thread: int):
        machine = self.cluster.machine
        timer = self.engine.timeline.timer(KIND_TASK, node=node.node_id)
        while True:
            task: DtdTask = yield self._ready[node.node_id].get()
            if machine.task_overhead_s > 0:
                yield timer.after(machine.task_overhead_s)
            context = DtdContext(task, self.cluster, node, thread, timer=timer)
            t_start = self.engine.now
            yield from task.body(context)
            node.trace.record(
                node.node_id, thread, task.category, task.name, t_start, self.engine.now
            )
            # publish written values back to the handles
            for handle, mode in task.accesses:
                if mode != AccessMode.READ:
                    handle.value = context.data.get(handle.key)
            task.done = True
            self._on_complete(task)

    def _on_complete(self, task: DtdTask) -> None:
        for successor in task.successors:
            successor.pending -= 1
            if successor.pending == 0:
                self._activate(task, successor)
        self._completed += 1
        if self._completed == len(self._tasks):
            self._done.succeed()

    def _activate(self, producer: DtdTask, successor: DtdTask) -> None:
        if successor.node == producer.node:
            self._ready[successor.node].put(successor, priority=successor.priority)
            return
        # ship the successor's read data that lives on the producer's
        # side; model as one message sized by the successor's inputs
        size_bytes = sum(
            handle.nbytes
            for handle, mode in successor.accesses
            if mode != AccessMode.WRITE
        )
        self.messages_remote += 1
        self.bytes_remote += size_bytes
        inbox = f"dtd.recv#{self.instance_id}"
        node = self.cluster.nodes[successor.node]
        if self.instance_id not in node._dtd_receivers:
            node._dtd_receivers.add(self.instance_id)
            self.engine.process(
                self._receiver(node, inbox), name=f"dtd.recv{node.node_id}"
            )
        self.cluster.network.send(
            producer.node,
            successor.node,
            size_bytes,
            successor,
            inbox=inbox,
            tag=f"dtd:{successor.name}",
        )

    def _receiver(self, node, inbox_name: str):
        machine = self.cluster.machine
        inbox = node.inbox(inbox_name)
        timer = self.engine.timeline.timer(KIND_COMM, node=node.node_id)
        while True:
            message: Message = yield inbox.get()
            service = machine.comm_thread_overhead_s + (
                message.size_bytes / machine.comm_pack_bytes_per_s
            )
            if service > 0:
                yield timer.after(service)
            successor: DtdTask = message.payload
            self._ready[successor.node].put(successor, priority=successor.priority)


_dtd_ids = itertools.count()
