"""The distributed PaRSEC runtime.

Ties the pieces together over a simulated cluster: instantiates the
PTG against the inspection metadata, starts one
:class:`~repro.parsec.scheduler.NodeScheduler` (with one worker per
compute core) and one :class:`~repro.parsec.comm.CommThread` per node,
seeds the initially-ready tasks, and reacts to completions by walking
each task's output dataflow:

- same-node consumers are satisfied immediately by pointer;
- remote consumers get their data through the comm thread and NIC.

The engine is purely event-driven: between events the runtime costs
nothing, matching the paper's "when the hardware is busy executing
application code ... the runtime does not incur overhead".

Fault tolerance
---------------
When a :class:`~repro.sim.faults.FaultPlan` is installed on the
cluster, the runtime recovers from whole-node compute crashes by
re-deriving the lost work from the symbolic task graph — the property
the paper's PTG representation is built on. Every unfinished task
placed on the dead node is re-homed round-robin onto survivors and its
execution epoch bumped (aborting any in-flight attempt at its next
yield point); its still-held input repository entries make re-execution
cheap. Tasks whose bodies already *committed* irreversible effects are
left to finish — the commit marker is what gives exactly-once
write semantics under crashes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.result import RunResult
from repro.parsec.comm import CommThread
from repro.parsec.ptg import PTG, TaskGraph
from repro.parsec.scheduler import NodeScheduler
from repro.parsec.stealing import StealCoordinator, StealPolicy
from repro.parsec.taskclass import TaskContext, TaskInstance
from repro.sim.cluster import Cluster
from repro.sim.engine import SimEvent
from repro.sim.network import CoalescePolicy
from repro.util.errors import DataflowError, StallError

__all__ = ["ParsecRuntime", "ParsecResult"]


@dataclass
class ParsecResult(RunResult):
    """Outcome of one PTG execution."""

    execution_time: float
    n_tasks: int
    tasks_per_class: dict[str, int] = field(default_factory=dict)
    messages_remote: int = 0
    bytes_remote: float = 0.0
    deliveries_local: int = 0
    # recovery counters (nonzero only under an installed FaultPlan)
    task_retries: int = 0
    retransmits: int = 0
    tasks_recomputed: int = 0
    tasks_reassigned: int = 0
    nodes_crashed: int = 0
    recovery_overhead_s: float = 0.0
    # work-stealing counters (nonzero only under an active StealPolicy)
    steal_requests: int = 0
    steals_granted: int = 0
    steals_denied: int = 0
    chains_migrated: int = 0
    migrated_flops: float = 0.0
    steal_forwarded_bytes: float = 0.0
    #: which PTG variant ran ('v1'..'v5'), when known
    variant: Optional[str] = None

    _recovery_fields = (
        "task_retries",
        "retransmits",
        "tasks_recomputed",
        "tasks_reassigned",
        "nodes_crashed",
        "recovery_overhead_s",
    )

    @property
    def runtime_name(self) -> str:
        return "parsec"


_instance_ids = itertools.count()


class ParsecRuntime:
    """One PTG execution engine bound to a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        policy: "SchedulerPolicy | None" = None,
        stealing: "StealPolicy | None" = None,
        coalescing: "CoalescePolicy | None" = None,
    ) -> None:
        from repro.parsec.scheduler import SchedulerPolicy

        self.instance_id = next(_instance_ids)
        self.cluster = cluster
        self.policy = policy or SchedulerPolicy.PRIORITY
        self.steal_policy = stealing
        #: per-destination dataflow aggregation (None = off, the default
        #: wire behavior the golden digests pin)
        self.coalescing = coalescing
        self.stealing: Optional[StealCoordinator] = None
        self.graph: Optional[TaskGraph] = None
        self.md: Any = None
        self.schedulers: list[NodeScheduler] = []
        self.comms: list[CommThread] = []
        self.done: Optional[SimEvent] = None
        self.done_at: Optional[float] = None
        self._completed = 0
        self._n_tasks = 0
        # statistics
        self.messages_remote = 0
        self.bytes_remote = 0.0
        self.deliveries_local = 0

    @property
    def steal_enabled(self) -> bool:
        """Whether this run has an active work-stealing layer."""
        return (
            self.steal_policy is not None
            and self.steal_policy.enabled
            and self.cluster.n_nodes >= 2
        )

    # ------------------------------------------------------------------
    def launch(self, ptg: PTG, md: Any, validate: bool = True) -> SimEvent:
        """Instantiate and start executing; returns the completion event.

        Use this form to embed a PaRSEC section inside a larger
        simulated program (the NWChem integration driver does)."""
        if self.graph is not None:
            raise DataflowError("ParsecRuntime.launch() called twice")
        self.md = md
        self.graph = ptg.instantiate(md, self.cluster.n_nodes, validate=validate)
        self._rehome_dead_at_launch()
        self.done = self.cluster.engine.event()
        self._completed = 0
        self._n_tasks = len(self.graph)
        for node in self.cluster.nodes:
            self.schedulers.append(
                NodeScheduler(
                    self,
                    node,
                    self.cluster.cores_per_node,
                    policy=self.policy,
                    n_gpus=self.cluster.config.gpus_per_node,
                )
            )
            self.comms.append(CommThread(self, node))
        if self.steal_enabled:
            self.stealing = StealCoordinator(self, self.steal_policy)
            self.stealing.register_graph(self.graph, md)
            for scheduler in self.schedulers:
                scheduler.steal_agent = self.stealing.agents[scheduler.node.node_id]
        if self.cluster.faults is not None:
            self.cluster.faults.on_crash(self._handle_crash)
        if len(self.graph) == 0:
            self.done.succeed()
            return self.done
        # Seed input-less tasks in creation order: PaRSEC discovers
        # startup tasks by sweeping task classes one after another, so
        # without priorities ALL READ_A instances precede ALL READ_B
        # instances in the ready queues. This is the mechanism behind
        # the paper's Figure 11: variant v2 (no priorities) floods the
        # network with one operand class first and idles until matched
        # pairs arrive, while priorities (v4) interleave per chain.
        for task in self.graph.initially_ready():
            self.schedulers[task.node].enqueue(task)
        return self.done

    def execute(self, ptg: PTG, md: Any, validate: bool = True) -> ParsecResult:
        """Run a PTG to completion; returns timing and statistics."""
        start_time = self.cluster.engine.now
        faults = self.cluster.faults
        before = faults.report.snapshot() if faults is not None else None
        done = self.launch(ptg, md, validate=validate)
        end_time = self.cluster.run()
        if not done.triggered:
            raise self._stall_error()
        # the makespan ends when the last task completes; any steal
        # chatter still in flight after that drains off the clock
        if self.done_at is not None:
            end_time = self.done_at
        assert self.graph is not None  # set by launch()
        per_class: dict[str, int] = {}
        for task in self.graph.instances.values():
            per_class[task.cls.name] = per_class.get(task.cls.name, 0) + 1
        result = ParsecResult(
            execution_time=end_time - start_time,
            n_tasks=len(self.graph),
            tasks_per_class=per_class,
            messages_remote=self.messages_remote,
            bytes_remote=self.bytes_remote,
            deliveries_local=self.deliveries_local,
        )
        if self.stealing is not None:
            result.steal_requests = self.stealing.requests
            result.steals_granted = self.stealing.granted
            result.steals_denied = self.stealing.denied
            result.chains_migrated = self.stealing.chains_migrated
            result.migrated_flops = self.stealing.migrated_flops
            result.steal_forwarded_bytes = self.stealing.forwarded_bytes
        if faults is not None:
            delta = faults.report.delta(before)
            result.task_retries = delta.task_retries
            result.retransmits = delta.retransmits
            result.tasks_recomputed = delta.tasks_recomputed
            result.tasks_reassigned = delta.tasks_reassigned
            result.nodes_crashed = delta.nodes_crashed
            result.recovery_overhead_s = delta.recovery_overhead_s
        return result

    # ------------------------------------------------------------------
    # stall watchdog
    # ------------------------------------------------------------------
    def _waiting_flows(self, task: TaskInstance) -> list[str]:
        """Which flows a not-yet-ready task is still missing, as
        ``name(received/expected)`` strings."""
        missing = []
        for flow in task.cls.flows:
            expected = sum(
                1 for dep in flow.inputs if dep.active(task.params, self.md)
            )
            if expected == 0:
                continue
            got = task.inputs.get(flow.name)
            received = 0 if got is None else (len(got) if isinstance(got, list) else 1)
            if received < expected:
                missing.append(f"{flow.name}({received}/{expected})")
        return missing

    def _stall_error(self) -> StallError:
        """Build the diagnosable stall report the watchdog raises."""
        assert self.graph is not None  # set by launch()
        stuck = [t for t in self.graph.instances.values() if not t.done]
        lines = [
            f"execution stalled with {len(stuck)} unfinished tasks "
            f"(of {len(self.graph)}) at t={self.cluster.engine.now:.6f}s"
        ]
        for sched in self.schedulers:
            node = sched.node
            lines.append(
                f"  node {node.node_id}: alive={node.alive} "
                f"ready={sched.ready_depth()} "
                f"nic tx/rx backlog={node.nic.tx_backlog}/{node.nic.rx_backlog}"
            )
        for task in stuck[:10]:
            waiting = self._waiting_flows(task)
            detail = (
                f"waiting on {', '.join(waiting)}"
                if waiting
                else ("ready but never ran" if not task.started else "started, never finished")
            )
            lines.append(f"  stuck: {task.label} @node{task.node}: {detail}")
        if len(stuck) > 10:
            lines.append(f"  ... and {len(stuck) - 10} more")
        faults = self.cluster.faults
        if faults is not None:
            lines.append(f"  fault report: {faults.report.summary()}")
        return StallError(
            "\n".join(lines), report=faults.report if faults is not None else None
        )

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def _rehome_dead_at_launch(self) -> None:
        """Move tasks mapped to already-dead nodes before execution starts.

        A PTG launched *after* a crash (a later level of a multi-level
        workload) still places tasks by the static owner map, which may
        name a node that died during an earlier level. Runs before the
        schedulers exist, so it only rewrites ``task.node``; the normal
        seeding path then enqueues on the new homes. Deterministic:
        sorted key order, survivors filled round-robin.
        """
        if self.cluster.faults is None:
            return
        alive = [n.alive for n in self.cluster.nodes]
        if all(alive):
            return
        survivors = [n.node_id for n in self.cluster.nodes if n.alive]
        if not survivors:
            return  # nothing to fail over to; the watchdog will report
        assert self.graph is not None  # called from launch() after instantiate
        placed = 0
        for key in sorted(self.graph.instances):
            task = self.graph.instances[key]
            if alive[task.node]:
                continue
            task.node = survivors[placed % len(survivors)]
            placed += 1
        self.cluster.faults.report.tasks_reassigned += placed

    def _handle_crash(self, node) -> None:
        """Re-home the dead node's unfinished tasks onto survivors.

        Runs synchronously at the crash instant. Deterministic: the
        instance sweep is in sorted key order and survivors are filled
        round-robin. Committed tasks stay put (their effects are already
        published); everything else gets a fresh epoch, which aborts any
        in-flight attempt at its next yield point.
        """
        if self.graph is None or self.done is None or self.done.triggered:
            return
        dead = node.node_id
        survivors = [n.node_id for n in self.cluster.nodes if n.alive]
        if not survivors:
            return  # nothing to fail over to; the watchdog will report
        self.schedulers[dead].drain()
        assert self.cluster.faults is not None  # crashes come from the injector
        report = self.cluster.faults.report
        placed = 0
        for key in sorted(self.graph.instances):
            task = self.graph.instances[key]
            if task.node != dead or task.done or task.committed:
                continue
            task.node = survivors[placed % len(survivors)]
            task.epoch += 1
            task.started = False
            # a claim pins a task to the worker that popped it; that
            # worker died with the node, so the pin must not survive
            # (a still-claimed task would also stay steal-ineligible)
            task.claimed = False
            placed += 1
            if task.pending == 0:
                self.schedulers[task.node].enqueue(task)
        report.tasks_reassigned += placed

    # ------------------------------------------------------------------
    # completion / delivery machinery (called from workers & comm threads)
    # ------------------------------------------------------------------
    def _on_complete(self, task: TaskInstance, context: TaskContext) -> None:
        md = self.md
        assert self.graph is not None  # executing tasks imply a live graph
        instances = self.graph.instances
        params = task.params
        node = task.node
        key = task.key
        for flow in task.cls.flows:
            data = context.outputs.get(flow.name)
            for dep in flow.outputs:
                # inlined dep.active(): this pair of attribute loads runs
                # once per output dep of every completed task
                guard = dep.guard
                if guard is not None and not guard(params, md):
                    continue
                consumer_key = (dep.target_class, tuple(dep.param_map(params, md)))
                payload = data
                if dep.transform is not None and data is not None:
                    payload = dep.transform(data, params, md)
                consumer = instances.get(consumer_key)
                if consumer is None:
                    raise DataflowError(
                        f"{task.label}.{flow.name} -> missing {consumer_key}"
                    )
                if consumer.node == node:
                    # same node: pass by pointer, no transport
                    self._deliver(consumer_key, dep.flow, payload, tag=key)
                else:
                    size_fn = dep.size_elems or flow.size_elems
                    size_bytes = 8.0 * float(size_fn(params, md))
                    self.comms[node].send(
                        consumer_key, dep.flow, payload, size_bytes, tag=key
                    )
        self._completed += 1
        if self._completed == self._n_tasks:
            self.done_at = self.cluster.engine.now
            assert self.done is not None
            self.done.succeed()

    def _deliver(
        self, consumer_key: tuple, flow: str, data: Any, tag: Any = None
    ) -> None:
        assert self.graph is not None  # deliveries imply a live graph
        consumer = self.graph.instances[consumer_key]
        self.deliveries_local += 1
        metrics = self.cluster.metrics
        if metrics.enabled:
            metrics.inc("parsec.deliveries_local")
        if consumer.receive(flow, data, tag=tag):
            self.schedulers[consumer.node].enqueue(consumer)
