"""The per-node scheduler: a priority ready-queue and worker threads.

"Task priorities are taken into account by the scheduler when a set of
available tasks are considered for execution, and they only have a
relative meaning" — the ready queue is a max-priority store with FIFO
tie-breaking. One worker process per compute core pops tasks, pays the
per-task scheduling overhead, runs the body, traces the span, and hands
completion back to the runtime. Tasks do not migrate between threads
once started (PaRSEC semantics the paper leans on for the locality
argument of variant v5).
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Optional

from repro.parsec.taskclass import TaskContext, TaskInstance
from repro.sim.faults import killable
from repro.sim.queues import LifoStore, PriorityStore, Store
from repro.sim.timeline import KIND_TASK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parsec.runtime import ParsecRuntime
    from repro.parsec.stealing import StealAgent

__all__ = ["SchedulerPolicy", "NodeScheduler"]


class SchedulerPolicy(str, Enum):
    """PaRSEC's scheduling disciplines, per objective function.

    "PaRSEC includes multiple task scheduling algorithms, each designed
    to maximize a different objective function, i.e., cache reuse, load
    balancing, etc." — PRIORITY is the default used for the paper's
    experiments; FIFO ignores priorities (fairness); LIFO pops the
    newest ready task (cache reuse).
    """

    PRIORITY = "priority"
    FIFO = "fifo"
    LIFO = "lifo"


class NodeScheduler:
    """Ready queues + workers for one node.

    With accelerators configured (``ClusterConfig.gpus_per_node > 0``),
    device-capable tasks (``TaskClass.accelerated``) are dispatched to
    a separate device ready-queue served by one GPU worker per
    accelerator; each device task stages its inputs and outputs over
    the node's shared PCIe link — the hybrid execution path the paper's
    introduction motivates ("a robust path to exploit hybrid computer
    architectures").
    """

    def __init__(
        self,
        runtime: "ParsecRuntime",
        node,
        n_workers: int,
        policy: SchedulerPolicy = SchedulerPolicy.PRIORITY,
        n_gpus: int = 0,
    ) -> None:
        self.runtime = runtime
        self.node = node
        self.engine = runtime.cluster.engine
        self.metrics = runtime.cluster.metrics
        self.policy = policy
        self.n_gpus = n_gpus

        def make_queue(label: str):
            if policy is SchedulerPolicy.PRIORITY:
                return PriorityStore(self.engine, name=f"{label}{node.node_id}")
            if policy is SchedulerPolicy.LIFO:
                return LifoStore(self.engine, name=f"{label}{node.node_id}")
            return Store(self.engine, name=f"{label}{node.node_id}")

        self.ready = make_queue("ready")
        self.gpu_ready = make_queue("gpu_ready") if n_gpus > 0 else None
        self.tasks_executed = 0
        self.gpu_tasks_executed = 0
        #: set by the runtime when a StealPolicy is active; workers
        #: notify it when they find the ready queue empty
        self.steal_agent: Optional["StealAgent"] = None
        for thread in range(n_workers):
            self.engine.process(
                self._worker(thread), name=f"parsec.worker{node.node_id}.{thread}"
            )
        for gpu in range(n_gpus):
            self.engine.process(
                self._gpu_worker(gpu), name=f"parsec.gpu{node.node_id}.{gpu}"
            )

    def ready_depth(self) -> int:
        """Tasks currently queued (CPU + GPU ready stores)."""
        depth = len(self.ready)
        if self.gpu_ready is not None:
            depth += len(self.gpu_ready)
        return depth

    def drain(self) -> list[TaskInstance]:
        """Empty the ready queues; used when this node's compute dies.

        Also abandons any getter events left behind by workers that were
        blocked on ``get()`` at crash time — otherwise a later ``put()``
        would hand a task to a corpse and silently lose it — and any
        waiter events those workers left parked on the node's local
        mutexes, so ``Resource.release()`` never grants a critical
        region to a corpse (the semaphore twin of the getter bug). NIC
        waiters are deliberately left alone: they belong to transfer
        processes, and in-flight protocol traffic survives a compute
        crash (RDMA-style fail-stop model).
        """
        drained: list[TaskInstance] = []
        for store in (self.ready, self.gpu_ready):
            if store is None:
                continue
            store.abandon_getters()
            while True:
                ok, item = store.try_get()
                if not ok:
                    break
                drained.append(item)
        for mutex in self.node._mutexes.values():
            mutex.abandon_waiters()
        return drained

    def enqueue(self, task: TaskInstance) -> None:
        """Make a task available under the node's scheduling policy."""
        queue = self.ready
        if self.gpu_ready is not None and task.cls.accelerated:
            queue = self.gpu_ready
        if self.policy is SchedulerPolicy.PRIORITY:
            queue.put(task, priority=task.priority)
        else:
            queue.put(task)
        if self.metrics.enabled:
            self.metrics.inc("sched.enqueued", policy=self.policy.value)
            self.metrics.observe("sched.task_priority", task.priority)
            self.metrics.gauge_max(
                "sched.ready_depth.hwm", len(queue), node=self.node.node_id
            )

    def _retry_gate(self, faults, task: TaskInstance, timer):
        """Generator helper: burn injected transient failures.

        Each failed attempt costs the plan's detection latency; the
        decision is a pure function of (task label, attempt), so retry
        counts are identical across runs with the same fault seed.
        Callers skip the call entirely when no plan is installed — the
        fault-free path pays neither the generator frame nor a yield.
        """
        attempt = 0
        while faults.plan.task_fails(task.label, attempt):
            faults.note_task_retry()
            if faults.plan.task_fail_detect_s > 0:
                yield timer.after(faults.plan.task_fail_detect_s)
            attempt += 1

    def _run_body(self, task: TaskInstance, context: TaskContext):
        """Generator helper: execute the body, abortable on crash.

        Returns True if the body completed. A False return means a
        crash re-homed the task mid-flight (its epoch changed); the
        caller must drop this attempt — the survivor node re-executes
        from the task's still-held inputs.

        Without an installed fault plan nothing can kill a task, so the
        body is driven bare — ``yield from`` forwards every waitable
        (and every thrown failure) exactly as :func:`killable` would,
        without the per-step abort predicate.
        """
        if self.runtime.cluster.faults is None:
            yield from task.cls.run(context)
            return True
        epoch = task.epoch
        completed = yield from killable(
            task.cls.run(context), lambda: task.epoch != epoch
        )
        return completed

    def _worker(self, thread: int):
        cluster = self.runtime.cluster
        machine = cluster.machine
        node = self.node
        ready = self.ready
        checkpoint = self.engine.checkpoint
        faults = cluster.faults
        # one reusable timeline channel per worker: a worker has at most
        # one timed wait outstanding, so every per-task timeout (overhead,
        # retry detection, body charges) re-arms the same slot instead of
        # allocating a Timeout — sequence-identical, see timeline.py
        timer = self.engine.timeline.timer(KIND_TASK, node=node.node_id)
        task_overhead = machine.task_overhead_s
        # per-task loop invariants, hoisted once per worker lifetime
        engine = self.engine
        metrics = self.metrics
        md = self.runtime.md
        on_complete = self.runtime._on_complete
        trace_record = node.trace.record
        node_id = node.node_id
        while True:
            # Hot path: work already queued. try_get + checkpoint resumes
            # through the immediate lane without allocating a SimEvent and
            # consumes exactly one seq — the same as a pre-succeeded get()
            # — so virtual timings are bitwise unchanged.
            ok, task = ready.try_get()
            if not ok:
                if self.steal_agent is not None:
                    self.steal_agent.notify_idle()
                task = yield ready.get()
            else:
                yield checkpoint
            if not node.alive:
                break  # queued work was re-homed by the crash handler
            if task.done or task.node != node_id:
                # stale queue entry: the task migrated (work stealing) or
                # was re-homed while waiting here; its new owner runs it
                if metrics.enabled:
                    metrics.inc("steal.stale_skipped")
                continue
            # pin the task to this node before the next yield: a claimed
            # task is never migrated out from under a ramping-up worker
            task.claimed = True
            # per-task runtime bookkeeping (select + dependence checks)
            if task_overhead > 0:
                yield timer.after(task_overhead)
            if faults is not None:
                yield from self._retry_gate(faults, task, timer)
            if not node.alive:
                # crashed while this attempt was ramping up; the task was
                # already re-homed, and starting it here would capture the
                # *bumped* epoch and defeat the kill predicate
                break
            task.started = True
            context = TaskContext(task, md, cluster, node, thread, timer=timer)
            t_start = engine.now
            completed = yield from self._run_body(task, context)
            if not completed:
                cluster.faults.note_abort(engine.now - t_start)
                break  # epoch bumps only come from this node's own crash
            trace_record(
                node_id,
                thread,
                task.cls.category,
                task.label,
                t_start,
                engine.now,
                meta=(
                    {"stolen_from": task.stolen_from}
                    if task.stolen_from is not None
                    else None
                ),
            )
            task.done = True
            self.tasks_executed += 1
            if metrics.enabled:
                metrics.inc("sched.tasks_executed", cls=task.cls.name)
                metrics.observe("sched.task_duration_s", engine.now - t_start)
            on_complete(task, context)
            if not node.alive:
                break

    def _gpu_worker(self, gpu: int):
        """One accelerator: stage inputs in, run the kernel, stage out.

        Traced on its own row (thread id beyond the CPU workers) so
        Gantt charts show device occupancy separately.
        """
        cluster = self.runtime.cluster
        machine = cluster.machine
        node = self.node
        md = self.runtime.md
        thread = cluster.cores_per_node + 1 + gpu  # +1 skips the comm thread row
        gpu_ready = self.gpu_ready
        checkpoint = self.engine.checkpoint
        faults = cluster.faults
        timer = self.engine.timeline.timer(KIND_TASK, node=node.node_id)
        while True:
            ok, task = gpu_ready.try_get()  # see _worker: seq-neutral fast path
            if not ok:
                task = yield gpu_ready.get()
            else:
                yield checkpoint
            if not node.alive:
                break  # queued work was re-homed by the crash handler
            if task.done or task.node != node.node_id:
                if self.metrics.enabled:  # see _worker: stale queue entry
                    self.metrics.inc("steal.stale_skipped")
                continue
            task.claimed = True  # see _worker: pin before the next yield
            if machine.gpu_task_overhead_s > 0:
                yield timer.after(machine.gpu_task_overhead_s)
            if faults is not None:
                yield from self._retry_gate(faults, task, timer)
            if not node.alive:
                break  # see _worker: avoid capturing a post-crash epoch
            task.started = True
            context = TaskContext(
                task, md, cluster, node, thread, device="gpu", timer=timer
            )
            t_start = self.engine.now
            in_bytes = 8.0 * sum(
                flow.size_elems(task.params, md)
                for flow in task.cls.flows
                if flow.inputs
            )
            if in_bytes > 0:
                yield node.pcie.transfer(in_bytes)
            completed = yield from self._run_body(task, context)
            if not completed:
                cluster.faults.note_abort(self.engine.now - t_start)
                break  # epoch bumps only come from this node's own crash
            out_bytes = 8.0 * sum(
                flow.size_elems(task.params, md)
                for flow in task.cls.flows
                if flow.outputs or not flow.inputs
            )
            if out_bytes > 0:
                yield node.pcie.transfer(out_bytes)
            node.trace.record(
                node.node_id,
                thread,
                task.cls.category,
                task.label,
                t_start,
                self.engine.now,
                meta=(
                    {"device": f"gpu{gpu}"}
                    if task.stolen_from is None
                    else {"device": f"gpu{gpu}", "stolen_from": task.stolen_from}
                ),
            )
            task.done = True
            self.gpu_tasks_executed += 1
            if self.metrics.enabled:
                self.metrics.inc("sched.gpu_tasks_executed", cls=task.cls.name)
            self.runtime._on_complete(task, context)
            if not node.alive:
                break
