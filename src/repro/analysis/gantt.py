"""ASCII Gantt rendering — the stand-in for the paper's trace figures.

Each (node, thread) row becomes one line of glyphs over a fixed-width
time axis, with one character per task category (the paper's colours):

====================  =========  ======================================
paper colour          glyph      category
====================  =========  ======================================
red                   ``G``      GEMM
blue                  ``a``      READ_A / GET_HASH_BLOCK (COMM: ``c``)
purple                ``b``      READ_B
yellow                ``r``      reductions
light green           ``w``      write-back
(n/a)                 ``s``      SORT
(n/a)                 ``d``      DFILL
(n/a)                 ``n``      NXTVAL, ``|`` barrier
grey                  `` ``      idle
====================  =========  ======================================

When several categories fall into one cell, the busiest wins.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.trace import TaskCategory, TraceRecorder

__all__ = ["render_gantt", "CATEGORY_GLYPHS"]

CATEGORY_GLYPHS: dict[TaskCategory, str] = {
    TaskCategory.GEMM: "G",
    TaskCategory.READ_A: "a",
    TaskCategory.READ_B: "b",
    TaskCategory.COMM: "c",
    TaskCategory.REDUCE: "r",
    TaskCategory.WRITE: "w",
    TaskCategory.SORT: "s",
    TaskCategory.DFILL: "d",
    TaskCategory.NXTVAL: "n",
    TaskCategory.BARRIER: "|",
    TaskCategory.OTHER: "o",
}


def render_gantt(
    trace: TraceRecorder,
    width: int = 100,
    max_rows: Optional[int] = 32,
    title: str = "",
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
) -> str:
    """Render the trace as fixed-width ASCII art.

    ``max_rows`` limits output for big clusters (the first rows are
    shown, like the paper's figures show a window of the machine).
    ``t_min``/``t_max`` restrict the time axis — the zoom of the
    paper's Figure 13 "so that individual tasks can be discerned".
    """
    if not trace.events:
        return f"{title}\n(empty trace)"
    t0 = min(e.t_start for e in trace.events) if t_min is None else t_min
    t1 = max(e.t_end for e in trace.events) if t_max is None else t_max
    span = max(t1 - t0, 1e-30)
    rows = trace.by_thread()
    keys = sorted(rows)
    if max_rows is not None:
        keys = keys[:max_rows]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"time axis: {t0:.6f}s .. {t1:.6f}s ({span:.6f}s across {width} cols)"
    )
    for node, thread in keys:
        # per cell, accumulate busy time per category; busiest wins
        cells: list[dict[TaskCategory, float]] = [dict() for _ in range(width)]
        for event in rows[(node, thread)]:
            if event.duration <= 0 or event.t_end <= t0 or event.t_start >= t1:
                continue
            c_start = max((event.t_start - t0), 0.0) / span * width
            c_end = min((event.t_end - t0), span) / span * width
            first = min(width - 1, int(c_start))
            last = min(width - 1, int(c_end)) if c_end > c_start else first
            for cell_index in range(first, last + 1):
                cell_lo = t0 + cell_index * span / width
                cell_hi = cell_lo + span / width
                overlap = min(event.t_end, cell_hi) - max(event.t_start, cell_lo)
                if overlap > 0:
                    bucket = cells[cell_index]
                    bucket[event.category] = bucket.get(event.category, 0.0) + overlap
        glyphs = []
        for bucket in cells:
            if not bucket:
                glyphs.append(" ")
            else:
                winner = max(bucket.items(), key=lambda kv: kv[1])[0]
                glyphs.append(CATEGORY_GLYPHS.get(winner, "?"))
        lines.append(f"n{node:03d}.t{thread:02d} |{''.join(glyphs)}|")
    legend = "  ".join(
        f"{glyph}={category.value}"
        for category, glyph in CATEGORY_GLYPHS.items()
    )
    lines.append(f"legend: {legend}  (space=idle)")
    return "\n".join(lines)
