"""Trace analysis and reporting.

The paper's Figures 10-13 are execution traces read qualitatively: how
much idle time a variant has at startup, whether communication overlaps
computation, how GET_HASH_BLOCK cost compares to GEMM cost. This
package computes those quantities from :class:`~repro.sim.trace`
recordings and renders ASCII Gantt charts standing in for the figures.
"""

from repro.analysis.metrics import (
    blocking_comm_fraction,
    busy_fraction,
    category_time_share,
    comm_compute_overlap,
    idle_gaps,
    startup_idle_fraction,
    thread_utilization,
)
from repro.analysis.gantt import render_gantt
from repro.analysis.report import format_table, format_fig9_table
from repro.analysis.ascii_chart import render_series_chart
from repro.analysis.chrome_trace import to_chrome_trace, write_chrome_trace
from repro.analysis.dag import DagProfile, profile_task_graph, task_graph_to_networkx

__all__ = [
    "blocking_comm_fraction",
    "busy_fraction",
    "category_time_share",
    "comm_compute_overlap",
    "idle_gaps",
    "startup_idle_fraction",
    "thread_utilization",
    "render_gantt",
    "format_table",
    "format_fig9_table",
    "render_series_chart",
    "to_chrome_trace",
    "write_chrome_trace",
    "DagProfile",
    "profile_task_graph",
    "task_graph_to_networkx",
]
