"""ASCII line charts — the Figure 9 plot without matplotlib.

Renders execution-time-vs-cores series the way the paper's Figure 9
does (one marker row per code), on a plain-text canvas, for bench
reports and terminals.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_series_chart"]

_MARKERS = "ox+*#@%&"


def render_series_chart(
    series: Mapping[str, Mapping[int, float]],
    x_values: Sequence[int],
    width: int = 72,
    height: int = 20,
    title: str = "",
    y_label: str = "time (s)",
    x_label: str = "cores/node",
) -> str:
    """Plot ``series[code][x] -> y`` as ASCII, one marker per code."""
    points = [
        (code, x, series[code][x])
        for code in series
        for x in x_values
        if x in series[code]
    ]
    if not points:
        return f"{title}\n(no data)"
    y_max = max(y for _, _, y in points)
    y_min = 0.0
    x_min, x_max = min(x_values), max(x_values)
    x_span = max(x_max - x_min, 1)

    canvas = [[" "] * width for _ in range(height)]
    markers = {code: _MARKERS[i % len(_MARKERS)] for i, code in enumerate(series)}
    for code, x, y in points:
        col = round((x - x_min) / x_span * (width - 1))
        row = height - 1 - round((y - y_min) / (y_max - y_min or 1.0) * (height - 1))
        row = min(max(row, 0), height - 1)
        current = canvas[row][col]
        canvas[row][col] = markers[code] if current == " " else "?"

    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(canvas):
        if index == 0:
            label = f"{y_max:8.1f} |"
        elif index == height - 1:
            label = f"{y_min:8.1f} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    ticks = "          "
    for x in x_values:
        col = round((x - x_min) / x_span * (width - 1))
        missing = col - (len(ticks) - 10)
        if missing >= 0:
            ticks += " " * missing + str(x)
    lines.append(ticks + f"   {x_label}")
    legend = "  ".join(f"{marker}={code}" for code, marker in markers.items())
    lines.append(f"legend: {legend}  (?=overlap)  y: {y_label}")
    return "\n".join(lines)
