"""Plain-text tables for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_fig9_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A simple aligned text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in str_rows)) if str_rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_fig9_table(
    times: Mapping[str, Mapping[int, float]],
    core_counts: Sequence[int],
    title: str = "Figure 9: execution time (virtual seconds), 32 nodes",
) -> str:
    """The Figure 9 series: one row per code, one column per cores/node.

    ``times[code][cores] -> seconds``; missing cells print as '-'.
    """
    headers = ["code"] + [f"{c} cores/node" for c in core_counts]
    rows = []
    for code in times:
        row = [code]
        for cores in core_counts:
            value = times[code].get(cores)
            row.append(f"{value:.3f}" if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)
