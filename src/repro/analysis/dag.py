"""Task-graph structure analysis via networkx.

The paper's Section IV-A argument — segmenting the GEMM chains
"increases available parallelism" — is a statement about the task DAG's
*critical path*. This module materializes an instantiated
:class:`~repro.parsec.ptg.TaskGraph` as a networkx DiGraph weighted by
each task's modeled cost, and computes:

- the critical path length (a lower bound on any execution time),
- total work (the serial execution time),
- the average parallelism (work / span — the classic bound on useful
  cores),

so structural claims like "v5's DAG is far wider than v1's" can be
checked without running the simulator at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.parsec.ptg import TaskGraph
from repro.sim.cost import MachineModel, OpCost
from repro.sim.trace import TaskCategory

__all__ = ["DagProfile", "task_graph_to_networkx", "profile_task_graph"]


def _estimate_cost(instance, md, machine: MachineModel) -> float:
    """Approximate one task's execution time from the cost model.

    Mirrors the charges the ptg_build bodies make (compute part plus
    memory bytes at the per-core copy rate); close enough for
    structural analysis.
    """
    category = instance.cls.category
    params = instance.params
    L1 = params[0]
    chain = md.chain(L1)
    copy_rate = machine.core_copy_bytes_per_s

    def total(cost: OpCost) -> float:
        return cost.cpu + cost.bytes / copy_rate

    if category is TaskCategory.GEMM:
        gemm = md.gemm(*params)
        return total(machine.gemm(gemm.m, gemm.n, gemm.k))
    if category is TaskCategory.READ_A or category is TaskCategory.READ_B:
        gemm = md.gemm(*params)
        size = gemm.a_hi - gemm.a_lo if category is TaskCategory.READ_A else gemm.b_hi - gemm.b_lo
        nbytes = 8.0 * size
        return nbytes / machine.ga_local_bytes_per_s + nbytes / copy_rate
    if category is TaskCategory.REDUCE:
        return total(machine.axpy(chain.c_size))
    if category is TaskCategory.DFILL:
        return total(machine.zero_fill(chain.c_size))
    if category is TaskCategory.SORT:
        cost = machine.zero_fill(chain.c_size)
        first = True
        for _ in chain.active_sorts:
            cost = cost + machine.sort4(chain.c_size, cache_warm=not first)
            cost = cost + machine.axpy(chain.c_size, cache_warm=True)
            first = False
        return total(cost)
    if category is TaskCategory.WRITE:
        seg = chain.write_segs[params[-1]]
        return total(machine.axpy(seg.size))
    return machine.task_overhead_s


def task_graph_to_networkx(graph: TaskGraph, machine: MachineModel) -> nx.DiGraph:
    """Materialize the instantiated task graph with cost-weighted nodes."""
    md = graph.md
    dag = nx.DiGraph()
    for key, instance in graph.instances.items():
        dag.add_node(
            key,
            cost=_estimate_cost(instance, md, machine),
            category=instance.cls.category.value,
            node=instance.node,
        )
    for instance in graph.instances.values():
        for flow in instance.cls.flows:
            for dep in flow.outputs:
                if not dep.active(instance.params, md):
                    continue
                consumer = (dep.target_class, tuple(dep.param_map(instance.params, md)))
                dag.add_edge(instance.key, consumer)
    return dag


@dataclass(frozen=True)
class DagProfile:
    """Structural summary of one task graph."""

    n_tasks: int
    n_edges: int
    total_work: float      # sum of task costs (serial time)
    critical_path: float   # span: longest cost-weighted path
    critical_length: int   # tasks on that path

    @property
    def average_parallelism(self) -> float:
        """Work / span — the classic upper bound on useful cores."""
        if self.critical_path == 0:
            return 0.0
        return self.total_work / self.critical_path


def profile_task_graph(graph: TaskGraph, machine: MachineModel) -> DagProfile:
    """Critical-path/work analysis of an instantiated task graph."""
    dag = task_graph_to_networkx(graph, machine)
    total_work = sum(data["cost"] for _, data in dag.nodes(data=True))
    # longest path with node weights: push each node's cost onto its
    # outgoing edges, then add the path head's cost
    weighted = nx.DiGraph()
    weighted.add_nodes_from(dag.nodes())
    for u, v in dag.edges():
        weighted.add_edge(u, v, w=dag.nodes[u]["cost"])
    path = nx.dag_longest_path(weighted, weight="w")
    span = sum(dag.nodes[node]["cost"] for node in path)
    return DagProfile(
        n_tasks=dag.number_of_nodes(),
        n_edges=dag.number_of_edges(),
        total_work=total_work,
        critical_path=span,
        critical_length=len(path),
    )
