"""Building and rendering :class:`~repro.obs.report.RunReport` objects.

The report joins three sources for one execution:

- the result object (timing, task counts, recovery counters);
- the cluster's :class:`~repro.obs.registry.MetricsRegistry` snapshot
  (counters, gauges, histograms, phase timers);
- trace-derived statistics (startup idle, communication/computation
  overlap, busy fraction) when the run was traced.

Everything serialized is a function of the virtual clock and the
deterministic simulation, so identical seeds produce byte-identical
JSONL lines.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.metrics import (
    blocking_comm_fraction,
    busy_fraction,
    comm_compute_overlap,
    startup_idle_fraction,
)
from repro.analysis.report import format_table
from repro.obs.report import RunReport
from repro.obs.result import RunResult

__all__ = ["build_run_report", "render_run_report", "trace_stats"]


def trace_stats(trace) -> dict:
    """Deterministic summary statistics of a populated trace."""
    if trace is None or not getattr(trace, "events", None):
        return {}
    return {
        "n_events": len(trace.events),
        "makespan_s": trace.makespan(),
        "busy_fraction": busy_fraction(trace),
        "startup_idle_fraction": startup_idle_fraction(trace),
        "comm_compute_overlap": comm_compute_overlap(trace),
        "blocking_comm_fraction": blocking_comm_fraction(trace),
    }


def build_run_report(
    result: RunResult,
    cluster,
    workload: str = "",
    scale: Optional[str] = None,
    seed: Optional[int] = None,
) -> RunReport:
    """Assemble the structured report for one finished execution."""
    snapshot = cluster.metrics.snapshot() if cluster.metrics.enabled else {}
    phases = snapshot.pop("phases", {})
    return RunReport(
        runtime=result.runtime_name,
        workload=workload,
        execution_time=result.execution_time,
        n_tasks=result.n_tasks,
        variant=getattr(result, "variant", None),
        scale=scale,
        n_nodes=cluster.n_nodes,
        cores_per_node=cluster.cores_per_node,
        data_mode=cluster.data_mode.value,
        seed=seed,
        phases=phases,
        metrics=snapshot,
        trace_stats=trace_stats(cluster.trace),
        recovery=result.recovery_counters(),
    )


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_run_report(report: RunReport) -> str:
    """A human-readable multi-table view of one report."""
    head_rows = [
        ["runtime", report.runtime + (f" [{report.variant}]" if report.variant else "")],
        ["workload", report.workload or "-"],
        ["scale", report.scale or "-"],
        ["cluster", f"{report.n_nodes} nodes x {report.cores_per_node} cores"],
        ["data mode", report.data_mode or "-"],
        ["seed", "-" if report.seed is None else str(report.seed)],
        ["execution time", f"{report.execution_time:.6f}s (virtual)"],
        ["tasks", str(report.n_tasks)],
    ]
    parts = [format_table(["field", "value"], head_rows, title="Run")]
    if report.phases:
        parts.append(
            format_table(
                ["phase", "virtual s", "count"],
                [
                    [name, f"{p['virtual_s']:.6f}", str(p["count"])]
                    for name, p in sorted(report.phases.items())
                ],
                title="Phases",
            )
        )
    counters = report.metrics.get("counters", {})
    if counters:
        parts.append(
            format_table(
                ["counter", "value"],
                [[k, _fmt(v)] for k, v in sorted(counters.items())],
                title="Counters",
            )
        )
    gauges = report.metrics.get("gauges", {})
    if gauges:
        parts.append(
            format_table(
                ["gauge", "value"],
                [[k, _fmt(v)] for k, v in sorted(gauges.items())],
                title="Gauges",
            )
        )
    histograms = report.metrics.get("histograms", {})
    if histograms:
        parts.append(
            format_table(
                ["histogram", "count", "sum", "min", "max"],
                [
                    [k, str(h["count"]), _fmt(h["sum"]), _fmt(h["min"]), _fmt(h["max"])]
                    for k, h in sorted(histograms.items())
                ],
                title="Histograms",
            )
        )
    if report.trace_stats:
        parts.append(
            format_table(
                ["trace stat", "value"],
                [[k, _fmt(v)] for k, v in sorted(report.trace_stats.items())],
                title="Trace statistics",
            )
        )
    nonzero_recovery = {k: v for k, v in report.recovery.items() if v}
    if nonzero_recovery:
        parts.append(
            format_table(
                ["recovery counter", "value"],
                [[k, _fmt(v)] for k, v in sorted(nonzero_recovery.items())],
                title="Recovery",
            )
        )
    return "\n\n".join(parts)
