"""Export traces in the Chrome trace-event format.

PaRSEC's instrumentation exports traces for external viewers; the
modern equivalent is the Chrome/Perfetto trace-event JSON format
(load the output at ``chrome://tracing`` or https://ui.perfetto.dev).
Each simulated node becomes a process, each thread a track, each span a
complete ('X') event with the task category as its colour-grouping
name, so the result reads like the paper's Figures 10-13.
"""

from __future__ import annotations

import json

from repro.sim.trace import TaskCategory, TraceRecorder

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: map categories onto Chrome's stable colour names so GEMMs read red,
#: reads blue/purple, etc. — approximating the paper's palette
_COLOR_NAMES: dict[TaskCategory, str] = {
    TaskCategory.GEMM: "terrible",              # red
    TaskCategory.READ_A: "thread_state_runnable",  # blue
    TaskCategory.READ_B: "rail_animation",      # purple-ish
    TaskCategory.REDUCE: "bad",                 # yellow-orange
    TaskCategory.WRITE: "good",                 # green
    TaskCategory.SORT: "vsync_highlight_color",
    TaskCategory.DFILL: "grey",
    TaskCategory.COMM: "thread_state_runnable",
    TaskCategory.STEAL: "startup",              # orange: migrations stand out
    TaskCategory.NXTVAL: "black",
    TaskCategory.BARRIER: "grey",
    TaskCategory.OTHER: "white",
}


def to_chrome_trace(trace: TraceRecorder, time_unit: float = 1.0e-6) -> dict:
    """Convert a trace into a Chrome trace-event object.

    ``time_unit`` is the simulated duration of one exported microsecond
    tick; the default maps virtual seconds 1:1 onto trace microseconds
    times 1e6 (i.e. timestamps are virtual µs).
    """
    events = []
    for span in trace.events:
        events.append(
            {
                "name": span.label,
                "cat": span.category.value,
                "ph": "X",
                "ts": span.t_start / time_unit,
                "dur": max(span.duration / time_unit, 0.001),
                "pid": span.node,
                "tid": span.thread,
                "cname": _COLOR_NAMES.get(span.category, "white"),
                "args": span.meta or {},
            }
        )
    # name the processes/threads like the paper's rows
    nodes = sorted({span.node for span in trace.events})
    for node in nodes:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": node,
                "args": {"name": f"node {node}"},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    trace: TraceRecorder, path: str, time_unit: float = 1.0e-6
) -> str:
    """Serialize :func:`to_chrome_trace` output to ``path``; returns it."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(trace, time_unit), handle)
    return path
