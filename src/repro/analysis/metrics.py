"""Quantitative trace metrics.

These extract the numbers the paper reads off its trace figures:

- :func:`startup_idle_fraction` — the grey wedge at the left of
  Figure 11 (variant v2's network flood) vs. Figure 10 (v4);
- :func:`comm_compute_overlap` — Figure 12's point that in the original
  code communication is "interleaved with computation, however it is
  not overlapped" (the overlap is ~0 for the legacy runtime and large
  for PaRSEC, whose transfers happen off-worker);
- :func:`category_time_share` — Figure 13's comparison of
  GET_HASH_BLOCK span lengths against GEMM span lengths.

All functions operate on a :class:`~repro.sim.trace.TraceRecorder`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sim.trace import TaskCategory, TraceEvent, TraceRecorder

__all__ = [
    "merge_intervals",
    "busy_fraction",
    "thread_utilization",
    "idle_gaps",
    "startup_idle_fraction",
    "comm_compute_overlap",
    "category_time_share",
]


def merge_intervals(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping closed intervals, sorted."""
    items = sorted(i for i in intervals if i[1] > i[0])
    merged: list[tuple[float, float]] = []
    for start, end in items:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _interval_total(intervals: list[tuple[float, float]]) -> float:
    return sum(end - start for start, end in intervals)


def busy_fraction(trace: TraceRecorder, horizon: Optional[float] = None) -> float:
    """Mean busy fraction over all (node, thread) rows."""
    utilizations = thread_utilization(trace, horizon)
    if not utilizations:
        return 0.0
    return sum(utilizations.values()) / len(utilizations)


def thread_utilization(
    trace: TraceRecorder, horizon: Optional[float] = None
) -> dict[tuple[int, int], float]:
    """Busy fraction per (node, thread) over the trace makespan."""
    if not trace.events:
        return {}
    t0 = min(e.t_start for e in trace.events)
    t1 = horizon if horizon is not None else max(e.t_end for e in trace.events)
    span = t1 - t0
    if span <= 0:
        return {}
    out = {}
    for row, events in trace.by_thread().items():
        merged = merge_intervals((e.t_start, e.t_end) for e in events)
        out[row] = min(1.0, _interval_total(merged) / span)
    return out


def idle_gaps(
    trace: TraceRecorder, row: tuple[int, int]
) -> list[tuple[float, float]]:
    """Idle intervals of one thread between trace start and end."""
    events = trace.by_thread().get(row, [])
    if not events:
        return []
    t0 = min(e.t_start for e in trace.events)
    t1 = max(e.t_end for e in trace.events)
    busy = merge_intervals((e.t_start, e.t_end) for e in events)
    gaps = []
    cursor = t0
    for start, end in busy:
        if start > cursor:
            gaps.append((cursor, start))
        cursor = max(cursor, end)
    if cursor < t1:
        gaps.append((cursor, t1))
    return gaps


def startup_idle_fraction(
    trace: TraceRecorder,
    compute_categories: frozenset[TaskCategory] = frozenset({TaskCategory.GEMM}),
) -> float:
    """Mean fraction of the makespan before each thread's first compute.

    This is what the paper reads off Figure 11: "variant v2 — which
    lacks task priorities — has too much idle time in the beginning".
    Threads that never compute contribute 1.0.
    """
    if not trace.events:
        return 0.0
    t0 = min(e.t_start for e in trace.events)
    makespan = trace.makespan()
    if makespan <= 0:
        return 0.0
    fractions = []
    for row, events in trace.by_thread().items():
        compute_starts = [
            e.t_start for e in events if e.category in compute_categories
        ]
        if compute_starts:
            fractions.append((min(compute_starts) - t0) / makespan)
        else:
            fractions.append(1.0)
    return sum(fractions) / len(fractions)


def comm_compute_overlap(
    trace: TraceRecorder,
    node: Optional[int] = None,
    across_threads: bool = False,
) -> float:
    """Fraction of communication time overlapped with computation.

    With ``across_threads=False`` (default), each thread's blocking
    communication intervals (COMM spans — the GET/ADD calls of the
    legacy code) are intersected with *that same thread's* compute
    intervals. For blocking code this is exactly 0 — the Figure 12
    observation: "the communication is not overlapped, because it is
    not given a chance to do so. There is no computation in the code
    between the point where the data transfer starts and the point
    where the data is needed." PaRSEC never records blocking COMM spans
    at all; its transfers happen off-worker.

    With ``across_threads=True``, communication is intersected with
    compute of *other* threads on the same node — the machine-level
    view (other ranks keep their own cores busy during one rank's GET,
    but the communicating rank's core is still wasted).
    """
    comm_categories = {TaskCategory.COMM}
    compute_categories = {
        TaskCategory.GEMM,
        TaskCategory.SORT,
        TaskCategory.REDUCE,
        TaskCategory.DFILL,
    }
    nodes = {e.node for e in trace.events} if node is None else {node}
    total_comm = 0.0
    total_overlap = 0.0
    for node_id in nodes:
        events = trace.filtered(node=node_id)
        comm_by_thread: dict[int, list[TraceEvent]] = {}
        compute_by_thread: dict[int, list[tuple[float, float]]] = {}
        for event in events:
            if event.category in comm_categories:
                comm_by_thread.setdefault(event.thread, []).append(event)
            elif event.category in compute_categories:
                compute_by_thread.setdefault(event.thread, []).append(
                    (event.t_start, event.t_end)
                )
        for thread, comms in comm_by_thread.items():
            if across_threads:
                compute = merge_intervals(
                    interval
                    for t, intervals in compute_by_thread.items()
                    if t != thread
                    for interval in intervals
                )
            else:
                compute = merge_intervals(compute_by_thread.get(thread, []))
            for comm in comms:
                total_comm += comm.duration
                total_overlap += _intersection((comm.t_start, comm.t_end), compute)
    if total_comm == 0:
        return 0.0
    return total_overlap / total_comm


def blocking_comm_fraction(trace: TraceRecorder) -> float:
    """Share of total thread-busy time spent in blocking communication.

    The quantity Figure 13 shows visually: the blue/purple/light-green
    rectangles (GET_HASH_BLOCK / writes) are long compared to the red
    GEMMs — the ranks burn a large fraction of their cycles waiting on
    data movement.
    """
    totals = trace.total_time_by_category()
    comm = totals.get(TaskCategory.COMM, 0.0) + totals.get(TaskCategory.WRITE, 0.0)
    busy = sum(totals.values()) - totals.get(TaskCategory.BARRIER, 0.0)
    if busy <= 0:
        return 0.0
    return comm / busy


def _intersection(
    interval: tuple[float, float], merged: list[tuple[float, float]]
) -> float:
    lo, hi = interval
    out = 0.0
    for start, end in merged:
        if end <= lo:
            continue
        if start >= hi:
            break
        out += min(hi, end) - max(lo, start)
    return out


def category_time_share(trace: TraceRecorder) -> dict[TaskCategory, float]:
    """Each category's share of total recorded span time."""
    totals = trace.total_time_by_category()
    grand = sum(totals.values())
    if grand == 0:
        return {}
    return {category: duration / grand for category, duration in totals.items()}
